#!/usr/bin/env python
"""Regenerate the event/metric catalog tables in docs/observability.md.

The tables are derived from the schema registry
(:mod:`repro.obs.schema`), the single source of truth the flow rules
REPRO610/REPRO611 already enforce on code.  This script closes the
docs side of the loop: it splices ``event_catalog_markdown()`` /
``metric_catalog_markdown()`` between BEGIN/END marker comments in the
docs file, so a newly declared event type or metric family cannot ship
undocumented.

Usage::

    PYTHONPATH=src python scripts/gen_event_catalog.py          # rewrite
    PYTHONPATH=src python scripts/gen_event_catalog.py --check  # CI gate

``--check`` exits non-zero (without writing) when the committed docs
differ from what the registry generates.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.obs.schema import (  # noqa: E402
    event_catalog_markdown,
    metric_catalog_markdown,
)

DOCS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "docs",
    "observability.md",
)

#: (marker name, generator) — each splices between
#: ``<!-- BEGIN GENERATED <name> -->`` / ``<!-- END GENERATED <name> -->``.
REGIONS = (
    ("EVENT CATALOG", event_catalog_markdown),
    ("METRIC CATALOG", metric_catalog_markdown),
)


def splice(text: str) -> str:
    for name, generator in REGIONS:
        begin = f"<!-- BEGIN GENERATED {name} -->"
        end = f"<!-- END GENERATED {name} -->"
        if begin not in text or end not in text:
            raise SystemExit(
                f"{DOCS_PATH}: missing {begin!r} / {end!r} markers"
            )
        pattern = re.compile(
            re.escape(begin) + r".*?" + re.escape(end), re.DOTALL
        )
        replacement = f"{begin}\n{generator()}\n{end}"
        text = pattern.sub(lambda _m: replacement, text, count=1)
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the committed docs differ from the registry "
             "(writes nothing)",
    )
    args = parser.parse_args(argv)
    with open(DOCS_PATH) as handle:
        current = handle.read()
    generated = splice(current)
    if args.check:
        if generated != current:
            print(
                f"{DOCS_PATH}: catalog tables are stale — run "
                "`PYTHONPATH=src python scripts/gen_event_catalog.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{DOCS_PATH}: catalog tables match the schema registry")
        return 0
    if generated == current:
        print(f"{DOCS_PATH}: already up to date")
        return 0
    with open(DOCS_PATH, "w") as handle:
        handle.write(generated)
    print(f"{DOCS_PATH}: catalog tables regenerated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
