"""Sparse scoring and axis-sampled QMC (the scale path of the kernel).

The contract under test is exactness: on default settings the sparse
representation must return *bit-identical* volume ratios to the dense
kernel — representation is a speed/memory knob, never a result knob.
The axis-sampled estimator is the explicitly opt-in exception and is
tested for statistical sanity instead.
"""

import numpy as np
import pytest

from repro.core.feasible_set import FeasibleSet
from repro.core.volume import (
    GUARD_BAND,
    SparseWeights,
    axis_sampled_fraction,
    binding_axis_order,
    sparse_feasible_mask,
)
from repro.core.volume import qmc


def random_sparse_weights(rng, n, d, density=0.15):
    """A weight matrix shaped like a large-cluster plan: few active
    columns per node, magnitudes straddling the feasibility threshold."""
    w = np.zeros((n, d))
    for i in range(n):
        active = rng.choice(d, size=max(1, int(density * d)), replace=False)
        w[i, active] = rng.uniform(0.2, 3.0, size=active.size)
    return w


class TestSparseWeights:
    def test_row_storage_and_density(self):
        w = np.array([[0.0, 2.0, 0.0], [1.0, 0.0, 3.0]])
        sparse = SparseWeights(w)
        assert sparse.num_nodes == 2 and sparse.dimension == 3
        assert [list(c) for c in sparse.columns] == [[1], [0, 2]]
        assert sparse.nnz == 3
        assert sparse.density == pytest.approx(0.5)
        assert np.array_equal(sparse.dense(), w)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SparseWeights(np.zeros(4))

    def test_mask_rejects_mismatched_points(self):
        sparse = SparseWeights(np.eye(3))
        with pytest.raises(ValueError):
            sparse_feasible_mask(sparse, np.zeros((5, 2)))


class TestSparseDenseBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_masks_match_dense_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n, d = 40, 24
        w = random_sparse_weights(rng, n, d)
        points = qmc.sample_unit_simplex(1024, d, method="halton")
        sparse_mask, _ = sparse_feasible_mask(SparseWeights(w), points)
        dense_mask = np.all(points @ w.T <= 1.0 + 1e-12, axis=1)
        assert np.array_equal(sparse_mask, dense_mask)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible_fraction_identical_across_representations(self, seed):
        rng = np.random.default_rng(seed)
        w = random_sparse_weights(rng, 48, 16)
        dense = qmc.feasible_fraction(w, samples=2048, representation="dense")
        sparse = qmc.feasible_fraction(w, samples=2048,
                                       representation="sparse")
        auto = qmc.feasible_fraction(w, samples=2048, representation="auto")
        assert sparse == dense
        assert auto == dense

    def test_volume_ratio_identical_through_feasible_set(self):
        rng = np.random.default_rng(7)
        ln = rng.uniform(0.0, 1.0, size=(40, 12))
        ln[rng.random(ln.shape) < 0.8] = 0.0
        fs = FeasibleSet(ln, np.ones(40))
        assert fs.volume_ratio(representation="sparse") == fs.volume_ratio(
            representation="dense"
        )

    def test_jobs_split_identical_for_sparse(self):
        rng = np.random.default_rng(11)
        w = random_sparse_weights(rng, 48, 16)
        single = qmc.feasible_fraction(w, samples=2048,
                                       representation="sparse")
        split = qmc.feasible_fraction(w, samples=2048,
                                      representation="sparse", jobs=3)
        assert split == single

    def test_guard_band_sample_rescored_densely(self):
        # One node exactly on the threshold at a known sample: the
        # sparse path must flag it and return the dense decision.
        w = np.array([[1.0, 0.0], [0.0, 0.5]])
        points = np.array([[1.0 + 1e-12, 0.0], [0.2, 0.2]])
        mask, rescored = sparse_feasible_mask(SparseWeights(w), points)
        dense = np.all(points @ w.T <= 1.0 + 1e-12, axis=1)
        assert rescored >= 1
        assert np.array_equal(mask, dense)

    def test_guard_band_is_wide_against_rounding(self):
        # Documented contract: band sits far above d*eps dot rounding.
        assert GUARD_BAND >= 1e5 * 64 * np.finfo(float).eps

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            qmc.feasible_fraction(np.eye(3), samples=16,
                                  representation="csr")


class TestAutoHeuristic:
    def test_small_or_dense_stays_dense(self):
        assert qmc._resolve_sparse(np.eye(8), "auto") is None
        dense_big = np.ones((64, 8))
        assert qmc._resolve_sparse(dense_big, "auto") is None

    def test_large_sparse_switches(self):
        w = np.zeros((64, 32))
        w[:, 0] = 1.0
        resolved = qmc._resolve_sparse(w, "auto")
        assert isinstance(resolved, SparseWeights)

    def test_explicit_override_wins(self):
        w = np.zeros((64, 32))
        w[:, 0] = 1.0
        assert qmc._resolve_sparse(w, "dense") is None
        assert isinstance(qmc._resolve_sparse(np.eye(4), "sparse"),
                          SparseWeights)


class TestBindingAxisOrder:
    def test_orders_by_worst_column_weight(self):
        w = np.array([[0.1, 3.0, 0.5], [0.2, 0.1, 0.4]])
        assert list(binding_axis_order(w)) == [1, 2, 0]

    def test_ties_stay_stable(self):
        w = np.array([[0.5, 0.5, 0.5]])
        assert list(binding_axis_order(w)) == [0, 1, 2]


class TestAxisSampledFraction:
    def test_matches_reference_within_error_bars(self):
        # Moderate dimension: the reference full-Halton estimate is
        # trustworthy, so the axis-sampled one must agree within a few
        # standard errors.
        rng = np.random.default_rng(3)
        w = random_sparse_weights(rng, 32, 12, density=0.3)
        reference = qmc.feasible_fraction(w, samples=8192)
        ratio, se = axis_sampled_fraction(w, samples=8192, axis_budget=6,
                                          seed=0)
        assert se > 0.0
        assert abs(ratio - reference) <= max(5.0 * se, 0.02)

    def test_deterministic_for_seed(self):
        rng = np.random.default_rng(5)
        w = random_sparse_weights(rng, 32, 12)
        a = axis_sampled_fraction(w, samples=2048, axis_budget=4, seed=9)
        b = axis_sampled_fraction(w, samples=2048, axis_budget=4, seed=9)
        assert a == b

    def test_different_seed_changes_filler_axes(self):
        rng = np.random.default_rng(5)
        w = random_sparse_weights(rng, 32, 24, density=0.1)
        a, _ = axis_sampled_fraction(w, samples=1024, axis_budget=4, seed=1)
        b, _ = axis_sampled_fraction(w, samples=1024, axis_budget=4, seed=2)
        # Not required to differ mathematically, but identical values on
        # both seeds would mean the seed is ignored; allow equality only
        # when the estimate is saturated.
        assert a != b or a in (0.0, 1.0)

    def test_axis_budget_at_least_dimension_is_full_halton(self):
        rng = np.random.default_rng(8)
        w = random_sparse_weights(rng, 16, 6, density=0.4)
        ratio, _ = axis_sampled_fraction(w, samples=2048, axis_budget=6,
                                         seed=0)
        assert 0.0 <= ratio <= 1.0

    def test_feasible_set_surface(self):
        rng = np.random.default_rng(13)
        ln = rng.uniform(0.0, 1.0, size=(24, 10))
        ln[rng.random(ln.shape) < 0.7] = 0.0
        fs = FeasibleSet(ln, np.ones(24))
        ratio, se = fs.volume_ratio_axis_sampled(samples=2048, axis_budget=4)
        assert 0.0 <= ratio <= 1.0
        assert se >= 0.0
