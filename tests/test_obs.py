"""Unit tests for repro.obs: metrics, tracing, timers, logging."""

import io
import json
import logging

import pytest

from repro.obs import (
    Observability,
    configure,
    get_logger,
    read_trace,
)
from repro.obs.log import level_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.timer import PHASE_METRIC, PhaseTimer, phase_report
from repro.obs.trace import (
    EVENT_TYPES,
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullSink,
    TraceEvent,
    Tracer,
    parse_trace_line,
)


class TestCountersAndGauges:
    def test_counter_unlabeled(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "total requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "total requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth", "queued batches")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_histogram_aggregates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "latency")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean() == pytest.approx(0.002)

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", "h", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        buckets = histogram.buckets()
        assert buckets[-1][0] == float("inf")
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 3


class TestHistogramPercentiles:
    def make(self, buckets=(0.1, 0.5, 1.0)):
        return MetricsRegistry().histogram("h", "h", buckets=buckets)

    def test_empty_returns_zero(self):
        assert self.make().percentile(50) == 0.0

    def test_out_of_range_rejected(self):
        histogram = self.make()
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_interpolates_within_bucket(self):
        histogram = self.make(buckets=(1.0,))
        for _ in range(4):
            histogram.observe(0.5)
        # All mass in [0, 1): the median interpolates to the midpoint.
        assert histogram.percentile(50) == pytest.approx(0.5)
        assert histogram.percentile(25) == pytest.approx(0.25)

    def test_rank_in_inf_bucket_returns_last_finite_bound(self):
        histogram = self.make(buckets=(0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.percentile(99) == pytest.approx(1.0)

    def test_tracks_true_quantiles_with_fine_buckets(self):
        import numpy as np

        edges = tuple(np.linspace(0.01, 1.0, 100))
        histogram = self.make(buckets=edges)
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 1.0, 2000)
        for value in samples:
            histogram.observe(float(value))
        for q in (50, 95, 99):
            assert histogram.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), abs=0.02
            )

    def test_percentiles_keys_match_latency_stats(self):
        from repro.simulator.metrics import LatencyStats

        histogram = self.make()
        histogram.observe(0.2)
        stats = LatencyStats()
        stats.record(0.2)
        assert set(histogram.percentiles()) == set(stats.percentiles())

    def test_json_export_includes_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "l", buckets=(1.0,))
        histogram.observe(0.5)
        sample = registry.to_json()["lat"]["samples"][0]
        assert set(sample["percentiles"]) == {"p50", "p95", "p99"}
        assert sample["percentiles"]["p50"] == pytest.approx(0.5)

    def test_family_passthrough(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", "h", buckets=(1.0,))
        family.observe(0.5)
        assert family.percentile(50) == pytest.approx(0.5)
        assert family.percentiles()["p50"] == pytest.approx(0.5)


class TestLabels:
    def test_labeled_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "tuples_total", "tuples", labelnames=("direction",)
        )
        family.labels(direction="in").inc(10)
        family.labels(direction="out").inc(3)
        assert family.labels(direction="in").value == 10.0
        assert family.labels(direction="out").value == 3.0

    def test_unknown_label_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c", "c", labelnames=("direction",))
        with pytest.raises(ValueError):
            family.labels(node="0")

    def test_missing_label_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "c", "c", labelnames=("direction", "node")
        )
        with pytest.raises(ValueError):
            family.labels(direction="in")

    def test_unlabeled_access_on_labeled_family_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c", "c", labelnames=("direction",))
        with pytest.raises(ValueError):
            family.inc()

    def test_registration_idempotent_and_conflict_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "c", labelnames=("x",))
        again = registry.counter("c", "c", labelnames=("x",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("c", "c")
        with pytest.raises(ValueError):
            registry.counter("c", "c", labelnames=("y",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "dashes not allowed")
        with pytest.raises(ValueError):
            registry.counter("c", "c", labelnames=("bad-label",))


class TestExporters:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "tuples_total", "tuples moved", labelnames=("direction",)
        ).labels(direction="in").inc(7)
        registry.gauge("util", "utilization").set(0.5)
        registry.histogram("lat", "latency", buckets=(1.0,)).observe(0.2)
        return registry

    def test_to_json_roundtrips_through_json(self):
        doc = json.loads(json.dumps(self.make_registry().to_json()))
        assert doc["tuples_total"]["type"] == "counter"
        sample = doc["tuples_total"]["samples"][0]
        assert sample["labels"] == {"direction": "in"}
        assert sample["value"] == 7.0
        assert doc["util"]["samples"][0]["value"] == 0.5
        hist = doc["lat"]["samples"][0]
        assert hist["count"] == 1

    def test_prometheus_text_format(self):
        text = self.make_registry().render_prometheus()
        assert "# HELP tuples_total tuples moved" in text
        assert "# TYPE tuples_total counter" in text
        assert 'tuples_total{direction="in"} 7' in text
        assert "util 0.5" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.2" in text
        assert "lat_count 1" in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "c", labelnames=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_prometheus_label_escaping_exact(self):
        # Exposition spec: backslash first, then quote, then newline —
        # each escaped exactly once, with no raw newline in the series.
        registry = MetricsRegistry()
        registry.counter("c", "c", labelnames=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        series = [
            line for line in registry.render_prometheus().splitlines()
            if line.startswith("c{")
        ]
        assert series == ['c{path="a\\"b\\\\c\\nd"} 1']

    def test_prometheus_backslash_n_literal_not_double_escaped(self):
        # A label value already containing the two characters \ + n
        # must render as \\n (escaped backslash + letter), which is
        # distinct from an actual newline's \n.
        registry = MetricsRegistry()
        registry.counter("c", "c", labelnames=("x",)).labels(
            x="a\\nb"
        ).inc()
        text = registry.render_prometheus()
        assert 'c{x="a\\\\nb"} 1' in text

    def test_prometheus_nonfinite_values_render_per_spec(self):
        registry = MetricsRegistry()
        registry.gauge("up_g", "g").set(float("inf"))
        registry.gauge("down_g", "g").set(float("-inf"))
        registry.gauge("nan_g", "g").set(float("nan"))
        text = registry.render_prometheus()
        assert "up_g +Inf" in text
        assert "down_g -Inf" in text
        assert "nan_g NaN" in text

    def test_prometheus_nonfinite_histogram_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "h", buckets=(1.0,))
        histogram.observe(float("inf"))
        text = registry.render_prometheus()
        assert "h_sum +Inf" in text
        assert 'h_bucket{le="+Inf"} 1' in text


class TestTracer:
    def test_memory_sink_captures_typed_events(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit("batch.serviced", t=1.5, node=0, count=12)
        assert tracer.events_emitted == 1
        event = sink.events[0]
        assert event.type == "batch.serviced"
        assert event.t == 1.5
        assert event.wall > 0
        assert event.fields == {"node": 0, "count": 12}

    def test_reserved_keys_rejected(self):
        tracer = Tracer(MemorySink())
        with pytest.raises(ValueError):
            tracer.emit("phase", wall=1.0)
        with pytest.raises(ValueError):
            tracer.emit("phase", type="x")

    def test_known_event_types_registry(self):
        assert "batch.serviced" in EVENT_TYPES
        assert "placement.step" in EVENT_TYPES
        assert "feasibility.probe" in EVENT_TYPES

    def test_null_tracer_counts_nothing(self):
        NULL_TRACER.emit("sim.start", t=0.0, nodes=2)
        assert NULL_TRACER.events_emitted == 0
        assert not NULL_TRACER.enabled

    def test_null_sink_allocates_no_events(self, monkeypatch):
        """The hot-path contract: disabled tracing never constructs a
        TraceEvent.  A TraceEvent that explodes on construction proves
        emit() returns before allocation."""
        import repro.obs.trace as trace_module

        class Bomb:
            def __init__(self, *args, **kwargs):
                raise AssertionError("TraceEvent allocated while disabled")

        monkeypatch.setattr(trace_module, "TraceEvent", Bomb)
        tracer = Tracer(NullSink())
        tracer.emit("batch.serviced", t=1.0, node=0)
        assert tracer.events_emitted == 0
        with pytest.raises(AssertionError):
            Tracer(MemorySink()).emit("batch.serviced", t=1.0, node=0)


class TestJsonlRoundTrip:
    def test_emit_write_parse_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        tracer.emit("sim.start", t=0.0, nodes=2, step_seconds=0.1)
        tracer.emit("batch.serviced", t=0.1, node=1, work=0.004)
        tracer.emit("sim.end", t=1.0, migrations=0)
        sink.close()
        assert sink.events_written == 3

        events = read_trace(path)
        assert [e.type for e in events] == [
            "sim.start", "batch.serviced", "sim.end",
        ]
        assert events[0].fields["nodes"] == 2
        assert events[1].t == pytest.approx(0.1)
        assert events[1].fields["work"] == pytest.approx(0.004)

    def test_jsonl_sink_accepts_handle(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        Tracer(sink).emit("phase", name="x", seconds=0.5)
        sink.close()  # flushes, does not close a borrowed handle
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 1
        event = parse_trace_line(lines[0])
        assert event.type == "phase"
        assert event.fields == {"name": "x", "seconds": 0.5}

    def test_numpy_fields_serialized(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = str(tmp_path / "np.jsonl")
        with JsonlSink(path) as sink:
            Tracer(sink).emit(
                "sim.end", t=1.0,
                node_busy=np.array([1.5, 2.5]),
                count=np.int64(3),
            )
        event = read_trace(path)[0]
        assert event.fields["node_busy"] == [1.5, 2.5]
        assert event.fields["count"] == 3

    def test_read_trace_skips_blanks_and_reports_line_numbers(self):
        lines = [
            '{"type": "phase", "t": null, "wall": 1.0}',
            "",
            "not json",
        ]
        with pytest.raises(ValueError, match="line 3"):
            read_trace(lines)
        assert len(read_trace(lines[:2])) == 1

    def test_event_json_obj_roundtrip(self):
        event = TraceEvent(
            type="node.busy", t=2.0, wall=100.0, fields={"node": 1}
        )
        assert TraceEvent.from_json_obj(event.to_json_obj()) == event
        with pytest.raises(ValueError):
            TraceEvent.from_json_obj({"t": 1.0})


class TestTraceEventEdgeCases:
    """Round-trips for awkward field payloads: non-finite floats, numpy
    scalars, and nested sequences must survive the JSONL boundary."""

    def roundtrip(self, **fields):
        buffer = io.StringIO()
        with JsonlSink(buffer) as sink:
            Tracer(sink).emit("phase", t=1.0, **fields)
        return parse_trace_line(buffer.getvalue().splitlines()[0])

    def test_non_finite_floats_roundtrip(self):
        import math

        event = self.roundtrip(
            burst=float("inf"), drain=float("-inf"), gap=float("nan")
        )
        assert event.fields["burst"] == float("inf")
        assert event.fields["drain"] == float("-inf")
        assert math.isnan(event.fields["gap"])

    def test_numpy_scalars_become_python_numbers(self):
        np = pytest.importorskip("numpy")
        event = self.roundtrip(
            count=np.int32(7), ratio=np.float64(0.5), flag=np.bool_(True)
        )
        assert event.fields["count"] == 7
        assert type(event.fields["count"]) is int
        assert event.fields["ratio"] == 0.5
        assert type(event.fields["ratio"]) is float
        assert event.fields["flag"] is True

    def test_nested_sequences_roundtrip(self):
        np = pytest.importorskip("numpy")
        event = self.roundtrip(
            matrix=np.arange(4.0).reshape(2, 2),
            mixed=[1, [2.5, "x"], {"k": (3, 4)}],
        )
        assert event.fields["matrix"] == [[0.0, 1.0], [2.0, 3.0]]
        # JSON has no tuples: they come back as lists, values intact.
        assert event.fields["mixed"] == [1, [2.5, "x"], {"k": [3, 4]}]

    def test_non_finite_sim_clock_roundtrips(self):
        import math

        buffer = io.StringIO()
        with JsonlSink(buffer) as sink:
            Tracer(sink).emit("phase", t=float("nan"))
        event = parse_trace_line(buffer.getvalue().splitlines()[0])
        assert math.isnan(event.t)

    def test_unserializable_field_raises_type_error(self):
        with pytest.raises(TypeError, match="not JSON-serializable"):
            self.roundtrip(bad=object())


class TestPhaseTimer:
    def test_records_into_registry_and_trace(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        tracer = Tracer(sink)
        with PhaseTimer("place.rod", registry=registry, tracer=tracer,
                        fields={"operators": 12}) as timer:
            pass
        assert timer.seconds is not None and timer.seconds >= 0
        family = registry.get(PHASE_METRIC)
        assert family is not None
        child = family.labels(phase="place.rod")
        assert child.count == 1
        event = sink.events[0]
        assert event.type == "phase"
        assert event.fields["name"] == "place.rod"
        assert event.fields["operators"] == 12

    def test_phase_report_aggregates_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with PhaseTimer("verify", registry=registry):
                pass
        report = phase_report(registry)
        assert "verify: calls=3" in report
        assert "total=" in report and "mean=" in report

    def test_phase_report_empty_registry(self):
        assert phase_report(MetricsRegistry()) == ""

    def test_standalone_timer(self):
        with PhaseTimer("adhoc") as timer:
            pass
        assert timer.seconds is not None


class TestObservabilityBundle:
    def test_defaults_to_disabled_tracing(self):
        obs = Observability()
        assert not obs.tracer.enabled
        with obs.phase("x"):
            pass
        assert "x: calls=1" in obs.phase_report()

    def test_phase_streams_to_tracer(self):
        sink = MemorySink()
        obs = Observability(tracer=Tracer(sink))
        with obs.phase("y", detail=1):
            pass
        assert sink.events[0].fields["detail"] == 1

    def test_repr_mentions_tracing_state(self):
        assert "tracing=off" in repr(Observability())


class TestLogging:
    def test_get_logger_namespaces_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.simulator").name == "repro.simulator"
        assert get_logger("other").name == "repro.other"

    def test_level_mapping(self):
        assert level_for(-1) == logging.ERROR
        assert level_for(0) == logging.WARNING
        assert level_for(1) == logging.INFO
        assert level_for(2) == logging.DEBUG
        assert level_for(5) == logging.DEBUG

    def test_configure_idempotent(self):
        logger = configure(verbosity=0)
        before = len(logger.handlers)
        configure(verbosity=2)
        assert len(logger.handlers) == before
        assert logger.level == logging.DEBUG
        configure(verbosity=0)

    def test_configured_output_format(self):
        stream = io.StringIO()
        logger = configure(verbosity=1, stream=stream)
        get_logger("repro.test_obs").info("hello %d", 7)
        assert "INFO repro.test_obs: hello 7" in stream.getvalue()
        configure(verbosity=0, stream=io.StringIO())
        assert logger.level == logging.WARNING
