"""Unit tests for query-graph JSON serialization."""

import json

import pytest

from repro.graphs import (
    QueryGraph,
    WindowJoin,
    dump_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    monitoring_graph,
    paper_example3_graph,
    paper_example_graph,
    random_tree_graph,
)


def assert_graphs_equivalent(a: QueryGraph, b: QueryGraph) -> None:
    assert a.input_names == b.input_names
    assert a.operator_names == b.operator_names
    for name in a.operator_names:
        assert a.inputs_of(name) == b.inputs_of(name)
        assert a.output_of(name).name == b.output_of(name).name
        assert type(a.operator(name)) is type(b.operator(name))
    rates_a = a.stream_rates([1.0] * a.num_inputs)
    rates_b = b.stream_rates([1.0] * b.num_inputs)
    for stream, rate in rates_a.items():
        assert rates_b[stream] == pytest.approx(rate)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            paper_example_graph,
            paper_example3_graph,
            lambda: monitoring_graph(3, seed=1),
            lambda: random_tree_graph(seed=2),
        ],
    )
    def test_dict_roundtrip(self, factory):
        graph = factory()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert_graphs_equivalent(graph, rebuilt)

    def test_loads_preserved(self):
        graph = paper_example3_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        original = graph.operator_loads([2.0, 3.0])
        again = rebuilt.operator_loads([2.0, 3.0])
        for name, load in original.items():
            assert again[name] == pytest.approx(load)

    def test_file_roundtrip(self, tmp_path):
        graph = monitoring_graph(2, seed=5)
        path = str(tmp_path / "graph.json")
        dump_graph(graph, path)
        assert_graphs_equivalent(graph, load_graph(path))

    def test_document_is_plain_json(self, tmp_path):
        path = str(tmp_path / "graph.json")
        dump_graph(paper_example_graph(), path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["inputs"] == ["I1", "I2"]
        assert {op["kind"] for op in doc["operators"]} == {"delay"}

    def test_custom_output_names_survive(self):
        g = QueryGraph("custom")
        i = g.add_input("I")
        from repro.graphs import Map

        g.add_operator(Map("m", cost=1.0), [i], output_name="renamed")
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert rebuilt.output_of("m").name == "renamed"


class TestValidation:
    def test_missing_sections_rejected(self):
        with pytest.raises(ValueError, match="'inputs'"):
            graph_from_dict({"operators": []})

    def test_missing_operator_fields_rejected(self):
        with pytest.raises(ValueError, match="'name'"):
            graph_from_dict(
                {"inputs": ["I"], "operators": [{"kind": "map"}]}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown operator kind"):
            graph_from_dict(
                {
                    "inputs": ["I"],
                    "operators": [
                        {"name": "x", "kind": "teleport", "inputs": ["I"]}
                    ],
                }
            )

    def test_forward_reference_rejected(self):
        doc = {
            "inputs": ["I"],
            "operators": [
                {"name": "b", "kind": "map", "cost": 1.0,
                 "inputs": ["a.out"]},
                {"name": "a", "kind": "map", "cost": 1.0, "inputs": ["I"]},
            ],
        }
        with pytest.raises(KeyError, match="unknown stream"):
            graph_from_dict(doc)

    def test_all_kinds_serializable(self):
        g = QueryGraph("kinds")
        a, b = g.add_input("A"), g.add_input("B")
        from repro.graphs import (
            Aggregate,
            Filter,
            LinearOperator,
            Map,
            Union,
            VariableSelectivityOp,
        )

        f = g.add_operator(Filter("f", cost=1.0, selectivity=0.5), [a])
        m = g.add_operator(Map("m", cost=1.0), [f])
        u = g.add_operator(Union("u", costs=[1.0, 1.0]), [m, b])
        g.add_operator(Aggregate("ag", cost=1.0, selectivity=0.2), [u])
        v = g.add_operator(VariableSelectivityOp("v", cost=1.0), [b])
        g.add_operator(
            WindowJoin("j", cost_per_pair=1.0, selectivity=0.5, window=1.0),
            [v, m],
        )
        g.add_operator(
            LinearOperator("lin", costs=(1.0, 2.0),
                           selectivities=(0.5, 0.5)),
            [m, b],
        )
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert_graphs_equivalent(g, rebuilt)
