"""Unit tests for the workload-graph generators."""

import pytest

from repro.graphs import (
    RandomGraphConfig,
    join_graph,
    monitoring_graph,
    paper_example3_graph,
    paper_example_graph,
    random_tree_graph,
)
from repro.graphs.generator import MAX_DELAY_COST, MIN_DELAY_COST
from repro.graphs.query_graph import subgraph_operator_count


class TestRandomTreeGraph:
    def test_total_operator_count(self):
        config = RandomGraphConfig(num_inputs=4, operators_per_tree=10)
        graph = random_tree_graph(config, seed=1)
        assert graph.num_operators == 40
        assert graph.num_inputs == 4

    def test_each_tree_has_equal_size(self):
        config = RandomGraphConfig(num_inputs=3, operators_per_tree=7)
        graph = random_tree_graph(config, seed=2)
        for name in graph.input_names:
            assert subgraph_operator_count(graph, [name]) == 7

    def test_fanout_within_bounds(self):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=30)
        graph = random_tree_graph(config, seed=3)
        for name in graph.operator_names:
            assert len(graph.downstream_operators(name)) <= config.max_fanout

    def test_costs_within_paper_bounds(self):
        graph = random_tree_graph(seed=4)
        for op in graph.operators():
            assert MIN_DELAY_COST <= op.costs[0] <= MAX_DELAY_COST

    def test_selectivity_mix(self):
        config = RandomGraphConfig(num_inputs=5, operators_per_tree=40)
        graph = random_tree_graph(config, seed=5)
        sels = [op.selectivities[0] for op in graph.operators()]
        unit = sum(1 for s in sels if s >= 1.0)
        fractional = [s for s in sels if s < 1.0]
        # Half unit selectivity (binomially distributed around 100/200).
        assert 0.35 * len(sels) <= unit <= 0.65 * len(sels)
        assert all(0.5 <= s < 1.0 for s in fractional)

    def test_deterministic_for_seed(self):
        a = random_tree_graph(seed=6)
        b = random_tree_graph(seed=6)
        assert a.operator_names == b.operator_names
        assert [op.costs for op in a.operators()] == [
            op.costs for op in b.operators()
        ]

    def test_seeds_differ(self):
        a = random_tree_graph(seed=6)
        b = random_tree_graph(seed=7)
        assert [op.costs for op in a.operators()] != [
            op.costs for op in b.operators()
        ]

    def test_graphs_are_linear(self):
        assert not random_tree_graph(seed=8).has_nonlinear_operators()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomGraphConfig(num_inputs=0)
        with pytest.raises(ValueError):
            RandomGraphConfig(operators_per_tree=0)
        with pytest.raises(ValueError):
            RandomGraphConfig(min_fanout=3, max_fanout=2)
        with pytest.raises(ValueError):
            RandomGraphConfig(min_cost=0.0)
        with pytest.raises(ValueError):
            RandomGraphConfig(min_selectivity=0.9, max_selectivity=0.5)
        with pytest.raises(ValueError):
            RandomGraphConfig(unit_selectivity_fraction=1.5)


class TestMonitoringGraph:
    def test_one_tree_per_link_plus_merge(self):
        graph = monitoring_graph(num_links=3, seed=1)
        assert graph.num_inputs == 3
        # 5 per link + union + top_talkers
        assert graph.num_operators == 3 * 5 + 2

    def test_single_link_has_no_union(self):
        graph = monitoring_graph(num_links=1, seed=1)
        assert "merge_links" not in graph

    def test_validates(self):
        monitoring_graph(num_links=4, seed=2).validate()

    def test_rejects_zero_links(self):
        with pytest.raises(ValueError):
            monitoring_graph(num_links=0)


class TestJoinGraph:
    def test_structure(self):
        graph = join_graph(num_join_pairs=2, downstream_per_join=3, seed=1)
        assert graph.num_inputs == 4
        assert len(graph.join_operators()) == 2
        assert graph.num_operators == 2 * (2 + 1 + 3)

    def test_nonlinear(self):
        assert join_graph(seed=1).has_nonlinear_operators()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            join_graph(num_join_pairs=0)
        with pytest.raises(ValueError):
            join_graph(downstream_per_join=-1)


class TestPaperExamples:
    def test_example_matches_table(self, example_model):
        import numpy as np

        expected = np.array([[4.0, 0.0], [6.0, 0.0], [0.0, 9.0], [0.0, 2.0]])
        assert np.allclose(example_model.coefficients, expected)

    def test_example3_cuts(self):
        graph = paper_example3_graph()
        assert graph.has_nonlinear_operators()
        assert graph.join_operators() == ("o5",)

    def test_example_graph_is_linear(self):
        assert not paper_example_graph().has_nonlinear_operators()
