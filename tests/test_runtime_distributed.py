"""Tests for distributed execution of stream programs."""

import itertools

import numpy as np
import pytest

from repro import build_load_model, rod_place
from repro.runtime import (
    DistributedInterpreter,
    FnAggregate,
    FnFilter,
    FnMap,
    FnWindowJoin,
    Interpreter,
    Record,
    StreamProgram,
)


@pytest.fixture
def program():
    p = StreamProgram("dist")
    src = p.add_input("src")
    aux = p.add_input("aux")
    kept = p.add(
        FnFilter("keep", lambda d: d["v"] % 3 == 0, cost=1e-3), [src]
    )
    tagged = p.add(FnMap("tag", lambda d: {**d, "t": True}, cost=2e-3),
                   [kept])
    p.add(
        FnWindowJoin(
            "join", window=4.0,
            left_key=lambda d: d["v"] % 2,
            right_key=lambda d: d["k"],
            merge=lambda l, r: {"v": l["v"], "mark": r["m"]},
            cost_per_pair=5e-4,
        ),
        [tagged, aux],
    )
    return p


@pytest.fixture
def inputs():
    return {
        "src": [Record(t * 0.2, {"v": t}) for t in range(40)],
        "aux": [
            Record(t * 1.0, {"k": t % 2, "m": f"m{t}"}) for t in range(8)
        ],
    }


class TestSemanticTransparency:
    def test_answers_identical_for_every_assignment(self, inputs):
        def build():
            p = StreamProgram("x")
            src = p.add_input("src")
            kept = p.add(
                FnFilter("keep", lambda d: d["v"] % 2 == 0), [src]
            )
            p.add(FnMap("neg", lambda d: {"v": -d["v"]}), [kept])
            return p

        reference = None
        records = [Record(t * 0.1, {"v": t}) for t in range(30)]
        for assignment in itertools.product((0, 1), repeat=2):
            p = build()
            mapping = dict(zip(("keep", "neg"), assignment))
            run = DistributedInterpreter(p, mapping, num_nodes=2).run(
                {"src": records}
            )
            outs = [r["v"] for r in run.result.sink_records["neg.out"]]
            if reference is None:
                reference = outs
            assert outs == reference

    def test_distributed_answers_match_single_process(self, inputs):
        """Same program built twice: distributed == single-process."""

        def build():
            p = StreamProgram("cmp")
            src = p.add_input("src")
            agg = p.add(
                FnAggregate("count", window=2.0,
                            reducer=lambda rs: {"n": len(rs)}),
                [src],
            )
            p.add(FnMap("fmt", lambda d: {"n": d["n"]}), [agg])
            return p

        records = [Record(t * 0.3, {"v": t}) for t in range(25)]
        single = Interpreter(build()).run({"src": list(records)})
        distributed = DistributedInterpreter(
            build(), {"count": 1, "fmt": 0}, 2
        ).run({"src": list(records)})
        a = [r["n"] for r in single.sink_records["fmt.out"]]
        b = [r["n"] for r in distributed.result.sink_records["fmt.out"]]
        assert a == b


class TestAccounting:
    def test_node_work_matches_measured_traffic(self, program, inputs):
        mapping = {"keep": 0, "tag": 1, "join": 1}
        run = DistributedInterpreter(program, mapping, num_nodes=2).run(
            inputs
        )
        r = run.result
        expected_node0 = 1e-3 * r.operator_in["keep"]
        join_op = program.operator("join")
        expected_node1 = (
            2e-3 * r.operator_in["tag"]
            + 5e-4 * join_op._pairs_examined
        )
        assert run.node_work[0] == pytest.approx(expected_node0)
        assert run.node_work[1] == pytest.approx(expected_node1)

    def test_colocated_plan_has_no_network_tuples(self, program, inputs):
        mapping = {"keep": 0, "tag": 0, "join": 0}
        run = DistributedInterpreter(program, mapping, num_nodes=1).run(
            inputs
        )
        assert run.network_tuples == 0
        assert run.network_fraction == 0.0

    def test_split_chain_crosses_network(self, program, inputs):
        mapping = {"keep": 0, "tag": 1, "join": 0}
        run = DistributedInterpreter(program, mapping, num_nodes=2).run(
            inputs
        )
        assert run.network_tuples > 0
        assert 0 < run.network_fraction <= 1.0

    def test_work_conserved_across_assignments(self, inputs):
        def build():
            p = StreamProgram("y")
            src = p.add_input("src")
            kept = p.add(
                FnFilter("keep", lambda d: True, cost=1e-3), [src]
            )
            p.add(FnMap("m", lambda d: d, cost=2e-3), [kept])
            return p

        records = [Record(t * 0.1, {"v": t}) for t in range(20)]
        totals = []
        for mapping in ({"keep": 0, "m": 0}, {"keep": 0, "m": 1}):
            run = DistributedInterpreter(build(), mapping, 2).run(
                {"src": records}
            )
            totals.append(run.node_work.sum())
        assert totals[0] == pytest.approx(totals[1])


class TestModelConsistency:
    def test_node_work_tracks_linear_model(self):
        """Measured distributed work ≈ L^n · (average rates)."""
        p = StreamProgram("model-check")
        src = p.add_input("src")
        kept = p.add(
            FnFilter("half", lambda d: d["v"] % 2 == 0, cost=1e-3), [src]
        )
        p.add(FnMap("m", lambda d: d, cost=4e-3), [kept])

        duration = 20.0
        rate = 50.0
        records = [
            Record(i / rate, {"v": i}) for i in range(int(rate * duration))
        ]
        run = DistributedInterpreter(p, {"half": 0, "m": 1}, 2).run(
            {"src": records}
        )
        graph = p.to_query_graph(run.result.selectivities())
        model = build_load_model(graph)
        from repro import placement_from_mapping

        plan = placement_from_mapping(
            model, [1.0, 1.0], {"half": 0, "m": 1}
        )
        predicted = plan.feasible_set().node_loads([rate]) * duration
        assert np.allclose(run.node_work, predicted, rtol=0.02)


class TestValidation:
    def test_missing_operator_rejected(self, program):
        with pytest.raises(ValueError, match="missing"):
            DistributedInterpreter(program, {"keep": 0}, 2)

    def test_unknown_operator_rejected(self, program):
        mapping = {"keep": 0, "tag": 0, "join": 0, "ghost": 1}
        with pytest.raises(ValueError, match="unknown"):
            DistributedInterpreter(program, mapping, 2)

    def test_node_range_checked(self, program):
        mapping = {"keep": 0, "tag": 0, "join": 5}
        with pytest.raises(ValueError, match="out of range"):
            DistributedInterpreter(program, mapping, 2)

    def test_num_nodes_positive(self, program):
        with pytest.raises(ValueError, match="at least one"):
            DistributedInterpreter(program, {}, 0)
