"""Unit tests for prepackaged workload scenarios."""

import numpy as np
import pytest

from repro.workload import burst_series, shift_series, steady_trace_series


class TestSteadyTraceSeries:
    def test_mean_demand_hits_target(self, small_tree_model, four_nodes):
        series = steady_trace_series(
            small_tree_model, four_nodes, 200, 0.7, seed=1
        )
        totals = small_tree_model.column_totals()
        mean_demand = float(series.mean(axis=0) @ totals)
        assert mean_demand == pytest.approx(0.7 * four_nodes.sum())

    def test_shape_and_positivity(self, small_tree_model, four_nodes):
        series = steady_trace_series(
            small_tree_model, four_nodes, 64, 0.5, seed=2
        )
        assert series.shape == (64, small_tree_model.num_inputs)
        assert np.all(series >= 0)

    def test_traces_are_bursty(self, small_tree_model, four_nodes):
        series = steady_trace_series(
            small_tree_model, four_nodes, 512, 0.5, seed=3
        )
        # At least one input's trace varies substantially.
        cv = series.std(axis=0) / series.mean(axis=0)
        assert cv.max() > 0.2


class TestBurstSeries:
    def test_burst_window_has_burst_mix(self, small_tree_model, four_nodes):
        series = burst_series(
            small_tree_model, four_nodes, 100,
            base_mix=(3.0, 1.0, 1.0), burst_mix=(1.0, 3.0, 1.0),
            base_utilization=0.5, burst_utilization=0.9,
            burst_start=40, burst_steps=10,
        )
        totals = small_tree_model.column_totals()
        assert float(series[45] @ totals) == pytest.approx(
            0.9 * four_nodes.sum()
        )
        assert float(series[10] @ totals) == pytest.approx(
            0.5 * four_nodes.sum()
        )
        # Base returns after the burst.
        assert np.allclose(series[60], series[10])

    def test_default_burst_placement(self, small_tree_model, four_nodes):
        series = burst_series(
            small_tree_model, four_nodes, 90,
            base_mix=(1.0, 1.0, 1.0), burst_mix=(2.0, 1.0, 1.0),
            base_utilization=0.4, burst_utilization=0.8,
        )
        # Burst occupies [30, 39] by default.
        assert not np.allclose(series[31], series[0])
        assert np.allclose(series[50], series[0])

    def test_validation(self, small_tree_model, four_nodes):
        with pytest.raises(ValueError, match="burst_start"):
            burst_series(
                small_tree_model, four_nodes, 50,
                base_mix=(1, 1, 1), burst_mix=(1, 1, 1),
                base_utilization=0.5, burst_utilization=0.8,
                burst_start=99,
            )
        with pytest.raises(ValueError, match="steps"):
            burst_series(
                small_tree_model, four_nodes, 1,
                base_mix=(1, 1, 1), burst_mix=(1, 1, 1),
                base_utilization=0.5, burst_utilization=0.8,
            )


class TestShiftSeries:
    def test_permanent_flip(self, small_tree_model, four_nodes):
        series = shift_series(
            small_tree_model, four_nodes, 60,
            base_mix=(4.0, 1.0, 1.0), shifted_mix=(1.0, 4.0, 1.0),
            base_utilization=0.5, shifted_utilization=0.8,
            shift_at=20,
        )
        assert np.allclose(series[59], series[20])
        assert not np.allclose(series[19], series[20])

    def test_validation(self, small_tree_model, four_nodes):
        with pytest.raises(ValueError, match="shift_at"):
            shift_series(
                small_tree_model, four_nodes, 50,
                base_mix=(1, 1, 1), shifted_mix=(1, 1, 1),
                base_utilization=0.5, shifted_utilization=0.8,
                shift_at=-1,
            )
