"""Run registry, trace analytics, diff engine, and HTML reports.

The acceptance-critical invariants live here:

* the analyzer's busy totals and latency aggregates match the
  :class:`~repro.simulator.metrics.SimulationResult` **exactly** (not
  approximately) — the trace carries the same samples the engine saw;
* two runs of the same seed/config diff to zero deltas and exit 0;
* the HTML report is self-contained (no external URLs, no scripts).
"""

import json
import os

import numpy as np
import pytest

from repro.deploy import Deployment
from repro.graphs import monitoring_graph
from repro.obs import read_trace
from repro.obs.analyze import analyze_trace
from repro.obs.diff import (
    DEFAULT_THRESHOLD,
    MetricDelta,
    compare_metrics,
    compare_runs,
    flatten_metrics,
    parse_thresholds,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runs import (
    Run,
    RunManifest,
    RunWriter,
    config_digest,
    find_run,
    list_runs,
    load_run,
    snapshot_from_result,
    snapshot_from_rows,
)
from repro.obs.report_html import render_html_report, write_html_report


@pytest.fixture
def deployment():
    graph = monitoring_graph(num_links=2, seed=3)
    return Deployment.plan(graph, [1.0, 1.0])


@pytest.fixture
def sim_run(tmp_path, deployment):
    """One recorded simulation run: (result, Run)."""
    root = str(tmp_path / "runs")
    result = deployment.simulate(
        rates=[40.0, 40.0], duration=5.0,
        runs_root=root, run_id="fixture-run",
    )
    return result, load_run(os.path.join(root, "fixture-run"))


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"a": 1, "b": [2.0]}) == config_digest(
            {"b": [2.0], "a": 1}
        )

    def test_distinguishes_values(self):
        assert config_digest({"rate": 1.0}) != config_digest({"rate": 2.0})

    def test_short_hex(self):
        digest = config_digest({"x": 1})
        assert len(digest) == 12
        int(digest, 16)  # hex


class TestRunWriter:
    def test_finish_writes_manifest_result_metrics(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c", "c").inc(3)
        writer = RunWriter(
            root=str(tmp_path), kind="simulate", run_id="r1",
            config={"rate": 2.0}, seed=7, argv=["simulate", "--x"],
            labels={"suite": "unit"},
        )
        manifest = writer.finish(
            snapshot={"kind": "simulate", "max_utilization": 0.5},
            registry=registry, sim_seconds=10.0,
        )
        assert manifest.run_id == "r1"
        run = load_run(str(tmp_path / "r1"))
        assert run.manifest.seed == 7
        assert run.manifest.kind == "simulate"
        assert run.manifest.argv == ["simulate", "--x"]
        assert run.manifest.labels == {"suite": "unit"}
        assert run.manifest.sim_seconds == 10.0
        assert run.manifest.config_digest == config_digest({"rate": 2.0})
        assert run.result["max_utilization"] == 0.5
        assert run.metrics["c"]["samples"][0]["value"] == 3.0
        assert not run.has_trace  # no events were streamed

    def test_finish_twice_rejected(self, tmp_path):
        writer = RunWriter(root=str(tmp_path), kind="simulate", run_id="r")
        writer.finish()
        assert writer.finished
        with pytest.raises(RuntimeError):
            writer.finish()

    def test_trace_sink_streams_into_run_dir(self, tmp_path):
        from repro.obs import Tracer

        writer = RunWriter(root=str(tmp_path), kind="simulate", run_id="r")
        Tracer(writer.trace_sink()).emit("sim.start", t=0.0, nodes=1)
        writer.finish()
        run = load_run(str(tmp_path / "r"))
        assert run.has_trace
        assert run.events()[0].type == "sim.start"

    def test_colliding_run_ids_get_unique_dirs(self, tmp_path):
        RunWriter(root=str(tmp_path), kind="simulate", run_id="dup").finish()
        second = RunWriter(
            root=str(tmp_path), kind="simulate", run_id="dup"
        )
        second.finish()
        assert second.run_id != "dup"
        assert second.run_id.startswith("dup")
        assert len(list_runs(str(tmp_path))) == 2

    def test_auto_run_id_embeds_config_digest(self, tmp_path):
        writer = RunWriter(
            root=str(tmp_path), kind="simulate", config={"a": 1}
        )
        assert config_digest({"a": 1})[:8] in writer.run_id


class TestRegistryLookup:
    def make_run(self, root, run_id):
        RunWriter(root=root, kind="simulate", run_id=run_id).finish()

    def test_find_by_id_and_by_path(self, tmp_path):
        root = str(tmp_path)
        self.make_run(root, "abc")
        assert find_run("abc", root=root).run_id == "abc"
        assert find_run(str(tmp_path / "abc")).run_id == "abc"

    def test_find_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            find_run("nope", root=str(tmp_path))

    def test_list_skips_non_run_dirs(self, tmp_path):
        root = str(tmp_path)
        self.make_run(root, "good")
        (tmp_path / "stray").mkdir()  # no manifest
        (tmp_path / "broken").mkdir()
        (tmp_path / "broken" / "manifest.json").write_text("not json")
        assert [r.run_id for r in list_runs(root)] == ["good"]

    def test_list_missing_root_is_empty(self, tmp_path):
        assert list_runs(str(tmp_path / "absent")) == []

    def test_manifest_roundtrip(self):
        manifest = RunManifest(
            run_id="r", kind="simulate", created_wall=123.0,
            config={"a": 1}, config_digest="ff", seed=None,
            version="1.0", argv=["x"], wall_seconds=0.5,
            sim_seconds=None, placement={"assignment": {}},
            labels={},
        )
        again = RunManifest.from_json_obj(manifest.to_json_obj())
        assert again == manifest


class TestSnapshots:
    def test_snapshot_from_result_is_flat_and_jsonable(self, deployment):
        result = deployment.simulate(rates=[40.0, 40.0], duration=3.0)
        snapshot = json.loads(json.dumps(snapshot_from_result(result)))
        assert snapshot["kind"] == "simulate"
        assert snapshot["tuples_in"] == result.tuples_in
        assert snapshot["latency"]["p95"] == result.latency.percentile(95)
        assert len(snapshot["node_busy"]) == 2

    def test_snapshot_from_rows(self):
        snapshot = snapshot_from_rows([{"alg": "rod", "ratio": 0.9}])
        assert snapshot["kind"] == "experiment"
        assert snapshot["rows"][0]["ratio"] == 0.9


class TestAnalyzerExactness:
    """The trace is a faithful journal: replaying it reproduces the
    engine's own aggregates bit-for-bit."""

    def analysis_and_result(self, sim_run):
        result, run = sim_run
        return analyze_trace(run.events()), result

    def test_busy_totals_match_exactly(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert np.array_equal(analysis.busy_totals(), result.node_busy)

    def test_utilization_matches_exactly(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert np.array_equal(analysis.utilization(), result.node_utilization)

    def test_latency_aggregates_match_exactly(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert analysis.latency.total_tuples == result.latency.total_tuples
        assert analysis.latency.mean() == result.latency.mean()
        assert analysis.latency.maximum() == result.latency.maximum()
        assert analysis.latency.percentiles() == result.latency.percentiles()

    def test_sink_latency_matches_exactly(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert set(analysis.sink_latency) == set(result.sink_latency)
        for sink, stats in result.sink_latency.items():
            assert analysis.sink_latency[sink].mean() == stats.mean()
            assert (
                analysis.sink_latency[sink].total_tuples
                == stats.total_tuples
            )

    def test_tuples_out_matches(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert analysis.tuples_out == result.tuples_out

    def test_operator_breakdown_covers_graph(self, sim_run):
        analysis, result = self.analysis_and_result(sim_run)
        assert set(analysis.operators) == set(result.operator_stats)
        for name, stats in result.operator_stats.items():
            assert analysis.operators[name].tuples_in == stats.tuples_in
            assert analysis.operators[name].tuples_out == stats.tuples_out

    def test_to_json_obj_roundtrips(self, sim_run):
        analysis, _ = self.analysis_and_result(sim_run)
        doc = json.loads(json.dumps(analysis.to_json_obj()))
        assert doc["tuples_out"] == analysis.tuples_out
        assert len(doc["nodes"]) == analysis.num_nodes


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = flatten_metrics({
            "latency": {"p95": 0.1}, "node_busy": [1.0, 2.0],
            "kind": "simulate", "feasible": True,
        })
        assert flat == {
            "latency.p95": 0.1, "node_busy.0": 1.0, "node_busy.1": 2.0,
        }


class TestDiffEngine:
    def test_identical_metrics_zero_delta(self):
        snapshot = {"latency": {"p95": 0.25}, "tuples_out": 100}
        diff = compare_metrics(snapshot, snapshot)
        assert diff.changed == []
        assert diff.breaches == []
        assert "0 breach(es)" in diff.format()

    def test_higher_latency_breaches(self):
        diff = compare_metrics(
            {"latency": {"p95": 0.1}}, {"latency": {"p95": 0.2}},
            default_threshold=0.05,
        )
        assert [d.name for d in diff.breaches] == ["latency.p95"]

    def test_lower_latency_is_improvement_not_breach(self):
        diff = compare_metrics(
            {"latency": {"p95": 0.2}}, {"latency": {"p95": 0.1}},
            default_threshold=0.05,
        )
        assert diff.changed and not diff.breaches

    def test_fewer_tuples_out_breaches(self):
        diff = compare_metrics(
            {"tuples_out": 100}, {"tuples_out": 50},
            default_threshold=0.05,
        )
        assert [d.name for d in diff.breaches] == ["tuples_out"]

    def test_unknown_polarity_breaches_both_ways(self):
        for b in (50, 200):
            diff = compare_metrics(
                {"mystery": 100}, {"mystery": b}, default_threshold=0.05
            )
            assert diff.breaches

    def test_within_threshold_tolerated(self):
        diff = compare_metrics(
            {"latency": {"p95": 1.0}}, {"latency": {"p95": 1.01}},
            default_threshold=0.02,
        )
        assert diff.changed and not diff.breaches

    def test_per_metric_threshold_overrides_default(self):
        diff = compare_metrics(
            {"latency": {"p95": 1.0}}, {"latency": {"p95": 1.5}},
            thresholds={"latency.p95": 0.6}, default_threshold=0.01,
        )
        assert not diff.breaches

    def test_prefix_threshold_applies_to_children(self):
        diff = compare_metrics(
            {"latency": {"p95": 1.0, "p99": 1.0}},
            {"latency": {"p95": 1.5, "p99": 1.5}},
            thresholds={"latency": 0.6}, default_threshold=0.01,
        )
        assert not diff.breaches

    def test_appearing_from_zero_always_breaches(self):
        diff = compare_metrics(
            {"backlog_seconds": [0.0]}, {"backlog_seconds": [0.4]},
            default_threshold=100.0,
        )
        assert [d.name for d in diff.breaches] == ["backlog_seconds.0"]
        assert diff.breaches[0].relative == float("inf")

    def test_structural_drift_reported(self):
        diff = compare_metrics({"only_in_a": 1.0}, {"only_in_b": 2.0})
        assert diff.only_a == ["only_in_a"]
        assert diff.only_b == ["only_in_b"]
        text = diff.format()
        assert "only_in_a" in text and "only_in_b" in text

    def test_parse_thresholds(self):
        assert parse_thresholds(["latency.p95=0.1", "node=0.5"]) == {
            "latency.p95": 0.1, "node": 0.5,
        }
        with pytest.raises(ValueError):
            parse_thresholds(["nonsense"])
        with pytest.raises(ValueError):
            parse_thresholds(["x=-1"])

    def test_default_threshold_constant(self):
        assert DEFAULT_THRESHOLD == pytest.approx(0.02)

    def test_metric_delta_relative(self):
        delta = MetricDelta(
            name="latency.p95", a=2.0, b=3.0, threshold=0.1, direction=1
        )
        assert delta.delta == pytest.approx(1.0)
        assert delta.relative == pytest.approx(0.5)


class TestCompareRuns:
    def test_same_seed_same_config_zero_delta(self, tmp_path, deployment):
        """Acceptance criterion: identical runs diff to nothing."""
        root = str(tmp_path / "runs")
        for run_id in ("a", "b"):
            deployment.simulate(
                rates=[40.0, 40.0], duration=5.0,
                runs_root=root, run_id=run_id,
            )
        diff = compare_runs(
            find_run("a", root=root), find_run("b", root=root)
        )
        assert diff.changed == []
        assert diff.breaches == []

    def test_hotter_run_breaches(self, tmp_path, deployment):
        root = str(tmp_path / "runs")
        deployment.simulate(rates=[40.0, 40.0], duration=5.0,
                            runs_root=root, run_id="cool")
        deployment.simulate(rates=[70.0, 70.0], duration=5.0,
                            runs_root=root, run_id="hot")
        diff = compare_runs(
            find_run("cool", root=root), find_run("hot", root=root)
        )
        assert any("latency" in d.name for d in diff.breaches)


class TestDeploymentRecording:
    def test_run_dir_is_complete(self, sim_run):
        result, run = sim_run
        assert run.manifest.kind == "simulate"
        assert run.manifest.sim_seconds == result.duration
        assert run.manifest.placement is not None
        assert run.manifest.wall_seconds is not None
        assert run.has_trace
        assert run.result["max_utilization"] == float(
            np.max(result.node_utilization)
        )

    def test_trace_out_still_wins_over_run_dir(self, tmp_path, deployment):
        root = str(tmp_path / "runs")
        trace = str(tmp_path / "external.jsonl")
        deployment.simulate(
            rates=[40.0, 40.0], duration=2.0, trace_out=trace,
            runs_root=root, run_id="r",
        )
        run = find_run("r", root=root)
        assert not run.has_trace  # stream went to the explicit file
        assert read_trace(trace)[0].type == "sim.start"

    def test_failed_simulation_still_seals_manifest(
        self, tmp_path, deployment
    ):
        root = str(tmp_path / "runs")
        with pytest.raises(ValueError):
            deployment.simulate(
                rates=[40.0], duration=2.0,  # wrong arity
                runs_root=root, run_id="crash",
            )
        run = find_run("crash", root=root)
        assert run.result == {}  # sealed without a snapshot


class TestExperimentRecording:
    def test_record_experiment_run(self, tmp_path):
        from repro.experiments.common import record_experiment_run

        manifest = record_experiment_run(
            root=str(tmp_path), experiment_id="fig9",
            rows=[{"alg": "rod", "ratio": 0.91}], run_id="e1",
        )
        run = find_run("e1", root=str(tmp_path))
        assert manifest.labels == {"experiment": "fig9"}
        assert run.result["rows"][0]["ratio"] == 0.91


class TestHtmlReport:
    def test_simulation_report_self_contained(self, tmp_path, sim_run):
        _, run = sim_run
        html = render_html_report(run)
        assert html.startswith("<!DOCTYPE html>")
        for banned in ("http://", "https://", "<script"):
            assert banned not in html
        assert "<svg" in html  # sparklines / heatmap rendered inline
        assert run.run_id in html
        out = write_html_report(run, str(tmp_path / "report.html"))
        assert open(out).read() == html

    def test_experiment_report_renders_rows(self, tmp_path):
        writer = RunWriter(
            root=str(tmp_path), kind="experiment", run_id="e",
            config={"experiment": "fig9"},
        )
        writer.finish(snapshot=snapshot_from_rows(
            [{"alg": "rod", "ratio": 0.91}]
        ))
        html = render_html_report(find_run("e", root=str(tmp_path)))
        assert "rod" in html and "0.91" in html
        assert "<script" not in html

    def test_traceless_run_reports_without_analysis(self, tmp_path):
        writer = RunWriter(root=str(tmp_path), kind="simulate", run_id="r")
        writer.finish(snapshot={"kind": "simulate", "max_utilization": 0.1})
        html = render_html_report(Run(str(tmp_path / "r")))
        assert "max_utilization" in html or "0.1" in html
