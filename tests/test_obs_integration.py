"""End-to-end observability: simulate -> JSONL -> parse -> render.

Covers the PR's acceptance criterion: a traced ``Deployment.simulate``
run on an ``examples/configs`` graph produces parseable JSONL whose
per-node busy totals agree with ``SimulationResult`` utilization within
1%.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.deploy import Deployment
from repro.dynamics.controller import LoadBalancingController
from repro.graphs.generator import monitoring_graph
from repro.graphs.serialize import load_graph
from repro.obs import MemorySink, Observability, Tracer, read_trace
from repro.obs.timeline import (
    busy_totals,
    render_trace_report,
    trace_metadata,
    trace_summary,
    utilization_timeline,
)
from repro.simulator.engine import Simulator

EXAMPLES = Path(__file__).resolve().parents[1] / "examples" / "configs"


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    graph = load_graph(str(EXAMPLES / "monitoring.graph.json"))
    deployment = Deployment.plan(graph, [1.0, 1.0])
    path = str(tmp_path_factory.mktemp("traces") / "run.jsonl")
    result = deployment.simulate(
        rates=[60.0, 60.0], duration=5.0, trace_out=path
    )
    return deployment, result, read_trace(path)


class TestTraceAgreesWithResult:
    def test_trace_is_parseable_and_framed(self, traced_run):
        _, _, events = traced_run
        assert events[0].type == "sim.start"
        assert events[-1].type == "sim.end"
        assert all(e.wall > 0 for e in events)

    def test_busy_totals_match_utilization_within_1pct(self, traced_run):
        deployment, result, events = traced_run
        totals = busy_totals(events)
        capacities = deployment.placement.capacities
        traced_util = totals / (capacities * result.duration)
        assert np.allclose(traced_util, result.node_utilization, rtol=0.01)

    def test_metadata_header(self, traced_run):
        deployment, result, events = traced_run
        meta = trace_metadata(events)
        assert meta["nodes"] == deployment.placement.num_nodes
        assert meta["horizon"] == pytest.approx(result.duration)

    def test_summary_counts_are_balanced(self, traced_run):
        _, _, events = traced_run
        by_type = trace_summary(events)["by_type"]
        assert by_type["sim.start"] == 1
        assert by_type["sim.end"] == 1
        # Every enqueued batch is eventually serviced at these rates.
        assert by_type["batch.serviced"] == by_type["batch.enqueued"]
        assert by_type["node.busy"] == by_type["node.idle"]

    def test_render_report(self, traced_run):
        deployment, _, events = traced_run
        report = render_trace_report(events, width=40)
        assert "events by type:" in report
        assert "per-node utilization" in report
        for node in range(deployment.placement.num_nodes):
            assert f"node {node} |" in report

    def test_utilization_timeline_shape(self, traced_run):
        deployment, result, events = traced_run
        timeline = utilization_timeline(events)
        assert timeline.shape[1] == deployment.placement.num_nodes
        assert timeline.min() >= 0.0


class TestMigrationEvents:
    def test_migrations_traced_and_rendered(self):
        graph = monitoring_graph(2, seed=3)
        deployment = Deployment.plan(graph, [1.0, 1.0])
        # Skew the load hard onto one input so the reactive balancer
        # has something to chase.
        controller = LoadBalancingController(
            period=0.5, imbalance_threshold=0.05, cooldown=0.0
        )
        sink = MemorySink()
        result = deployment.simulate(
            rates=[900.0, 5.0],
            duration=8.0,
            controller=controller,
            tracer=Tracer(sink),
        )
        applied = [
            e for e in sink.events if e.type == "migration.applied"
        ]
        assert len(applied) == len(result.migrations)
        if applied:
            event = applied[0]
            assert {"operator", "source", "target", "pause"} <= set(
                event.fields
            )
            report = render_trace_report(sink.events)
            assert "migrations applied" in report

    def test_trace_out_and_tracer_are_mutually_exclusive(self, tmp_path):
        deployment = Deployment.plan(monitoring_graph(2, seed=1), [1.0, 1.0])
        with pytest.raises(ValueError, match="not both"):
            deployment.simulate(
                rates=[10.0, 10.0],
                duration=1.0,
                trace_out=str(tmp_path / "t.jsonl"),
                tracer=Tracer(MemorySink()),
            )


class TestDisabledPathUnchanged:
    def test_untraced_run_matches_traced_run(self):
        graph = monitoring_graph(2, seed=1)
        deployment = Deployment.plan(graph, [1.0, 1.0])
        plain = Simulator(deployment.placement).run(
            rates=[50.0, 50.0], duration=4.0
        )
        sink = MemorySink()
        traced = Simulator(deployment.placement, tracer=Tracer(sink)).run(
            rates=[50.0, 50.0], duration=4.0
        )
        assert np.allclose(plain.node_busy, traced.node_busy)
        assert plain.tuples_in == traced.tuples_in
        assert plain.tuples_out == traced.tuples_out
        assert len(sink.events) > 0

    def test_plan_with_tracing_emits_placement_steps(self):
        sink = MemorySink()
        obs = Observability(tracer=Tracer(sink))
        deployment = Deployment.plan(
            monitoring_graph(2, seed=1), [1.0, 1.0], obs=obs
        )
        steps = [e for e in sink.events if e.type == "placement.step"]
        assert len(steps) == deployment.model.num_operators
        assert [e.fields["index"] for e in steps] == list(range(len(steps)))
        phases = {
            e.fields["name"] for e in sink.events if e.type == "phase"
        }
        assert "plan.place.rod" in phases

    def test_probe_emits_feasibility_event(self):
        sink = MemorySink()
        obs = Observability(tracer=Tracer(sink))
        deployment = Deployment.plan(
            monitoring_graph(2, seed=1), [1.0, 1.0], obs=obs
        )
        verdict = deployment.probe([20.0, 20.0], duration=2.0)
        probes = [
            e for e in sink.events if e.type == "feasibility.probe"
        ]
        assert len(probes) == 1
        assert probes[0].fields["feasible"] == verdict


def _event(type_, t=None, **fields):
    from repro.obs import TraceEvent

    return TraceEvent(type=type_, t=t, wall=1.0, fields=fields)


class TestMetadataCapacityPadding:
    """A short (or missing) capacities list in the header must be padded
    to the node count — a single default entry used to silently
    mis-scale utilization for every node past the first."""

    def test_header_without_capacities_pads_to_node_count(self):
        meta = trace_metadata([_event("sim.start", t=0.0, nodes=3)])
        assert meta["capacities"] == [1.0, 1.0, 1.0]

    def test_header_with_short_capacities_pads(self):
        meta = trace_metadata([
            _event("sim.start", t=0.0, nodes=3, capacities=[2.0]),
        ])
        assert meta["capacities"] == [2.0, 1.0, 1.0]

    def test_full_capacities_preserved(self):
        meta = trace_metadata([
            _event("sim.start", t=0.0, nodes=2, capacities=[2.0, 0.5]),
        ])
        assert meta["capacities"] == [2.0, 0.5]

    def test_headerless_fallback_pads_too(self):
        meta = trace_metadata([
            _event("batch.serviced", t=1.0, node=2, work=0.1),
        ])
        assert meta["nodes"] == 3
        assert meta["capacities"] == [1.0, 1.0, 1.0]

    def test_padded_capacities_scale_utilization_per_node(self):
        events = [
            _event("sim.start", t=0.0, nodes=2, step_seconds=1.0,
                   horizon=1.0, capacities=[2.0]),
            _event("batch.serviced", t=0.5, node=0, work=1.0),
            _event("batch.serviced", t=0.5, node=1, work=1.0),
        ]
        timeline = utilization_timeline(events)
        # Node 0 has capacity 2 -> util 0.5; padded node 1 gets 1.0.
        assert timeline[0, 0] == pytest.approx(0.5)
        assert timeline[0, 1] == pytest.approx(1.0)


class TestFilterEvents:
    def setup_method(self):
        self.events = [
            _event("sim.start", t=0.0, nodes=2),
            _event("batch.serviced", t=1.0, node=0, work=0.1),
            _event("batch.serviced", t=2.0, node=1, work=0.1),
            _event("migration.applied", t=2.5, operator="op1"),
            _event("phase", name="plan"),  # no sim clock
        ]

    def filter(self, **kwargs):
        from repro.obs.timeline import filter_events

        return filter_events(self.events, **kwargs)

    def test_type_filter(self):
        kept = self.filter(types=["batch.serviced"])
        assert [e.type for e in kept] == ["batch.serviced"] * 2

    def test_node_filter_drops_nodeless_events(self):
        kept = self.filter(nodes=[1])
        assert len(kept) == 1
        assert kept[0].fields["node"] == 1

    def test_since_keeps_unclocked_events(self):
        kept = self.filter(since=2.0)
        assert [e.type for e in kept] == [
            "batch.serviced", "migration.applied", "phase",
        ]

    def test_filters_compose(self):
        kept = self.filter(types=["batch.serviced"], nodes=[0], since=0.0)
        assert len(kept) == 1
        assert kept[0].fields["node"] == 0

    def test_no_filters_is_identity(self):
        assert self.filter() == self.events


class TestFilterEventsCombined:
    """All three CLI filters (--type, --operator, --since) at once."""

    def setup_method(self):
        self.events = [
            _event("sim.start", t=0.0, nodes=2),
            _event("batch.serviced", t=1.0, node=0, operator="src0",
                   work=0.1),
            _event("batch.serviced", t=3.0, node=0, operator="agg0",
                   work=0.1),
            _event("batch.serviced", t=5.0, node=1, operator="agg0",
                   work=0.1),
            _event("span.open", t=3.0, span=7, operator="agg0", port=0,
                   count=4, birth=3.0),
            _event("span.close", t=5.0, span=7, node=1, start=4.0,
                   work=0.1, out=4),
            _event("migration.applied", t=4.0, operator="agg0",
                   source=0, target=1, pause=0.2),
            _event("phase", name="plan"),  # no sim clock, no operator
        ]

    def filter(self, **kwargs):
        from repro.obs.timeline import filter_events

        return filter_events(self.events, **kwargs)

    def test_type_operator_since_compose(self):
        kept = self.filter(
            types=["batch.serviced"], operators=["agg0"], since=4.0
        )
        assert len(kept) == 1
        assert kept[0].t == 5.0
        assert kept[0].fields["node"] == 1

    def test_operator_filter_crosses_event_kinds(self):
        # Without a type filter, the operator filter keeps every event
        # kind that names the operator: service, span.open, migration.
        kept = self.filter(operators=["agg0"], since=0.0)
        assert [e.type for e in kept] == [
            "batch.serviced", "batch.serviced", "span.open",
            "migration.applied",
        ]

    def test_operator_filter_drops_closes_without_operator_field(self):
        # span.close carries no operator field, so an operator filter
        # drops it even though its span.open matched — retrieving the
        # full span needs the spans= filter instead.
        kept = self.filter(operators=["agg0"])
        assert "span.close" not in [e.type for e in kept]
        kept = self.filter(spans=[7])
        assert [e.type for e in kept] == ["span.open", "span.close"]

    def test_span_and_since_compose(self):
        kept = self.filter(spans=[7], since=4.0)
        assert [e.type for e in kept] == ["span.close"]

    def test_all_filters_can_empty_the_trace(self):
        assert self.filter(
            types=["batch.serviced"], operators=["src0"], since=2.0
        ) == []

    def test_unclocked_events_survive_since_but_not_field_filters(self):
        kept = self.filter(since=100.0)
        assert [e.type for e in kept] == ["phase"]
        assert self.filter(since=100.0, operators=["agg0"]) == []
