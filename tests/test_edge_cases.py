"""Edge-case sweep across modules: the paths the main suites skirt."""

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping, rod_place
from repro.core.clustering import ClusteredModel, Clustering, cluster_operators
from repro.core.plans import diff_placements
from repro.core.viz import compare_feasible_sets
from repro.experiments.common import format_rows, volume_ratio_runs
from repro.graphs import Delay, QueryGraph, WindowJoin, join_graph
from repro.graphs.partition import partition_operator
from repro.runtime import FnCountWindow, Interpreter, Record, StreamProgram
from repro.simulator import FeasibilityProbe
from repro.simulator.metrics import SimulationResult, LatencyStats


class TestDiffPlacements:
    def test_reports_moves_only(self, example_model, two_nodes):
        a = placement_from_mapping(
            example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
        )
        b = placement_from_mapping(
            example_model, two_nodes, {"o1": 0, "o2": 1, "o3": 1, "o4": 0}
        )
        diff = diff_placements(a, b)
        assert diff == {"o2": (0, 1), "o4": (1, 0)}

    def test_identical_plans_empty_diff(self, example_model, two_nodes):
        a = rod_place(example_model, two_nodes)
        assert diff_placements(a, a) == {}

    def test_growth_ignored(self, two_nodes):
        g1 = QueryGraph()
        i = g1.add_input("I")
        g1.add_operator(Delay("a", cost=1.0, selectivity=1.0), [i])
        m1 = build_load_model(g1)

        g2 = QueryGraph()
        i = g2.add_input("I")
        g2.add_operator(Delay("a", cost=1.0, selectivity=1.0), [i])
        g2.add_operator(Delay("b", cost=1.0, selectivity=1.0), [i])
        m2 = build_load_model(g2)

        before = placement_from_mapping(m1, two_nodes, {"a": 0})
        after = placement_from_mapping(m2, two_nodes, {"a": 0, "b": 1})
        assert diff_placements(before, after) == {}


class TestFnCountWindow:
    def test_emits_every_n(self):
        op = FnCountWindow("w", size=3, reducer=lambda rs: {"n": len(rs)})
        outs = []
        for t in range(7):
            outs.extend(op.accept(0, Record(t * 0.1, {"v": t})))
        assert [o["n"] for o in outs] == [3, 3]

    def test_grouped_counting(self):
        op = FnCountWindow(
            "w", size=2, reducer=lambda rs: {"n": len(rs)},
            key=lambda d: d["k"],
        )
        op.accept(0, Record(0.0, {"k": "a"}))
        op.accept(0, Record(0.1, {"k": "b"}))
        (out,) = op.accept(0, Record(0.2, {"k": "a"}))
        assert out["key"] == "a"

    def test_partial_window_dropped_at_flush(self):
        op = FnCountWindow("w", size=5, reducer=lambda rs: {"n": len(rs)})
        op.accept(0, Record(0.0, {}))
        assert op.flush() == []

    def test_structural_selectivity(self):
        op = FnCountWindow("w", size=4, reducer=lambda rs: {})
        model_op = op.to_model_operator(selectivity=0.99)  # ignored
        assert model_op.selectivities[0] == pytest.approx(0.25)

    def test_in_a_program(self):
        p = StreamProgram()
        src = p.add_input("src")
        p.add(
            FnCountWindow("batch", size=10,
                          reducer=lambda rs: {"n": len(rs)}),
            [src],
        )
        records = [Record(t * 0.1, {}) for t in range(35)]
        result = Interpreter(p).run({"src": records})
        assert result.selectivities()["batch"] == pytest.approx(0.1, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            FnCountWindow("w", size=0, reducer=lambda rs: {})


class TestClusteringEdges:
    def test_join_endpoint_uses_per_pair_cost(self):
        graph = join_graph(1, downstream_per_join=1, window=0.1, seed=1)
        model = build_load_model(graph)
        # Arc join0 -> jop0 exists; clustering must not crash on the
        # join's lack of a constant per-tuple cost.
        clustering = cluster_operators(
            model, 1e-3, threshold=0.1, max_weight=1.0
        )
        clustering.validate(model)

    def test_clustered_model_unknown_cluster(self, small_tree_model):
        clustering = Clustering(
            groups=tuple((n,) for n in small_tree_model.operator_names)
        )
        clustered = ClusteredModel(small_tree_model, clustering)
        with pytest.raises(KeyError):
            clustered.operator_index("nope")

    def test_group_of(self, small_tree_model):
        clustering = Clustering(
            groups=tuple((n,) for n in small_tree_model.operator_names)
        )
        assert clustering.group_of(small_tree_model.operator_names[2]) == 2
        with pytest.raises(KeyError):
            clustering.group_of("ghost")


class TestProbeWithTransferCosts:
    def test_transfer_costs_shrink_empirical_feasibility(self):
        g = QueryGraph()
        i = g.add_input("I")
        a = g.add_operator(Delay("a", cost=0.004, selectivity=1.0), [i])
        g.add_operator(Delay("b", cost=0.004, selectivity=1.0), [a])
        model = build_load_model(g)
        plan = placement_from_mapping(model, [1.0, 1.0], {"a": 0, "b": 1})
        # At 130/s each node demands 0.52 without transfer but 1.04 once
        # every crossing tuple costs 0.004 to send and receive.
        cheap = FeasibilityProbe(duration=5.0)
        costly = FeasibilityProbe(duration=5.0, transfer_costs=0.004)
        assert cheap.is_feasible(plan, [130.0])
        assert not costly.is_feasible(plan, [130.0])


class TestVizCompareDimensions:
    def test_custom_canvas_size(self, example_model, two_nodes):
        a = placement_from_mapping(
            example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
        ).feasible_set()
        text = compare_feasible_sets(a, a, width=20, height=5)
        lines = text.splitlines()
        assert any(len(line) == 21 for line in lines)


class TestPartitionCosts:
    def test_custom_route_and_merge_costs_propagate(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("op", cost=1.0, selectivity=1.0), [i])
        rebuilt = partition_operator(
            g, "op", ways=2, route_cost=0.25, merge_cost=0.5
        )
        model = build_load_model(rebuilt)
        route_row = model.operator_load_vector("op.route0")
        merge_row = model.operator_load_vector("op.merge")
        assert route_row[0] == pytest.approx(0.25)
        # Merge sees each instance's output: 2 ports * 0.5 * 0.5 r.
        assert merge_row[0] == pytest.approx(0.5)


class TestExperimentPlumbing:
    def test_volume_ratio_runs_rod_single(self, small_tree_model,
                                          four_nodes):
        runs = volume_ratio_runs(
            "rod", small_tree_model, four_nodes, repeats=5, samples=512
        )
        assert runs.shape == (1,)

    def test_volume_ratio_runs_baseline_repeats(self, small_tree_model,
                                                four_nodes):
        runs = volume_ratio_runs(
            "random", small_tree_model, four_nodes, repeats=4, samples=512
        )
        assert runs.shape == (4,)
        assert np.all((runs >= 0) & (runs <= 1))

    def test_format_rows_custom_float_format(self):
        text = format_rows([{"x": 0.123456}], float_format="{:.2f}")
        assert "0.12" in text


class TestMetricsEdges:
    def test_utilization_timeline_requires_recording(self):
        result = SimulationResult(
            duration=1.0,
            node_busy=np.zeros(1),
            node_utilization=np.zeros(1),
            backlog_seconds=np.zeros(1),
            latency=LatencyStats(),
        )
        with pytest.raises(ValueError, match="timeline"):
            result.utilization_timeline(np.ones(1), 0.1)

    def test_migration_pause_counts_both_endpoints(self):
        from repro.dynamics import Migration

        result = SimulationResult(
            duration=1.0,
            node_busy=np.zeros(2),
            node_utilization=np.zeros(2),
            backlog_seconds=np.zeros(2),
            latency=LatencyStats(),
            migrations=[
                Migration("op", 0, 1, pause_seconds=0.3),
            ],
        )
        assert result.total_migration_pause == pytest.approx(0.6)
