"""Tests for the obs schema registry and its runtime validation twin."""

import pytest

from repro.obs import MemorySink, Tracer
from repro.obs.schema import (
    EVENT_SCHEMAS,
    METRIC_SCHEMAS,
    event_types,
    validate_event,
    validate_metric,
)


class TestRegistry:
    def test_event_types_mirror_the_registry(self):
        assert event_types() == frozenset(EVENT_SCHEMAS)

    def test_registry_covers_the_core_simulation_events(self):
        for type_ in (
            "sim.start", "sim.end", "node.busy", "fault.injected", "phase",
        ):
            assert type_ in EVENT_SCHEMAS

    def test_metric_registry_covers_the_core_families(self):
        for name in ("rod_sim_runs_total", "rod_sim_faults_total"):
            assert name in METRIC_SCHEMAS

    def test_required_fields_are_not_also_optional(self):
        for schema in EVENT_SCHEMAS.values():
            assert not set(schema.required) & set(schema.optional)


class TestValidateEvent:
    def test_conformant_emission_passes(self):
        validate_event("node.busy", {"node": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="not declared"):
            validate_event("no.such.event", {})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="node"):
            validate_event("node.busy", {})

    def test_undeclared_extra_rejected(self):
        with pytest.raises(ValueError, match="color"):
            validate_event("node.busy", {"node": 1, "color": "red"})

    def test_extra_allowed_event_accepts_context(self):
        validate_event(
            "phase", {"name": "x", "seconds": 0.5, "anything": 1}
        )


class TestValidateMetric:
    def test_conformant_registration_passes(self):
        validate_metric("rod_sim_faults_total", "counter", ("kind",))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="not declared"):
            validate_metric("nope_total", "counter")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="counter"):
            validate_metric("rod_sim_runs_total", "gauge")

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError, match="label"):
            validate_metric("rod_sim_faults_total", "counter", ())


class TestTracerValidation:
    def test_validating_tracer_rejects_bad_emission(self):
        tracer = Tracer(MemorySink(), validate=True)
        with pytest.raises(ValueError):
            tracer.emit("node.busy", t=1.0)

    def test_validating_tracer_accepts_conformant_emission(self):
        sink = MemorySink()
        tracer = Tracer(sink, validate=True)
        tracer.emit("node.busy", t=1.0, node=0)
        assert len(sink.events) == 1

    def test_default_tracer_does_not_validate(self):
        sink = MemorySink()
        Tracer(sink).emit("node.busy", t=1.0)
        assert len(sink.events) == 1
