"""The committed docs must match the schema registry.

``docs/observability.md`` carries generated event/metric catalog tables
between ``BEGIN/END GENERATED`` markers; ``scripts/gen_event_catalog.py``
rewrites them from ``repro.obs.schema``.  This pins the committed file
to the registry so a schema change cannot land without regenerating the
docs (CI runs the same check via ``--check``).
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_event_catalog", ROOT / "scripts" / "gen_event_catalog.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsCatalogInSync:
    def test_committed_tables_match_registry(self):
        gen = _load_generator()
        text = (ROOT / "docs" / "observability.md").read_text()
        assert gen.splice(text) == text, (
            "docs/observability.md catalog tables are stale; run "
            "`python scripts/gen_event_catalog.py`"
        )

    def test_check_mode_passes_on_committed_docs(self):
        gen = _load_generator()
        assert gen.main(["--check"]) == 0
