"""Unit tests for the annealing placer."""

import math
import random

import numpy as np
import pytest

from repro.core.rod import rod_place
from repro.core.volume import cache, qmc
from repro.placement import AnnealingPlacer


def _reference_place(placer, model, capacities):
    """The pre-optimization scorer: full weight-matrix rescore per move.

    Inlined here as the oracle for the incremental implementation — the
    two must make bit-identical acceptance decisions for the same seed.
    """
    caps = np.asarray(capacities, dtype=float)
    n = caps.shape[0]
    m = model.num_operators
    rng = random.Random(placer.seed)
    totals = model.column_totals()
    safe_totals = np.where(totals > 1e-12, totals, 1.0)
    capacity_share = caps / caps.sum()
    points = qmc.sample_unit_simplex(
        placer.samples, model.num_variables, method="halton"
    )

    if placer.start == "rod":
        assignment = list(rod_place(model, caps).assignment)
    else:
        assignment = [rng.randrange(n) for _ in range(m)]

    node_coeffs = np.zeros((n, model.num_variables))
    for j, node in enumerate(assignment):
        node_coeffs[node] += model.coefficients[j]

    def score(coeffs):
        share = coeffs / safe_totals
        share[:, totals <= 1e-12] = 0.0
        weights = share / capacity_share[:, None]
        feasible = np.all(points @ weights.T <= 1.0 + 1e-12, axis=1)
        return float(np.mean(feasible))

    current = score(node_coeffs)
    best = current
    best_assignment = tuple(assignment)
    temperature = placer.initial_temperature
    for _ in range(placer.iterations):
        j = rng.randrange(m)
        source = assignment[j]
        target = rng.randrange(n - 1)
        if target >= source:
            target += 1
        row = model.coefficients[j]
        node_coeffs[source] -= row
        node_coeffs[target] += row
        candidate = score(node_coeffs)
        delta = candidate - current
        if delta >= 0 or (
            temperature > 0
            and rng.random() < math.exp(delta / temperature)
        ):
            assignment[j] = target
            current = candidate
            if current > best:
                best = current
                best_assignment = tuple(assignment)
        else:
            node_coeffs[source] += row
            node_coeffs[target] -= row
        temperature *= placer.cooling
    return best_assignment


class TestAnnealingPlacer:
    def test_polish_never_worse_than_rod(self, small_tree_model,
                                         four_nodes):
        rod_plan = rod_place(small_tree_model, four_nodes)
        annealed = AnnealingPlacer(
            iterations=500, samples=1024, start="rod", seed=1
        ).place(small_tree_model, four_nodes)
        assert annealed.volume_ratio(samples=2048) >= (
            rod_plan.volume_ratio(samples=2048) - 0.02
        )

    def test_random_start_produces_valid_plan(self, small_tree_model,
                                              four_nodes):
        plan = AnnealingPlacer(
            iterations=300, samples=512, start="random", seed=2
        ).place(small_tree_model, four_nodes)
        assert len(plan.assignment) == small_tree_model.num_operators
        assert set(plan.assignment) <= set(range(4))

    def test_deterministic_for_seed(self, small_tree_model, four_nodes):
        kwargs = dict(iterations=200, samples=512, start="random", seed=3)
        a = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        b = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        assert a.assignment == b.assignment

    def test_more_iterations_do_not_hurt(self, small_tree_model,
                                         four_nodes):
        short = AnnealingPlacer(
            iterations=100, samples=1024, start="random", seed=4,
            initial_temperature=0.0,
        ).place(small_tree_model, four_nodes)
        long = AnnealingPlacer(
            iterations=2000, samples=1024, start="random", seed=4,
            initial_temperature=0.0,
        ).place(small_tree_model, four_nodes)
        # Greedy (zero-temperature) hill climbing is monotone in budget.
        assert long.volume_ratio(samples=2048) >= (
            short.volume_ratio(samples=2048) - 1e-9
        )

    def test_single_node_noop(self, small_tree_model):
        # n=1: no alternative target exists; must still terminate.
        plan = AnnealingPlacer(iterations=10, samples=256, seed=5).place(
            small_tree_model, [1.0]
        )
        assert set(plan.assignment) == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(iterations=0)
        with pytest.raises(ValueError):
            AnnealingPlacer(samples=0)
        with pytest.raises(ValueError):
            AnnealingPlacer(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingPlacer(initial_temperature=-1.0)
        with pytest.raises(ValueError):
            AnnealingPlacer(start="lukewarm")


class TestIncrementalScoring:
    """The optimized scorer must replay the old one's decisions exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("start", ["rod", "random"])
    def test_matches_full_rescoring_reference(self, small_tree_model,
                                              four_nodes, seed, start):
        placer = AnnealingPlacer(
            iterations=400, samples=512, start=start, seed=seed
        )
        plan = placer.place(small_tree_model, four_nodes)
        assert plan.assignment == _reference_place(
            placer, small_tree_model, four_nodes
        )

    def test_matches_reference_with_heterogeneous_capacities(
        self, small_tree_model
    ):
        capacities = [2.0, 1.0, 0.5, 1.5]
        placer = AnnealingPlacer(
            iterations=300, samples=512, start="random", seed=7
        )
        plan = placer.place(small_tree_model, capacities)
        assert plan.assignment == _reference_place(
            placer, small_tree_model, capacities
        )


class TestSharedSampleCache:
    def test_repeat_placements_share_cached_points(self, small_tree_model,
                                                   four_nodes):
        # Identical configurations must produce identical plans, and the
        # second run must reuse the first run's sample points instead of
        # regenerating them.
        cache.clear_cache()
        kwargs = dict(iterations=100, samples=512, start="rod", seed=9)
        first = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        misses_after_first = cache.cache_stats()["misses"]
        second = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        stats = cache.cache_stats()
        assert first.assignment == second.assignment
        assert stats["misses"] == misses_after_first
        assert stats["hits"] >= 1

    def test_placer_and_evaluation_share_one_stream(self, small_tree_model,
                                                    four_nodes):
        # The placer's scoring points and a later volume_ratio() call
        # draw from the same cached stream (same dimension/method/seed).
        cache.clear_cache()
        plan = AnnealingPlacer(
            iterations=50, samples=512, seed=1
        ).place(small_tree_model, four_nodes)
        misses = cache.cache_stats()["misses"]
        plan.volume_ratio(samples=512)
        stats = cache.cache_stats()
        assert stats["misses"] == misses
        assert stats["hits"] >= 1


class TestBatchedScoring:
    def test_batched_plan_is_valid_and_deterministic(self, small_tree_model,
                                                     four_nodes):
        config = dict(iterations=400, samples=512, seed=3, score_batch=8)
        first = AnnealingPlacer(**config).place(small_tree_model, four_nodes)
        second = AnnealingPlacer(**config).place(small_tree_model, four_nodes)
        assert first.assignment == second.assignment
        assert all(0 <= node < 4 for node in first.assignment)

    def test_batched_polish_never_worse_than_rod(self, small_tree_model,
                                                 four_nodes):
        rod_volume = rod_place(
            small_tree_model, four_nodes
        ).volume_ratio(samples=2048)
        plan = AnnealingPlacer(
            iterations=600, samples=1024, seed=1, score_batch=16
        ).place(small_tree_model, four_nodes)
        assert plan.volume_ratio(samples=2048) >= rod_volume - 1e-9

    def test_jobs_do_not_change_the_batched_trajectory(self,
                                                       small_tree_model,
                                                       four_nodes):
        # The pool path scores candidates through per-move bundles; it
        # must reproduce the vectorized local scoring move for move.
        serial = AnnealingPlacer(
            iterations=200, samples=512, seed=7, score_batch=8, jobs=1
        ).place(small_tree_model, four_nodes)
        fanned = AnnealingPlacer(
            iterations=200, samples=512, seed=7, score_batch=8, jobs=2
        ).place(small_tree_model, four_nodes)
        assert serial.assignment == fanned.assignment

    def test_batch_counts_against_iteration_budget(self, small_tree_model,
                                                   four_nodes):
        # A K-proposal round spends K iterations: a budget of K draws
        # exactly one round, so huge K cannot multiply the work done.
        events = []

        class Spy:
            enabled = True

            def emit(self, event_type, **fields):
                events.append((event_type, fields))

        AnnealingPlacer(
            iterations=64, samples=256, seed=0, score_batch=64,
            tracer=Spy(), trace_every=1,
        ).place(small_tree_model, four_nodes)
        rounds = [f for t, f in events if t == "placement.iteration"]
        assert rounds, "batched search should trace its rounds"
        assert max(f["iteration"] for f in rounds) <= 64


class TestRefinementKnobs:
    def test_initial_assignment_overrides_start(self, small_tree_model,
                                                four_nodes):
        m = small_tree_model.num_operators
        pinned = tuple(j % 4 for j in range(m))
        plan = AnnealingPlacer(
            iterations=1, samples=256, seed=0, initial_temperature=0.0,
            initial_assignment=pinned,
        ).place(small_tree_model, four_nodes)
        # One zero-temperature iteration can apply at most one move.
        moved = sum(1 for a, b in zip(plan.assignment, pinned) if a != b)
        assert moved <= 1

    def test_all_true_mask_is_bit_identical_to_no_mask(self,
                                                       small_tree_model,
                                                       four_nodes):
        config = dict(iterations=300, samples=512, seed=5)
        bare = AnnealingPlacer(**config).place(small_tree_model, four_nodes)
        masked = AnnealingPlacer(
            sample_mask=np.ones(512, dtype=bool), **config
        ).place(small_tree_model, four_nodes)
        assert bare.assignment == masked.assignment

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(samples=128, sample_mask=np.ones(64, dtype=bool))

    def test_total_capacity_validated(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(total_capacity=0.0)

    def test_score_batch_and_jobs_validated(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(score_batch=0)
        with pytest.raises(ValueError):
            AnnealingPlacer(jobs=0)

    def test_total_capacity_override_scores_against_global_share(
            self, small_tree_model):
        # Refining two nodes of a notional eight-node cluster: the
        # override shrinks each node's capacity share, so plans that
        # look feasible locally score as infeasible globally.
        local = AnnealingPlacer(iterations=50, samples=512, seed=2)
        global_view = AnnealingPlacer(
            iterations=50, samples=512, seed=2, total_capacity=8.0
        )
        caps = [1.0, 1.0]
        loose = local.place(small_tree_model, caps)
        tight = global_view.place(small_tree_model, caps)
        assert len(tight.assignment) == len(loose.assignment)
