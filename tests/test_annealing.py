"""Unit tests for the annealing placer."""

import pytest

from repro.core.rod import rod_place
from repro.placement import AnnealingPlacer


class TestAnnealingPlacer:
    def test_polish_never_worse_than_rod(self, small_tree_model,
                                         four_nodes):
        rod_plan = rod_place(small_tree_model, four_nodes)
        annealed = AnnealingPlacer(
            iterations=500, samples=1024, start="rod", seed=1
        ).place(small_tree_model, four_nodes)
        assert annealed.volume_ratio(samples=2048) >= (
            rod_plan.volume_ratio(samples=2048) - 0.02
        )

    def test_random_start_produces_valid_plan(self, small_tree_model,
                                              four_nodes):
        plan = AnnealingPlacer(
            iterations=300, samples=512, start="random", seed=2
        ).place(small_tree_model, four_nodes)
        assert len(plan.assignment) == small_tree_model.num_operators
        assert set(plan.assignment) <= set(range(4))

    def test_deterministic_for_seed(self, small_tree_model, four_nodes):
        kwargs = dict(iterations=200, samples=512, start="random", seed=3)
        a = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        b = AnnealingPlacer(**kwargs).place(small_tree_model, four_nodes)
        assert a.assignment == b.assignment

    def test_more_iterations_do_not_hurt(self, small_tree_model,
                                         four_nodes):
        short = AnnealingPlacer(
            iterations=100, samples=1024, start="random", seed=4,
            initial_temperature=0.0,
        ).place(small_tree_model, four_nodes)
        long = AnnealingPlacer(
            iterations=2000, samples=1024, start="random", seed=4,
            initial_temperature=0.0,
        ).place(small_tree_model, four_nodes)
        # Greedy (zero-temperature) hill climbing is monotone in budget.
        assert long.volume_ratio(samples=2048) >= (
            short.volume_ratio(samples=2048) - 1e-9
        )

    def test_single_node_noop(self, small_tree_model):
        # n=1: no alternative target exists; must still terminate.
        plan = AnnealingPlacer(iterations=10, samples=256, seed=5).place(
            small_tree_model, [1.0]
        )
        assert set(plan.assignment) == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(iterations=0)
        with pytest.raises(ValueError):
            AnnealingPlacer(samples=0)
        with pytest.raises(ValueError):
            AnnealingPlacer(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingPlacer(initial_temperature=-1.0)
        with pytest.raises(ValueError):
            AnnealingPlacer(start="lukewarm")
