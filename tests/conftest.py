"""Shared fixtures: the paper's worked examples and small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import (
    RandomGraphConfig,
    join_graph,
    monitoring_graph,
    paper_example3_graph,
    paper_example_graph,
    random_tree_graph,
)


@pytest.fixture
def example_graph():
    """Figure 4 / Example 2: two 2-operator chains."""
    return paper_example_graph()


@pytest.fixture
def example_model(example_graph):
    return build_load_model(example_graph)


@pytest.fixture
def example3_graph():
    """Example 3 / Figure 13: variable selectivity + window join."""
    return paper_example3_graph()


@pytest.fixture
def example3_model(example3_graph):
    return build_load_model(example3_graph)


@pytest.fixture
def small_tree_model():
    """A 3-input, 18-operator random tree workload."""
    config = RandomGraphConfig(num_inputs=3, operators_per_tree=6)
    return build_load_model(random_tree_graph(config, seed=123))


@pytest.fixture
def monitoring_model():
    return build_load_model(monitoring_graph(num_links=3, seed=7))


@pytest.fixture
def join_model():
    return build_load_model(
        join_graph(num_join_pairs=1, downstream_per_join=2, window=0.1, seed=5)
    )


@pytest.fixture
def two_nodes():
    return np.array([1.0, 1.0])


@pytest.fixture
def four_nodes():
    return np.array([1.0, 1.0, 1.0, 1.0])
