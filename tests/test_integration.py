"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

from repro import build_load_model, rod_place
from repro.core.clustering import communication_feasible_set, search_clusterings
from repro.graphs import (
    graph_from_statistics,
    join_graph,
    measure_statistics,
    monitoring_graph,
    random_tree_graph,
)
from repro.graphs.generator import RandomGraphConfig
from repro.placement import LLFPlacer
from repro.simulator import FeasibilityProbe, Simulator
from repro.workload import rate_series, scale_point_to_utilization


class TestPlanAndSimulate:
    """Generate -> model -> place -> replay a burst -> verify behaviour."""

    def test_rod_absorbs_burst_that_melts_balancer(self):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=12)
        graph = random_tree_graph(config, seed=77)
        model = build_load_model(graph)
        caps = [1.0, 1.0, 1.0]

        rod_plan = rod_place(model, caps)
        # Balancer tuned for a lopsided average: stream 0 dominant.
        llf_plan = LLFPlacer(rates=[10.0, 1.0]).place(model, caps)

        # Burst arrives on stream 1 instead.
        burst = scale_point_to_utilization(model, caps, [1.0, 10.0], 0.9)
        rod_util = rod_plan.feasible_set().utilizations(burst).max()
        llf_util = llf_plan.feasible_set().utilizations(burst).max()
        assert rod_util < llf_util

        rod_sim = Simulator(rod_plan, step_seconds=0.1).run(
            rates=burst, duration=10.0
        )
        llf_sim = Simulator(llf_plan, step_seconds=0.1).run(
            rates=burst, duration=10.0
        )
        assert rod_sim.max_utilization == pytest.approx(rod_util, abs=0.05)
        assert llf_sim.max_utilization == pytest.approx(llf_util, abs=0.05)

    def test_trace_replay_end_to_end(self):
        graph = monitoring_graph(num_links=2, seed=3)
        model = build_load_model(graph)
        caps = [1.0, 1.0]
        plan = rod_place(model, caps)
        series = rate_series(2, 100, mean_rates=[150.0, 150.0], seed=4)
        result = Simulator(plan, step_seconds=0.1).run(rate_series=series)
        assert result.tuples_in > 0
        assert result.tuples_out > 0
        assert not result.latency.is_empty


class TestLinearizedPipeline:
    """Joins: linearize -> place -> verify the simulator agrees."""

    def test_analytic_and_simulated_verdicts_agree(self):
        graph = join_graph(
            num_join_pairs=1, downstream_per_join=2, window=0.2, seed=6
        )
        model = build_load_model(graph)
        caps = [1.0, 1.0]
        plan = rod_place(model, caps)
        probe = FeasibilityProbe(duration=10.0, step_seconds=0.02)

        for scale, expected in ((1.0, True), (8.0, False)):
            rates = np.full(graph.num_inputs, 40.0) * scale
            point = model.variable_point(rates)
            analytic = plan.feasible_set().is_feasible(point)
            assert analytic == expected
            assert probe.is_feasible(plan, rates) == expected


class TestStatisticsDrivenPlanning:
    """The full Borealis loop: trial run -> measure -> plan -> deploy."""

    def test_measured_plan_close_to_true_plan(self):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=8)
        graph = random_tree_graph(config, seed=15)
        stats = measure_statistics(
            graph, rates=[40.0, 40.0], duration=25.0, seed=2
        )
        assert stats.coverage() == 1.0
        measured_model = build_load_model(graph_from_statistics(graph, stats))
        true_model = build_load_model(graph)
        caps = [1.0, 1.0, 1.0]

        measured_plan = rod_place(measured_model, caps)
        true_plan = rod_place(true_model, caps)
        # Evaluate the measured plan against the *true* model.
        from repro import placement_from_mapping

        deployed = placement_from_mapping(
            true_model, caps, measured_plan.to_mapping()
        )
        assert deployed.volume_ratio(samples=2048) >= (
            true_plan.volume_ratio(samples=2048) - 0.1
        )


class TestClusteringPipeline:
    def test_clustered_plan_survives_simulation_with_transfer_costs(self):
        graph = monitoring_graph(num_links=2, seed=9)
        model = build_load_model(graph)
        caps = [1.0, 1.0]
        transfer = 3e-4
        best = search_clusterings(model, caps, transfer)
        comm_set = communication_feasible_set(best.placement, transfer)

        rates = scale_point_to_utilization(model, caps, [1.0, 1.0], 0.5)
        predicted = comm_set.utilizations(rates).max()
        result = Simulator(
            best.placement, step_seconds=0.1, transfer_costs=transfer
        ).run(rates=rates, duration=10.0)
        assert result.max_utilization == pytest.approx(predicted, rel=0.1)
