"""Unit tests for the resilience-analysis toolkit."""

import math

import numpy as np
import pytest

from repro import placement_from_mapping
from repro.core.analysis import (
    axis_headroom,
    bottleneck_report,
    headroom,
    resilience_summary,
)


@pytest.fixture
def plan(example_model, two_nodes):
    # L^n = [[10, 0], [0, 11]] (each chain on its own node).
    return placement_from_mapping(
        example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
    )


class TestHeadroom:
    def test_exact_scale_to_saturation(self, plan):
        # Node loads at (0.05, 0.05): (0.5, 0.55); scale = 1/0.55.
        assert headroom(plan, [0.05, 0.05]) == pytest.approx(1 / 0.55)

    def test_infeasible_point_below_one(self, plan):
        assert headroom(plan, [0.2, 0.0]) == pytest.approx(0.5)

    def test_zero_load_is_infinite(self, plan):
        assert math.isinf(headroom(plan, [0.0, 0.0]))

    def test_scaling_by_headroom_is_exactly_feasible(self, plan):
        rates = np.array([0.03, 0.06])
        scale = headroom(plan, rates)
        fs = plan.feasible_set()
        assert fs.is_feasible(rates * scale, slack=1e-9)
        assert not fs.is_feasible(rates * scale * 1.01)

    def test_shape_validation(self, plan):
        with pytest.raises(ValueError):
            headroom(plan, [1.0])
        with pytest.raises(ValueError):
            headroom(plan, [-1.0, 0.0])


class TestAxisHeadroom:
    def test_independent_chains(self, plan):
        # At (0.05, 0.05) node 0 load is 0.5: stream 0 can add 0.05.
        assert axis_headroom(plan, [0.05, 0.05], 0) == pytest.approx(0.05)
        # Node 1 load is 0.55: stream 1 can add 0.45/11.
        assert axis_headroom(plan, [0.05, 0.05], 1) == pytest.approx(
            0.45 / 11
        )

    def test_saturated_system_has_zero_headroom(self, plan):
        assert axis_headroom(plan, [0.2, 0.0], 0) == 0.0

    def test_unloaded_axis_is_infinite(self, example_model):
        plan = placement_from_mapping(
            example_model, [1.0, 1.0],
            {"o1": 0, "o2": 0, "o3": 0, "o4": 0},
        )
        # Node 1 is empty; stream axes still loaded on node 0 though.
        # Construct instead: model variable with zero column would be
        # needed; here both are loaded, so check finiteness.
        assert math.isfinite(axis_headroom(plan, [0.01, 0.01], 0))

    def test_burst_point_is_exactly_feasible(self, plan):
        rates = np.array([0.04, 0.04])
        extra = axis_headroom(plan, rates, 1)
        burst = rates.copy()
        burst[1] += extra
        fs = plan.feasible_set()
        assert fs.is_feasible(burst, slack=1e-9)
        burst[1] += 1e-3
        assert not fs.is_feasible(burst)

    def test_axis_range_checked(self, plan):
        with pytest.raises(IndexError):
            axis_headroom(plan, [0.0, 0.0], 5)


class TestBottleneckReport:
    def test_identifies_hotter_node(self, plan):
        report = bottleneck_report(plan, [0.01, 0.08])
        assert report.node == 1
        assert report.utilization == pytest.approx(0.88)
        assert report.saturation_scale == pytest.approx(1 / 0.88)

    def test_dominant_variables(self, plan):
        report = bottleneck_report(plan, [0.01, 0.08])
        assert report.dominant_variables[0][0] == "I2"
        assert report.dominant_variables[0][1] == pytest.approx(1.0)

    def test_top_validated(self, plan):
        with pytest.raises(ValueError):
            bottleneck_report(plan, [0.01, 0.01], top=0)


class TestSummary:
    def test_mentions_every_variable(self, plan):
        text = resilience_summary(plan, [0.05, 0.05])
        assert "I1" in text and "I2" in text
        assert "headroom" in text
        assert "bottleneck" in text

    def test_default_probe_point(self, plan):
        text = resilience_summary(plan)
        assert "utilization" in text
