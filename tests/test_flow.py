"""Tests for repro.check.flow — the CFG/dataflow engine and REPRO6xx rules."""

import ast
import textwrap
from pathlib import Path

from repro.check import lint_paths, lint_source
from repro.check.flow import (
    FLOW_CODES,
    FunctionFlow,
    analyze_module,
    build_cfg,
    iter_functions,
)
from repro.check.flow.rules import active_flow_codes

REPO_ROOT = Path(__file__).resolve().parents[1]

#: In the REPRO601 wall-clock scope (simulator path under repro).
SIM_PATH = Path("src/repro/simulator/engine.py")
#: Flow rules run, but wall-clock scope does not apply.
LIB_PATH = Path("src/repro/experiments/demo.py")


def flow_codes(source, path=LIB_PATH):
    tree = ast.parse(textwrap.dedent(source))
    return [f["code"] for f in analyze_module(tree, path)]


def flow_findings(source, path=LIB_PATH):
    tree = ast.parse(textwrap.dedent(source))
    return analyze_module(tree, path)


# ---------------------------------------------------------------- CFG layer


class TestControlFlowGraph:
    def build(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return tree.body[0], build_cfg(tree.body[0])

    def test_straight_line_statements_covered(self):
        func, cfg = self.build(
            """
            def f(x):
                a = x + 1
                b = a * 2
                return b
            """
        )
        covered = list(cfg.statements())
        assert len(covered) == 3

    def test_if_else_creates_branches_that_rejoin(self):
        func, cfg = self.build(
            """
            def f(c):
                if c:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        # The return statement is reachable from both branch blocks.
        ret_blocks = [
            block for block in cfg.blocks
            if any(isinstance(s, ast.Return) for s in block.statements)
        ]
        assert len(ret_blocks) == 1
        assert len(ret_blocks[0].predecessors) == 2

    def test_while_loop_has_back_edge(self):
        func, cfg = self.build(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        has_back_edge = any(
            successor.index <= block.index
            for block in cfg.blocks
            for successor in block.successors
        )
        assert has_back_edge

    def test_try_handler_is_reachable(self):
        func, cfg = self.build(
            """
            def f(x):
                try:
                    y = x()
                except ValueError:
                    y = 0
                return y
            """
        )
        handler_blocks = [
            block for block in cfg.blocks
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.value, ast.Constant)
                and s.value.value == 0
                for s in block.statements
            )
        ]
        assert handler_blocks and handler_blocks[0].predecessors


class TestReachingDefinitions:
    def flow_of(self, source):
        tree = ast.parse(textwrap.dedent(source))
        func = tree.body[0]
        return func, FunctionFlow(func)

    def test_rebinding_kills_the_parameter_definition(self):
        func, flow = self.flow_of(
            """
            def f(x):
                x = 1
                return x
            """
        )
        ret = func.body[-1]
        kinds = {d.kind for d in flow.reach_in(ret).get("x", set())}
        assert kinds == {"whole"}

    def test_branches_merge_both_definitions(self):
        func, flow = self.flow_of(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = func.body[-1]
        assert len(flow.reach_in(ret).get("x", set())) == 2

    def test_parameters_reach_the_entry(self):
        func, flow = self.flow_of(
            """
            def f(a, b):
                return a + b
            """
        )
        ret = func.body[-1]
        reach = flow.reach_in(ret)
        assert {d.kind for d in reach["a"]} == {"param"}

    def test_iter_functions_finds_nested_defs(self):
        tree = ast.parse(textwrap.dedent(
            """
            def outer():
                def inner():
                    pass
                return inner
            """
        ))
        assert len(list(iter_functions(tree))) == 2


# -------------------------------------------------------- REPRO600 fixtures


class TestUnorderedIterationOrder:
    def test_set_loop_order_reaching_return_flagged(self):
        assert flow_codes(
            """
            def pick(xs):
                s = set(xs)
                out = []
                for v in s:
                    out.append(v)
                return out
            """
        ) == ["REPRO600"]

    def test_sorted_iteration_ok(self):
        assert flow_codes(
            """
            def pick(xs):
                out = []
                for v in sorted(set(xs)):
                    out.append(v)
                return out
            """
        ) == []

    def test_numeric_accumulator_collapses_order(self):
        # total += v over a set is order-insensitive for ints; the
        # float variant is REPRO604's business, not REPRO600's.
        assert flow_codes(
            """
            def total(xs):
                s = set(xs)
                t = 0
                for v in s:
                    t += v
                return t
            """
        ) == []

    def test_list_of_set_subscript_flagged(self):
        assert flow_codes(
            """
            def first(xs):
                return list(set(xs))[0]
            """
        ) == ["REPRO600"]

    def test_join_over_set_into_emit_flagged(self):
        findings = flow_findings(
            """
            def emit_members(tracer, members):
                s = set(members)
                tracer.emit("phase", name=",".join(s), seconds=0.0)
            """
        )
        assert [f["code"] for f in findings] == ["REPRO600"]
        assert "trace event" in str(findings[0]["message"])

    def test_sort_in_place_before_return_ok(self):
        assert flow_codes(
            """
            def pick(xs):
                out = []
                for v in set(xs):
                    out.append(v)
                out.sort()
                return out
            """
        ) == []

    def test_returning_the_set_itself_ok(self):
        # A set value is order-free; only *iteration order* escaping is
        # the hazard.
        assert flow_codes(
            """
            def dedupe(xs):
                return set(xs)
            """
        ) == []

    def test_membership_test_against_set_ok(self):
        assert flow_codes(
            """
            def keep(xs, allowed):
                allow = set(allowed)
                out = [x for x in xs if x in allow]
                return out
            """
        ) == []

    def test_score_call_is_a_sink(self):
        assert flow_codes(
            """
            def best(candidates, score_plan):
                order = list(set(candidates))
                return score_plan(order)
            """
        ) == ["REPRO600"]

    def test_finding_is_anchored_at_the_origin_line(self):
        findings = flow_findings(
            """
            def pick(xs):
                s = set(xs)
                out = []
                for v in s:
                    out.append(v)
                return out
            """
        )
        # Line 5 is the ``for`` header — where the noqa belongs.
        assert findings[0]["lineno"] == 5


# -------------------------------------------------------- REPRO604 fixtures


class TestFloatAccumulation:
    def test_float_accumulator_over_set_flagged(self):
        assert flow_codes(
            """
            def total(xs):
                s = set(xs)
                t = 0.0
                for v in s:
                    t += v
                return t
            """
        ) == ["REPRO604"]

    def test_sum_over_set_flagged(self):
        assert flow_codes(
            """
            def total(xs):
                return sum(set(xs))
            """
        ) == ["REPRO604"]

    def test_fsum_ok(self):
        assert flow_codes(
            """
            import math

            def total(xs):
                return math.fsum(set(xs))
            """
        ) == []

    def test_sorted_accumulation_ok(self):
        assert flow_codes(
            """
            def total(xs):
                t = 0.0
                for v in sorted(set(xs)):
                    t += v
                return t
            """
        ) == []


# -------------------------------------------------------- REPRO601 fixtures


class TestWallClock:
    def test_wall_clock_in_simulator_path_flagged(self):
        assert flow_codes(
            """
            import time

            def step(state):
                start = time.time()
                return state + start
            """,
            path=SIM_PATH,
        ) == ["REPRO601"]

    def test_obs_consumption_is_exempt(self):
        assert flow_codes(
            """
            import time

            def profile(metrics):
                metrics.observe(time.perf_counter())
            """,
            path=SIM_PATH,
        ) == []

    def test_out_of_scope_path_not_checked(self):
        assert flow_codes(
            """
            import time

            def step(state):
                return state + time.time()
            """,
            path=LIB_PATH,
        ) == []

    def test_datetime_now_flagged(self):
        assert flow_codes(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            path=SIM_PATH,
        ) == ["REPRO601"]

    def test_scope_drives_active_codes(self):
        assert "REPRO601" in active_flow_codes(SIM_PATH)
        assert "REPRO601" not in active_flow_codes(LIB_PATH)


# -------------------------------------------- REPRO602 / REPRO603 fixtures


class TestWorkerGlobalMutation:
    def test_worker_writing_module_dict_flagged(self):
        assert flow_codes(
            """
            from repro.parallel import parallel_map

            CACHE = {}

            def worker(task):
                CACHE[task] = True
                return task

            def run(tasks):
                return parallel_map(worker, tasks)
            """
        ) == ["REPRO602"]

    def test_local_shadow_ok(self):
        assert flow_codes(
            """
            from repro.parallel import parallel_map

            CACHE = {}

            def worker(task):
                CACHE = {}
                CACHE[task] = True
                return CACHE

            def run(tasks):
                return parallel_map(worker, tasks)
            """
        ) == []

    def test_unsubmitted_function_not_checked(self):
        # Mutating module state is only a cross-process hazard for
        # functions that actually cross a process boundary.
        assert flow_codes(
            """
            CACHE = {}

            def warm(key, value):
                CACHE[key] = value
            """
        ) == []

    def test_executor_submit_and_mutating_method_flagged(self):
        assert flow_codes(
            """
            RESULTS = []

            def worker(task):
                RESULTS.append(task)
                return task

            def run(executor, tasks):
                return [executor.submit(worker, t) for t in tasks]
            """
        ) == ["REPRO602"]


class TestSharedRng:
    def test_lambda_capturing_module_rng_flagged(self):
        assert flow_codes(
            """
            import random
            from repro.parallel import parallel_map

            RNG = random.Random(7)

            def run(tasks):
                return parallel_map(lambda t: t + RNG.random(), tasks)
            """
        ) == ["REPRO603"]

    def test_worker_reading_module_rng_flagged(self):
        assert flow_codes(
            """
            import random
            from repro.parallel import parallel_map

            RNG = random.Random(7)

            def worker(t):
                return RNG.random() + t

            def run(tasks):
                return parallel_map(worker, tasks)
            """
        ) == ["REPRO603"]

    def test_rng_in_task_payload_flagged(self):
        assert flow_codes(
            """
            import random
            from repro.parallel import parallel_map

            def worker(task):
                rng, value = task
                return rng.random() + value

            def run(tasks):
                rng = random.Random(3)
                return parallel_map(worker, [(rng, t) for t in tasks])
            """
        ) == ["REPRO603"]

    def test_derive_seed_pattern_ok(self):
        assert flow_codes(
            """
            import random
            from repro.parallel import derive_seed, parallel_map

            def worker(task):
                seed, value = task
                rng = random.Random(seed)
                return rng.random() + value

            def run(tasks, base):
                payload = [
                    (derive_seed(base, i), t)
                    for i, t in enumerate(tasks)
                ]
                return parallel_map(worker, payload)
            """
        ) == []


# -------------------------------------------- REPRO610 / REPRO611 fixtures


class TestEventSchemaConformance:
    def test_unknown_event_type_flagged(self):
        assert flow_codes(
            """
            def f(tracer):
                tracer.emit("no.such.event", t=1.0)
            """
        ) == ["REPRO610"]

    def test_missing_required_field_flagged(self):
        assert flow_codes(
            """
            def f(tracer):
                tracer.emit("node.busy", t=1.0)
            """
        ) == ["REPRO610"]

    def test_undeclared_extra_field_flagged(self):
        assert flow_codes(
            """
            def f(tracer):
                tracer.emit("node.busy", node=1, color="red")
            """
        ) == ["REPRO610"]

    def test_conformant_emission_ok(self):
        assert flow_codes(
            """
            def f(tracer):
                tracer.emit("node.busy", t=2.0, node=1)
            """
        ) == []

    def test_dynamic_splat_skips_required_check(self):
        assert flow_codes(
            """
            def f(tracer, fields):
                tracer.emit("node.busy", **fields)
            """
        ) == []

    def test_extra_allowed_event_accepts_context_fields(self):
        assert flow_codes(
            """
            def f(tracer):
                tracer.emit("phase", name="x", seconds=0.5, anything=1)
            """
        ) == []


class TestMetricSchemaConformance:
    def test_unknown_metric_flagged(self):
        assert flow_codes(
            """
            def f(registry):
                return registry.counter("nope_total")
            """
        ) == ["REPRO611"]

    def test_kind_mismatch_flagged(self):
        assert flow_codes(
            """
            def f(registry):
                return registry.gauge("rod_sim_runs_total")
            """
        ) == ["REPRO611"]

    def test_label_mismatch_flagged(self):
        assert flow_codes(
            """
            def f(registry):
                return registry.counter("rod_sim_faults_total")
            """
        ) == ["REPRO611"]

    def test_conformant_registration_ok(self):
        assert flow_codes(
            """
            def f(registry):
                return registry.counter(
                    "rod_sim_faults_total", "faults", ("kind",)
                )
            """
        ) == []

    def test_name_resolved_through_module_constant(self):
        assert flow_codes(
            """
            RUNS_METRIC = "rod_sim_runs_total"

            def f(registry):
                return registry.counter(RUNS_METRIC, "runs completed")
            """
        ) == []

    def test_dynamic_name_skipped(self):
        assert flow_codes(
            """
            def f(registry, name):
                return registry.counter(name)
            """
        ) == []


# ---------------------------------------------------- REPRO612 fixtures


class TestSpanLifecycle:
    def test_close_missing_on_one_path_flagged(self):
        assert flow_codes(
            """
            def f(emitter, batch, hot):
                span = emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
                if hot:
                    emitter.close_span(
                        span, 1.0, node=0, start=0.5, work=0.1, out=1
                    )
            """
        ) == ["REPRO612"]

    def test_closed_on_every_path_ok(self):
        assert flow_codes(
            """
            def f(emitter, hot):
                span = emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
                if hot:
                    emitter.close_span(
                        span, 1.0, node=0, start=0.5, work=0.1, out=1
                    )
                else:
                    emitter.close_span(
                        span, 2.0, node=1, start=0.5, work=0.1, out=1
                    )
            """
        ) == []

    def test_handoff_as_call_argument_ok(self):
        # Passing the id onward (e.g. into a Batch) transfers ownership;
        # the receiver closes it later.
        assert flow_codes(
            """
            def f(emitter, push, t):
                span = emitter.open_span(
                    t, operator="a", port=0, count=1, birth=t
                )
                push(Batch(birth=t, span=span))
            """
        ) == []

    def test_return_hands_span_off(self):
        assert flow_codes(
            """
            def f(emitter, t):
                span = emitter.open_span(
                    t, operator="a", port=0, count=1, birth=t
                )
                return span
            """
        ) == []

    def test_store_into_container_hands_off(self):
        assert flow_codes(
            """
            def f(emitter, pending, key):
                span = emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
                pending[key] = span
            """
        ) == []

    def test_discarded_open_flagged(self):
        assert flow_codes(
            """
            def f(emitter):
                emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
            """
        ) == ["REPRO612"]

    def test_rebinding_before_close_flagged(self):
        assert flow_codes(
            """
            def f(emitter):
                span = emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
                span = None
                return span
            """
        ) == ["REPRO612"]

    def test_close_only_inside_loop_body_flagged(self):
        # A for body can run zero times, so a close inside it does not
        # cover the fall-through path.
        assert flow_codes(
            """
            def f(emitter, items):
                span = emitter.open_span(
                    0.0, operator="a", port=0, count=1, birth=0.0
                )
                for item in items:
                    emitter.close_span(
                        span, 1.0, node=0, start=0.5, work=0.1, out=1
                    )
            """
        ) == ["REPRO612"]

    def test_noqa_suppresses_at_open_site(self):
        source = (
            "__all__ = []\n"
            "def f(emitter):\n"
            "    span = emitter.open_span(  # noqa: REPRO612  # test-only\n"
            "        0.0, operator='a', port=0, count=1, birth=0.0\n"
            "    )\n"
            "    return None\n"
        )
        assert [
            d.code for d in lint_source(source, LIB_PATH, flow=True)
        ] == []


# ------------------------------------------------------- lint integration


class TestLintIntegration:
    TRIGGER = (
        "def pick(xs):\n"
        "    out = []\n"
        "    for v in set(xs):\n"
        "        out.append(v)\n"
        "    return out\n"
    )

    def test_flow_codes_surface_through_lint_source(self):
        codes = [
            d.code
            for d in lint_source(
                "__all__ = []\n" + self.TRIGGER, LIB_PATH, flow=True
            )
        ]
        assert codes == ["REPRO600"]

    def test_flow_off_by_default_in_lint_source(self):
        codes = [
            d.code
            for d in lint_source("__all__ = []\n" + self.TRIGGER, LIB_PATH)
        ]
        assert codes == []

    def test_test_paths_skip_flow_rules(self):
        codes = [
            d.code
            for d in lint_source(
                self.TRIGGER, Path("tests/test_example.py"), flow=True
            )
        ]
        assert codes == []

    def test_noqa_suppresses_flow_finding_on_the_origin_line(self):
        source = "__all__ = []\n" + self.TRIGGER.replace(
            "    for v in set(xs):",
            "    for v in set(xs):  # noqa: REPRO600  # order irrelevant",
        )
        assert [
            d.code for d in lint_source(source, LIB_PATH, flow=True)
        ] == []

    def test_every_flow_code_is_registered(self):
        assert set(active_flow_codes(SIM_PATH)) <= set(FLOW_CODES)


class TestShippedTreeIsFlowClean:
    def test_src_runs_flow_clean(self):
        """Acceptance criterion: check --flow over src/ finds nothing."""
        report = lint_paths([REPO_ROOT / "src"], flow=True)
        assert [d.format() for d in report] == []
