"""Unit tests for Quasi-Monte-Carlo volume estimation."""

import math

import numpy as np
import pytest

from repro.core.volume import qmc


class TestVanDerCorput:
    def test_base2_prefix(self):
        seq = qmc.van_der_corput(7, 2)
        assert np.allclose(
            seq, [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        )

    def test_base3_prefix(self):
        seq = qmc.van_der_corput(3, 3)
        assert np.allclose(seq, [1 / 3, 2 / 3, 1 / 9])

    def test_skip_continues_sequence(self):
        full = qmc.van_der_corput(10, 2)
        tail = qmc.van_der_corput(5, 2, skip=5)
        assert np.allclose(full[5:], tail)

    def test_values_in_unit_interval(self):
        seq = qmc.van_der_corput(200, 5)
        assert np.all((seq >= 0) & (seq < 1))

    def test_low_discrepancy(self):
        # First 2^k - 1 base-2 points are perfectly stratified.
        seq = qmc.van_der_corput(255, 2)
        hist, _ = np.histogram(seq, bins=16, range=(0, 1))
        assert hist.max() - hist.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            qmc.van_der_corput(3, 1)
        with pytest.raises(ValueError):
            qmc.van_der_corput(-1, 2)


class TestHalton:
    def test_shape_and_range(self):
        pts = qmc.halton(100, 4)
        assert pts.shape == (100, 4)
        assert np.all((pts >= 0) & (pts < 1))

    def test_columns_use_distinct_primes(self):
        pts = qmc.halton(8, 2)
        assert np.allclose(pts[:, 0], qmc.van_der_corput(8, 2))
        assert np.allclose(pts[:, 1], qmc.van_der_corput(8, 3))

    def test_dimension_limit(self):
        with pytest.raises(ValueError, match="Halton bases"):
            qmc.halton(10, 100)
        with pytest.raises(ValueError):
            qmc.halton(10, 0)

    def test_first_primes(self):
        assert qmc.first_primes(5) == (2, 3, 5, 7, 11)
        with pytest.raises(ValueError):
            qmc.first_primes(-1)


class TestSimplexSampling:
    def test_points_inside_simplex(self):
        pts = qmc.sample_unit_simplex(500, 3)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1.0 + 1e-12)

    def test_random_method_inside_simplex(self):
        pts = qmc.sample_unit_simplex(500, 4, method="random", seed=1)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1.0 + 1e-12)

    def test_mean_matches_uniform_simplex(self):
        # Uniform over {x >= 0, sum <= 1} has E[x_k] = 1 / (d + 1).
        pts = qmc.sample_unit_simplex(8192, 2)
        assert np.allclose(pts.mean(axis=0), 1 / 3, atol=0.01)

    def test_spacings_construction(self):
        cube = np.array([[0.7, 0.2, 0.5]])
        simplex = qmc.simplex_from_cube(cube)
        assert np.allclose(simplex, [[0.2, 0.3, 0.2]])

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            qmc.sample_unit_simplex(10, 2, method="sobol")

    def test_validation(self):
        with pytest.raises(ValueError):
            qmc.sample_unit_simplex(-1, 2)
        with pytest.raises(ValueError, match="2-D"):
            qmc.simplex_from_cube(np.zeros(3))


class TestFeasibleFraction:
    def test_ideal_weights_fill_simplex(self):
        w = np.ones((3, 4))
        assert qmc.feasible_fraction(w, samples=512) == 1.0

    def test_doubled_weights_halve_per_axis(self):
        # W = 2 * ones: feasible iff sum x <= 1/2, a simplex scaled by
        # 1/2 in d dims -> fraction (1/2)^d.
        for d in (1, 2, 3):
            w = 2.0 * np.ones((1, d))
            frac = qmc.feasible_fraction(w, samples=1 << 14)
            assert frac == pytest.approx(0.5 ** d, abs=0.02)

    def test_agrees_with_random_sampling(self):
        rng = np.random.default_rng(7)
        w = rng.uniform(0.5, 3.0, size=(4, 3))
        halton = qmc.feasible_fraction(w, samples=1 << 14, method="halton")
        plain = qmc.feasible_fraction(
            w, samples=1 << 15, method="random", seed=11
        )
        assert halton == pytest.approx(plain, abs=0.02)

    def test_lower_bound_restricts_region(self):
        w = np.array([[1.5, 1.0]])
        free = qmc.feasible_fraction(w, samples=4096)
        floored = qmc.feasible_fraction(
            w, samples=4096, lower_bound=np.array([0.4, 0.0])
        )
        assert floored < free

    def test_lower_bound_outside_simplex_is_zero(self):
        w = np.ones((1, 2))
        assert qmc.feasible_fraction(
            w, samples=64, lower_bound=np.array([0.7, 0.5])
        ) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            qmc.feasible_fraction(np.ones(3))
        with pytest.raises(ValueError, match="sample"):
            qmc.feasible_fraction(np.ones((1, 2)), samples=0)
        with pytest.raises(ValueError, match="lower bound"):
            qmc.feasible_fraction(
                np.ones((1, 2)), lower_bound=np.array([0.1])
            )
