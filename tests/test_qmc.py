"""Unit tests for Quasi-Monte-Carlo volume estimation."""

import math

import numpy as np
import pytest

from repro.core.volume import qmc


class TestVanDerCorput:
    def test_base2_prefix(self):
        seq = qmc.van_der_corput(7, 2)
        assert np.allclose(
            seq, [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        )

    def test_base3_prefix(self):
        seq = qmc.van_der_corput(3, 3)
        assert np.allclose(seq, [1 / 3, 2 / 3, 1 / 9])

    def test_skip_continues_sequence(self):
        full = qmc.van_der_corput(10, 2)
        tail = qmc.van_der_corput(5, 2, skip=5)
        assert np.allclose(full[5:], tail)

    def test_values_in_unit_interval(self):
        seq = qmc.van_der_corput(200, 5)
        assert np.all((seq >= 0) & (seq < 1))

    def test_low_discrepancy(self):
        # First 2^k - 1 base-2 points are perfectly stratified.
        seq = qmc.van_der_corput(255, 2)
        hist, _ = np.histogram(seq, bins=16, range=(0, 1))
        assert hist.max() - hist.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            qmc.van_der_corput(3, 1)
        with pytest.raises(ValueError):
            qmc.van_der_corput(-1, 2)


class TestHalton:
    def test_shape_and_range(self):
        pts = qmc.halton(100, 4)
        assert pts.shape == (100, 4)
        assert np.all((pts >= 0) & (pts < 1))

    def test_columns_use_distinct_primes(self):
        pts = qmc.halton(8, 2)
        assert np.allclose(pts[:, 0], qmc.van_der_corput(8, 2))
        assert np.allclose(pts[:, 1], qmc.van_der_corput(8, 3))

    def test_high_dimensions_supported(self):
        # The prime table grows on demand; there is no 32-dim cap.
        pts = qmc.halton(10, 100)
        assert pts.shape == (10, 100)
        assert np.all((pts >= 0) & (pts < 1))
        with pytest.raises(ValueError):
            qmc.halton(10, 0)

    def test_skip_continues_sequence(self):
        full = qmc.halton(64, 5)
        tail = qmc.halton(24, 5, skip=40)
        np.testing.assert_array_equal(full[40:], tail)

    def test_first_primes(self):
        assert qmc.first_primes(5) == (2, 3, 5, 7, 11)
        with pytest.raises(ValueError):
            qmc.first_primes(-1)

    def test_first_primes_beyond_legacy_cap(self):
        primes = qmc.first_primes(100)
        assert len(primes) == 100
        assert primes[32] == 137  # 33rd prime, past the old 32-dim table
        assert primes[99] == 541
        # The table grows monotonically and stays prime.
        assert all(b > a for a, b in zip(primes, primes[1:]))

    def test_matches_scalar_reference(self):
        def scalar_vdc(count, base, skip=0):
            out = []
            for index in range(skip + 1, skip + count + 1):
                value, denom = 0.0, 1.0
                while index:
                    index, digit = divmod(index, base)
                    denom *= base
                    value += digit / denom
                out.append(value)
            return np.asarray(out)

        for base in (2, 3, 5, 13):
            for skip in (0, 7):
                np.testing.assert_array_equal(
                    qmc.van_der_corput(257, base, skip=skip),
                    scalar_vdc(257, base, skip=skip),
                )

    def test_large_generation(self):
        # Acceptance check: 100k x 8 generates vectorized and agrees
        # with the per-column van der Corput definition.
        pts = qmc.halton(100_000, 8)
        assert pts.shape == (100_000, 8)
        bases = qmc.first_primes(8)
        for k in (0, 3, 7):
            np.testing.assert_array_equal(
                pts[:, k], qmc.van_der_corput(100_000, bases[k])
            )


class TestSimplexSampling:
    def test_points_inside_simplex(self):
        pts = qmc.sample_unit_simplex(500, 3)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1.0 + 1e-12)

    def test_random_method_inside_simplex(self):
        pts = qmc.sample_unit_simplex(500, 4, method="random", seed=1)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1.0 + 1e-12)

    def test_mean_matches_uniform_simplex(self):
        # Uniform over {x >= 0, sum <= 1} has E[x_k] = 1 / (d + 1).
        pts = qmc.sample_unit_simplex(8192, 2)
        assert np.allclose(pts.mean(axis=0), 1 / 3, atol=0.01)

    def test_spacings_construction(self):
        cube = np.array([[0.7, 0.2, 0.5]])
        simplex = qmc.simplex_from_cube(cube)
        assert np.allclose(simplex, [[0.2, 0.3, 0.2]])

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            qmc.sample_unit_simplex(10, 2, method="sobol")

    def test_validation(self):
        with pytest.raises(ValueError):
            qmc.sample_unit_simplex(-1, 2)
        with pytest.raises(ValueError, match="2-D"):
            qmc.simplex_from_cube(np.zeros(3))


class TestFeasibleFraction:
    def test_ideal_weights_fill_simplex(self):
        w = np.ones((3, 4))
        assert qmc.feasible_fraction(w, samples=512) == 1.0

    def test_doubled_weights_halve_per_axis(self):
        # W = 2 * ones: feasible iff sum x <= 1/2, a simplex scaled by
        # 1/2 in d dims -> fraction (1/2)^d.
        for d in (1, 2, 3):
            w = 2.0 * np.ones((1, d))
            frac = qmc.feasible_fraction(w, samples=1 << 14)
            assert frac == pytest.approx(0.5 ** d, abs=0.02)

    def test_agrees_with_random_sampling(self):
        rng = np.random.default_rng(7)
        w = rng.uniform(0.5, 3.0, size=(4, 3))
        halton = qmc.feasible_fraction(w, samples=1 << 14, method="halton")
        plain = qmc.feasible_fraction(
            w, samples=1 << 15, method="random", seed=11
        )
        assert halton == pytest.approx(plain, abs=0.02)

    def test_lower_bound_restricts_region(self):
        w = np.array([[1.5, 1.0]])
        free = qmc.feasible_fraction(w, samples=4096)
        floored = qmc.feasible_fraction(
            w, samples=4096, lower_bound=np.array([0.4, 0.0])
        )
        assert floored < free

    def test_lower_bound_outside_simplex_is_zero(self):
        w = np.ones((1, 2))
        assert qmc.feasible_fraction(
            w, samples=64, lower_bound=np.array([0.7, 0.5])
        ) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            qmc.feasible_fraction(np.ones(3))
        with pytest.raises(ValueError, match="sample"):
            qmc.feasible_fraction(np.ones((1, 2)), samples=0)
        with pytest.raises(ValueError, match="lower bound"):
            qmc.feasible_fraction(
                np.ones((1, 2)), lower_bound=np.array([0.1])
            )

    def test_parallel_jobs_identical(self):
        rng = np.random.default_rng(3)
        w = rng.uniform(0.5, 3.0, size=(5, 4))
        sequential = qmc.feasible_fraction(w, samples=4096, jobs=1)
        split = qmc.feasible_fraction(w, samples=4096, jobs=4)
        assert sequential == split  # exact, not approx

    def test_parallel_jobs_identical_with_lower_bound(self):
        w = np.array([[1.5, 1.0], [0.8, 2.0]])
        bound = np.array([0.1, 0.05])
        assert qmc.feasible_fraction(
            w, samples=2048, lower_bound=bound, jobs=3
        ) == qmc.feasible_fraction(
            w, samples=2048, lower_bound=bound, jobs=1
        )


class TestStreamingFraction:
    def test_converges_to_batch_estimate(self):
        rng = np.random.default_rng(11)
        w = rng.uniform(0.5, 2.5, size=(3, 3))
        final = None
        for n, frac, se in qmc.stream_feasible_fraction(
            w, batch=512, max_samples=4096
        ):
            final = (n, frac, se)
        assert final is not None
        n, frac, se = final
        assert n == 4096
        assert frac == qmc.feasible_fraction(w, samples=4096)
        assert se > 0

    def test_standard_error_shrinks(self):
        w = 1.5 * np.ones((2, 2))
        ses = [
            se
            for _, _, se in qmc.stream_feasible_fraction(
                w, batch=256, max_samples=4096
            )
        ]
        assert ses[-1] < ses[0]

    def test_target_se_terminates_early(self):
        rng = np.random.default_rng(5)
        w = rng.uniform(0.5, 2.5, size=(3, 3))
        # A loose target stops well short of the full budget...
        loose = qmc.feasible_fraction(
            w, samples=1 << 16, target_se=0.05, batch=256
        )
        # ...and the early value matches a direct estimate at the
        # point where the stream would have stopped.
        stopped_at = None
        for n, frac, se in qmc.stream_feasible_fraction(
            w, batch=256, max_samples=1 << 16
        ):
            if se <= 0.05:
                stopped_at = (n, frac)
                break
        assert stopped_at is not None
        assert loose == stopped_at[1]

    def test_target_se_caps_at_budget(self):
        w = 1.5 * np.ones((2, 2))
        # Unreachable target: runs to the sample cap, matching the
        # plain estimate exactly.
        assert qmc.feasible_fraction(
            w, samples=2048, target_se=1e-9, batch=512
        ) == qmc.feasible_fraction(w, samples=2048)
