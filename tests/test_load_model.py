"""Unit tests for the linear load model (Section 2.2, Example 1/2)."""

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import Delay, Filter, Map, QueryGraph, Union


class TestPaperExample:
    def test_coefficients_match_example(self, example_model):
        # load(o1)=c1 r1, load(o2)=c2 s1 r1, load(o3)=c3 r2,
        # load(o4)=c4 s3 r2 with c=(4,6,9,4), s1=1, s3=0.5.
        expected = np.array([[4.0, 0.0], [6.0, 0.0], [0.0, 9.0], [0.0, 2.0]])
        assert np.allclose(example_model.coefficients, expected)

    def test_column_totals(self, example_model):
        assert np.allclose(example_model.column_totals(), [10.0, 11.0])

    def test_variables_are_inputs(self, example_model):
        assert example_model.variables == ("I1", "I2")
        assert not example_model.is_linearized

    def test_loads_at_point(self, example_model):
        loads = example_model.loads([2.0, 1.0])
        assert np.allclose(loads, [8.0, 12.0, 9.0, 2.0])

    def test_loads_match_graph_ground_truth(self, example_model):
        rates = [1.7, 0.3]
        truth = example_model.graph.operator_loads(rates)
        model_loads = dict(
            zip(example_model.operator_names, example_model.loads(rates))
        )
        for name in truth:
            assert model_loads[name] == pytest.approx(truth[name])

    def test_operator_norms(self, example_model):
        assert np.allclose(example_model.operator_norms(), [4.0, 6.0, 9.0, 2.0])

    def test_operator_load_vector(self, example_model):
        assert np.allclose(example_model.operator_load_vector("o3"), [0.0, 9.0])

    def test_indexing_errors(self, example_model):
        with pytest.raises(KeyError):
            example_model.operator_index("nope")
        with pytest.raises(KeyError):
            example_model.variable_index("nope")
        with pytest.raises(KeyError):
            example_model.stream_rate_vector("nope")


class TestUnionAndFanout:
    def test_union_accumulates_both_inputs(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        fa = g.add_operator(Filter("fa", cost=1.0, selectivity=0.5), [a])
        u = g.add_operator(Union("u", costs=[2.0, 3.0]), [fa, b])
        g.add_operator(Map("m", cost=1.0), [u])
        model = build_load_model(g)
        # u: 2*(0.5 rA) + 3*rB ; m: 0.5 rA + rB (union selectivity 1).
        assert np.allclose(
            model.operator_load_vector("u"), [1.0, 3.0]
        )
        assert np.allclose(model.operator_load_vector("m"), [0.5, 1.0])

    def test_fanout_duplicates_rate(self):
        g = QueryGraph()
        i = g.add_input("I")
        a = g.add_operator(Map("a", cost=1.0), [i])
        g.add_operator(Map("b", cost=2.0), [a])
        g.add_operator(Map("c", cost=3.0), [a])
        model = build_load_model(g)
        assert np.allclose(model.column_totals(), [6.0])

    def test_stream_rate_vector(self):
        g = QueryGraph()
        i = g.add_input("I")
        f = g.add_operator(Filter("f", cost=1.0, selectivity=0.25), [i])
        model = build_load_model(g)
        assert np.allclose(model.stream_rate_vector("f.out"), [0.25])
        assert np.allclose(model.stream_rate_vector("I"), [1.0])


class TestLinearizedModel:
    def test_variables_include_cut_streams(self, example3_model):
        assert example3_model.variables == ("I1", "I2", "o1.out", "o5.out")
        assert example3_model.is_linearized
        assert example3_model.num_inputs == 2
        assert example3_model.num_variables == 4

    def test_join_coefficient_is_c_over_s(self, example3_model):
        # o5: cost_per_pair=2, selectivity=0.5 -> 4 per output tuple.
        row = example3_model.operator_load_vector("o5")
        assert np.allclose(row, [0.0, 0.0, 0.0, 4.0])

    def test_downstream_of_cut_uses_aux_variable(self, example3_model):
        # o2 consumes o1's (cut) output with cost 2.
        assert np.allclose(
            example3_model.operator_load_vector("o2"), [0, 0, 2.0, 0]
        )
        # o6 consumes o5's output with cost 3.
        assert np.allclose(
            example3_model.operator_load_vector("o6"), [0, 0, 0, 3.0]
        )

    def test_variable_point_uses_true_rates(self, example3_model):
        point = example3_model.variable_point([2.0, 3.0])
        # o1.out = 0.8*2 ; o2.out = 1.6 ; o4.out = 0.7*3 = 2.1
        # o5.out = 0.5 * 1.0 * 1.6 * 2.1
        assert np.allclose(point, [2.0, 3.0, 1.6, 1.68])

    def test_variable_point_identity_for_linear(self, example_model):
        assert np.allclose(
            example_model.variable_point([5.0, 7.0]), [5.0, 7.0]
        )

    def test_variable_point_checks_length(self, example3_model):
        with pytest.raises(ValueError, match="input rates"):
            example3_model.variable_point([1.0, 2.0, 3.0])

    def test_loads_checks_shape(self, example3_model):
        with pytest.raises(ValueError, match="variable rates"):
            example3_model.loads([1.0, 2.0])

    def test_model_loads_match_truth_through_cuts(self, example3_model):
        rates = [2.0, 3.0]
        truth = example3_model.graph.operator_loads(rates)
        point = example3_model.variable_point(rates)
        loads = dict(
            zip(example3_model.operator_names, example3_model.loads(point))
        )
        for name in truth:
            assert loads[name] == pytest.approx(truth[name]), name


class TestEdgeCases:
    def test_empty_graph_has_empty_matrix(self):
        g = QueryGraph()
        g.add_input("I")
        model = build_load_model(g)
        assert model.coefficients.shape == (0, 1)
        assert model.num_operators == 0

    def test_chain_selectivity_compounds(self):
        g = QueryGraph()
        s = g.add_input("I")
        for k in range(3):
            s = g.add_operator(
                Delay(f"d{k}", cost=1.0, selectivity=0.5), [s]
            )
        model = build_load_model(g)
        assert np.allclose(model.coefficients[:, 0], [1.0, 0.5, 0.25])
