"""Causal span tracing, critical-path attribution, and SLO evaluation.

Covers this PR's acceptance criteria end to end:

* the per-batch latency distribution rebuilt by
  :func:`repro.obs.critical_path.analyze_critical_path` from span
  events is **bit-for-bit identical** to ``SimulationResult.latency``
  — same sample values, same weights, same order — including under
  chaos fault schedules with crash/recover cycles and failover;
* attribution covers at least 99.9% of mean end-to-end latency (it is
  exact by construction, so the tests assert the full telescoping sum);
* the span forest reconstructed from any seeded run is a well-formed
  DAG (property test over seeds);
* the SLO engine's parsing, burn-rate math, streaming watcher and
  metric surfacing behave as documented;
* the diff engine reads the new ``critical_path.*`` / ``slo.*`` keys
  with the right regression direction.
"""

import json
import math

import pytest

from repro import build_load_model, placement_from_mapping
from repro.deploy import Deployment
from repro.dynamics import FailoverController
from repro.dynamics.controller import LoadBalancingController
from repro.faults import FaultEvent, FaultSchedule, chaos_schedule
from repro.graphs import Delay, QueryGraph
from repro.graphs.generator import monitoring_graph
from repro.obs import MemorySink, MetricsRegistry, Tracer
from repro.obs.critical_path import (
    PHASES,
    analyze_critical_path,
    render_critical_path_report,
)
from repro.obs.diff import _direction, compare_metrics
from repro.obs.slo import (
    LatencyObjective,
    SloWatcher,
    ThroughputObjective,
    evaluate_slos,
    load_slo_config,
    parse_slo_config,
    record_slo_metrics,
    render_slo_report,
)
from repro.obs.spans import (
    SpanEmitter,
    spans_from_trace,
    span_lineage,
    validate_span_dag,
)
from repro.obs.timeline import filter_events
from repro.obs.trace import TraceEvent
from repro.simulator import Simulator


def traced_simulation(placement, *, rates, duration, step_seconds=0.1,
                      faults=None, controller=None, seed=None,
                      arrival_kind="deterministic"):
    """Run a simulation with a validating tracer; return (result, events)."""
    sink = MemorySink()
    sim = Simulator(
        placement,
        step_seconds=step_seconds,
        tracer=Tracer(sink, validate=True),
        faults=faults,
        controller=controller,
        seed=seed,
        arrival_kind=arrival_kind,
    )
    result = sim.run(rates=rates, duration=duration)
    return result, sink.events


def two_op_placement(num_nodes=2, cost=0.004):
    g = QueryGraph()
    i = g.add_input("I")
    g.add_operator(Delay("a", cost=cost, selectivity=1.0), [i])
    g.add_operator(Delay("b", cost=cost, selectivity=1.0), [i])
    model = build_load_model(g)
    mapping = {"a": 0, "b": min(1, num_nodes - 1)}
    return placement_from_mapping(model, [1.0] * num_nodes, mapping)


# --------------------------------------------------------------------------
# Span emitter and forest reconstruction units
# --------------------------------------------------------------------------


class TestSpanEmitter:
    def test_open_close_round_trip_validated(self):
        sink = MemorySink()
        emitter = SpanEmitter(Tracer(sink, validate=True))
        root = emitter.open_span(
            0.0, operator="src", port=0, count=4, birth=0.0
        )
        child = emitter.open_span(
            0.1, operator="agg", port=0, count=4, birth=0.0, parent=root
        )
        emitter.close_span(
            root, 0.1, node=0, start=0.05, work=0.01, out=4
        )
        emitter.close_span(
            child, 0.3, node=1, start=0.2, work=0.02, out=4,
            sink="agg", latency=0.3,
        )
        spans = spans_from_trace(sink.events)
        assert sorted(spans) == [root, child]
        assert spans[child].parent == root
        assert spans[child].is_sink and not spans[root].is_sink
        assert spans[child].latency == pytest.approx(0.3)
        assert spans[root].wait_seconds == pytest.approx(0.05)
        assert spans[root].service_seconds == pytest.approx(0.05)
        assert validate_span_dag(spans) == []

    def test_ids_are_a_monotonic_counter(self):
        emitter = SpanEmitter(Tracer(MemorySink()))
        ids = [
            emitter.open_span(0.0, operator="x", port=0, count=1, birth=0.0)
            for _ in range(5)
        ]
        assert ids == list(range(5))

    def _open(self, span, parent=None, t=0.0, **over):
        fields = dict(span=span, operator="op", port=0, count=1, birth=0.0)
        if parent is not None:
            fields["parent"] = parent
        fields.update(over)
        return TraceEvent(type="span.open", t=t, wall=1.0, fields=fields)

    def _close(self, span, t=1.0, **over):
        fields = dict(span=span, node=0, start=0.5, work=0.1, out=1)
        fields.update(over)
        return TraceEvent(type="span.close", t=t, wall=1.0, fields=fields)

    def test_duplicate_open_rejected(self):
        with pytest.raises(ValueError, match="span 0 opened twice"):
            spans_from_trace([self._open(0), self._open(0)])

    def test_close_without_open_rejected(self):
        with pytest.raises(ValueError, match="span 7 closed without an open"):
            spans_from_trace([self._close(7)])

    def test_double_close_rejected(self):
        with pytest.raises(ValueError, match="span 0 closed twice"):
            spans_from_trace(
                [self._open(0), self._close(0), self._close(0)]
            )

    def test_dag_validation_flags_structural_problems(self):
        # Parent id not lower than the child: breaks the topological
        # ordering guarantee the analyzer relies on.
        spans = spans_from_trace([self._open(0, parent=3), self._open(3)])
        problems = validate_span_dag(spans)
        assert any("parent" in p for p in problems)
        # Orphan parent reference.
        spans = spans_from_trace([self._open(5, parent=2)])
        assert validate_span_dag(spans) != []
        # Service starting before the span opened.
        spans = spans_from_trace(
            [self._open(0, t=1.0), self._close(0, t=2.0, start=0.5)]
        )
        assert validate_span_dag(spans) != []

    def test_lineage_walks_both_directions(self):
        events = [
            self._open(0),
            self._open(1, parent=0),
            self._open(2, parent=1),
            self._open(3),  # unrelated root
        ]
        spans = spans_from_trace(events)
        lineage = span_lineage(spans, 1)
        assert 0 in lineage and 2 in lineage
        assert 3 not in lineage
        with pytest.raises(KeyError):
            span_lineage(spans, 99)


# --------------------------------------------------------------------------
# Critical-path reconciliation: bit-for-bit against SimulationResult
# --------------------------------------------------------------------------


def assert_bit_for_bit(analysis, result):
    """The reconstructed latency distribution IS the engine's."""
    assert analysis.latency._values == result.latency._values
    assert analysis.latency._weights == result.latency._weights
    assert analysis.latency.mean() == result.latency.mean()
    assert analysis.latency.maximum() == result.latency.maximum()
    for q in (50.0, 95.0, 99.0):
        assert analysis.latency.percentile(q) == result.latency.percentile(q)
    assert analysis.tuples_out == result.tuples_out


class TestCriticalPathReconciliation:
    @pytest.fixture(scope="class")
    def plain_run(self):
        placement = Deployment.plan(
            monitoring_graph(3, seed=7), [1.0, 1.0, 1.0]
        ).placement
        return traced_simulation(
            placement, rates=[80.0, 80.0, 80.0], duration=8.0
        )

    @pytest.fixture(scope="class")
    def chaos_run(self):
        placement = Deployment.plan(
            monitoring_graph(3, seed=7), [1.0, 1.0, 1.0]
        ).placement
        faults = chaos_schedule(
            placement.num_nodes,
            horizon=15.0,
            seed=7,
            operator_names=placement.model.graph.operator_names,
        )
        return traced_simulation(
            placement,
            rates=[60.0, 60.0, 60.0],
            duration=15.0,
            faults=faults,
            controller=FailoverController(samples=64),
        )

    def test_plain_run_is_bit_for_bit(self, plain_run):
        result, events = plain_run
        assert_bit_for_bit(analyze_critical_path(events), result)

    def test_chaos_run_is_bit_for_bit(self, chaos_run):
        result, events = chaos_run
        assert_bit_for_bit(analyze_critical_path(events), result)

    def test_attribution_covers_mean_latency(self, chaos_run):
        _, events = chaos_run
        analysis = analyze_critical_path(events)
        assert analysis.total_latency_seconds > 0
        # Exact by construction; the acceptance floor is 99.9%.
        assert analysis.attributed_ratio >= 0.999
        assert analysis.attributed_ratio == pytest.approx(1.0)
        # Phase totals telescope back to the end-to-end total.
        assert sum(analysis.phase_totals().values()) == pytest.approx(
            analysis.total_latency_seconds
        )

    def test_crash_recover_attributes_stall(self):
        # Batches queued on a node through its downtime wait out the
        # crash window; that wait must land in the 'stall' phase.
        placement = two_op_placement()
        faults = FaultSchedule([
            FaultEvent(time=1.0, kind="node.crash", node=1),
            FaultEvent(time=3.0, kind="node.recover", node=1),
        ])
        result, events = traced_simulation(
            placement, rates=[50.0], duration=6.0, faults=faults
        )
        analysis = analyze_critical_path(events)
        assert_bit_for_bit(analysis, result)
        assert analysis.phase_totals()["stall"] > 0.0

    def test_stranded_tuples_reconcile(self, chaos_run):
        result, events = chaos_run
        analysis = analyze_critical_path(events)
        spans = spans_from_trace(events)
        open_counts = sum(
            s.count for s in spans.values() if not s.closed
        )
        assert analysis.unclosed_spans == sum(
            1 for s in spans.values() if not s.closed
        )
        assert analysis.stranded_tuples == open_counts
        assert analysis.stranded_tuples == result.stranded_tuples

    def test_crash_only_schedule_reconciles(self):
        # A node that crashes and never recovers strands batches; the
        # surviving traffic must still reconcile exactly.
        placement = two_op_placement()
        faults = FaultSchedule([
            FaultEvent(time=2.0, kind="node.crash", node=1),
        ])
        result, events = traced_simulation(
            placement, rates=[50.0], duration=6.0, faults=faults
        )
        analysis = analyze_critical_path(events)
        assert_bit_for_bit(analysis, result)
        assert analysis.stranded_tuples == result.stranded_tuples
        assert analysis.stranded_tuples > 0

    def test_migration_run_attributes_pause(self):
        placement = Deployment.plan(
            monitoring_graph(2, seed=3), [1.0, 1.0]
        ).placement
        controller = LoadBalancingController(
            period=0.5, imbalance_threshold=0.05, cooldown=0.0
        )
        result, events = traced_simulation(
            placement, rates=[900.0, 5.0], duration=8.0,
            controller=controller,
        )
        analysis = analyze_critical_path(events)
        assert_bit_for_bit(analysis, result)
        if result.migrations:
            assert analysis.phase_totals()["migration-pause"] > 0.0

    def test_top_operators_and_report(self, chaos_run):
        _, events = chaos_run
        analysis = analyze_critical_path(events)
        top = analysis.top_operators(3)
        assert len(top) <= 3
        assert top == sorted(top, key=lambda kv: kv[1], reverse=True)
        report = render_critical_path_report(analysis, top_k=3)
        assert "attributed" in report
        for name, _ in top:
            assert name in report
        for phase in PHASES:
            assert phase in report

    def test_json_snapshot_shape(self, plain_run):
        _, events = plain_run
        obj = analyze_critical_path(events).to_json_obj()
        assert obj["attributed_ratio"] == pytest.approx(1.0)
        assert set(obj["phase_share"]) <= set(PHASES)
        json.dumps(obj)  # must be serializable as-is

    def test_traceless_events_yield_empty_analysis(self):
        analysis = analyze_critical_path([])
        assert analysis.spans_total == 0
        assert analysis.total_latency_seconds == 0.0
        # Nothing measured means nothing unexplained.
        assert analysis.attributed_ratio == 1.0


# --------------------------------------------------------------------------
# Span-DAG well-formedness property over seeded runs
# --------------------------------------------------------------------------


class TestSpanDagProperty:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_seeded_runs_produce_well_formed_forests(self, seed):
        placement = Deployment.plan(
            monitoring_graph(2, seed=seed), [1.0, 1.0]
        ).placement
        _, events = traced_simulation(
            placement, rates=[70.0, 30.0], duration=5.0,
            arrival_kind="poisson", seed=seed,
        )
        spans = spans_from_trace(events)
        assert spans, "traced run emitted no spans"
        assert validate_span_dag(spans) == []
        for record in spans.values():
            if record.parent is not None:
                # parent < child id makes the forest trivially acyclic
                # and descending-id iteration a topological order.
                assert record.parent < record.span
                assert record.parent in spans

    def test_analysis_reports_no_problems(self):
        placement = two_op_placement()
        _, events = traced_simulation(
            placement, rates=[40.0], duration=4.0
        )
        assert analyze_critical_path(events).problems == []


# --------------------------------------------------------------------------
# SLO engine
# --------------------------------------------------------------------------


def _sink_event(t, latency, out=1):
    return TraceEvent(
        type="batch.serviced", t=t, wall=1.0,
        fields={"node": 0, "operator": "s", "work": 0.0, "out": out,
                "sink": "s", "latency": latency},
    )


def _header(horizon):
    return TraceEvent(
        type="sim.start", t=0.0, wall=1.0,
        fields={"nodes": 1, "horizon": horizon},
    )


class TestSloConfig:
    def test_parse_round_trip(self):
        objectives = parse_slo_config({"objectives": [
            {"name": "p99", "kind": "latency", "threshold_seconds": 0.5,
             "target": 0.99, "window_seconds": 10.0, "max_burn_rate": 2.0},
            {"name": "tput", "kind": "throughput",
             "min_tuples_per_second": 50.0, "window_seconds": 10.0},
        ]})
        assert isinstance(objectives[0], LatencyObjective)
        assert objectives[0].budget == pytest.approx(0.01)
        assert isinstance(objectives[1], ThroughputObjective)

    @pytest.mark.parametrize("config,match", [
        ({}, "non-empty 'objectives'"),
        ({"objectives": []}, "non-empty 'objectives'"),
        ({"objectives": [{"kind": "latency"}]}, "needs a 'name'"),
        ({"objectives": [
            {"name": "x", "kind": "latency", "threshold_seconds": 1.0,
             "target": 0.9, "window_seconds": 5.0},
            {"name": "x", "kind": "throughput",
             "min_tuples_per_second": 1.0, "window_seconds": 5.0},
        ]}, "duplicate objective name"),
        ({"objectives": [{"name": "x", "kind": "latency",
                          "threshold_seconds": 1.0, "target": 0.9,
                          "window_seconds": 0.0}]}, "window_seconds"),
        ({"objectives": [{"name": "x", "kind": "latency",
                          "threshold_seconds": 1.0, "target": 1.0,
                          "window_seconds": 5.0}]}, "target"),
        ({"objectives": [{"name": "x", "kind": "lag",
                          "window_seconds": 5.0}]}, "unknown kind"),
    ])
    def test_parse_rejections(self, config, match):
        with pytest.raises(ValueError, match=match):
            parse_slo_config(config)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "p95", "kind": "latency", "threshold_seconds": 1.0,
             "target": 0.95, "window_seconds": 5.0},
        ]}))
        assert len(load_slo_config(str(path))) == 1
        path.write_text("[]")
        with pytest.raises(ValueError, match="JSON object"):
            load_slo_config(str(path))


class TestSloEvaluation:
    OBJECTIVE = LatencyObjective(
        name="p90", threshold_seconds=1.0, target=0.9, window_seconds=10.0
    )

    def test_clean_run_passes(self):
        events = [_header(20.0)] + [
            _sink_event(t, 0.1) for t in (1.0, 5.0, 11.0, 15.0)
        ]
        report = evaluate_slos(events, [self.OBJECTIVE])
        assert report.ok and report.breached == []
        result = report.results[0]
        assert result.budget_remaining == pytest.approx(1.0)
        assert result.worst_burn_rate == 0.0
        assert result.attainment >= 1.0

    def test_burn_rate_math(self):
        # Window 0: 1 bad of 4 tuples -> bad fraction 0.25, burn 2.5.
        events = [_header(20.0)] + [
            _sink_event(1.0, 0.1), _sink_event(2.0, 0.1),
            _sink_event(3.0, 0.1), _sink_event(4.0, 5.0),
            _sink_event(12.0, 0.1), _sink_event(13.0, 0.1),
        ]
        report = evaluate_slos(events, [self.OBJECTIVE])
        result = report.results[0]
        assert not result.ok
        assert result.windows == 2
        assert result.breach_windows == 1
        assert result.worst_burn_rate == pytest.approx(2.5)
        assert result.bad_fraction == pytest.approx(1.0 / 6.0)

    def test_burn_rate_weights_by_tuple_count(self):
        events = [_header(10.0), _sink_event(1.0, 5.0, out=9),
                  _sink_event(2.0, 0.1, out=91)]
        report = evaluate_slos(events, [LatencyObjective(
            name="p90", threshold_seconds=1.0, target=0.9,
            window_seconds=10.0,
        )])
        # 9% bad against a 10% budget: burning, but within budget.
        result = report.results[0]
        assert result.ok
        assert result.bad_fraction == pytest.approx(0.09)
        assert result.worst_burn_rate == pytest.approx(0.9)

    def test_throughput_objective(self):
        objective = ThroughputObjective(
            name="tput", min_tuples_per_second=1.0, window_seconds=5.0
        )
        good = [_header(10.0)] + [
            _sink_event(t, 0.1, out=6) for t in (1.0, 6.0)
        ]
        assert evaluate_slos(good, [objective]).ok
        starved = [_header(10.0), _sink_event(1.0, 0.1, out=6)]
        report = evaluate_slos(starved, [objective])
        assert not report.ok
        assert report.results[0].breach_windows == 1

    def test_real_trace_with_loose_objectives_passes(self):
        placement = two_op_placement()
        result, events = traced_simulation(
            placement, rates=[40.0], duration=6.0
        )
        objectives = [
            LatencyObjective(name="lat", threshold_seconds=60.0,
                             target=0.5, window_seconds=2.0),
            ThroughputObjective(name="out", min_tuples_per_second=0.001,
                                window_seconds=2.0),
        ]
        report = evaluate_slos(events, objectives)
        assert report.ok
        assert result.tuples_out > 0

    def test_render_and_metrics(self):
        events = [_header(20.0), _sink_event(1.0, 5.0),
                  _sink_event(2.0, 0.1)]
        report = evaluate_slos(events, [self.OBJECTIVE])
        text = render_slo_report(report)
        assert "BREACH" in text and "p90" in text
        registry = MetricsRegistry()
        record_slo_metrics(registry, report)
        flat = json.dumps(registry.to_json())
        assert "rod_slo_budget_remaining" in flat
        assert "rod_slo_worst_burn_rate" in flat
        assert "rod_slo_breaches_total" in flat


class TestSloWatcher:
    def test_streaming_burn_detection(self):
        watcher = SloWatcher(LatencyObjective(
            name="w", threshold_seconds=1.0, target=0.9,
            window_seconds=10.0,
        ))
        # First window: all bad.
        for t in (1.0, 2.0, 3.0):
            watcher.observe(t, 5.0)
        assert not watcher.burning  # window not yet complete
        watcher.observe(11.0, 0.1)  # rolls the window
        assert watcher.burning
        assert watcher.breaches == 1
        assert watcher.last_burn_rate == pytest.approx(10.0)
        # Second window: clean; rolling clears the flag.
        watcher.observe(21.0, 0.1)
        assert not watcher.burning
        assert watcher.breaches == 1

    def test_duck_typed_surface(self):
        watcher = SloWatcher(LatencyObjective(
            name="w", threshold_seconds=1.0, target=0.9,
            window_seconds=1.0,
        ))
        assert callable(watcher.observe)
        assert isinstance(watcher.burning, bool)


# --------------------------------------------------------------------------
# Diff directions and trace filters for the new keys
# --------------------------------------------------------------------------


class TestDiffDirections:
    @pytest.mark.parametrize("key", [
        "critical_path.mean_seconds.agg.service",
        "critical_path.unclosed_spans",
        "slo.objectives.p99.bad_fraction",
        "slo.objectives.p99.worst_burn_rate",
        "slo.objectives.p99.breach_windows",
    ])
    def test_higher_is_worse(self, key):
        assert _direction(key) == 1

    @pytest.mark.parametrize("key", [
        "critical_path.attributed_ratio",
        "slo.objectives.p99.budget_remaining",
        "slo.objectives.p99.attainment",
    ])
    def test_lower_is_worse(self, key):
        assert _direction(key) == -1

    def test_longest_token_wins(self):
        # 'attributed_ratio' must beat the shorter 'ratio'-free
        # higher-is-worse match on 'critical_path'.
        assert _direction("critical_path.attributed_ratio") == -1

    def test_compare_flags_attribution_regression(self):
        a = {"critical_path.attributed_ratio": 1.0}
        b = {"critical_path.attributed_ratio": 0.5}
        diff = compare_metrics(a, b, default_threshold=0.01)
        breached = [d for d in diff.deltas if d.breach]
        assert [d.name for d in breached] == [
            "critical_path.attributed_ratio"
        ]
        # The same move in the healthy direction is not a breach.
        reverse = compare_metrics(b, a, default_threshold=0.01)
        assert not any(d.breach for d in reverse.deltas)


class TestTraceSpanFilters:
    def _span_events(self):
        def open_(span, parent=None, operator="op"):
            fields = dict(span=span, operator=operator, port=0, count=1,
                          birth=0.0)
            if parent is not None:
                fields["parent"] = parent
            return TraceEvent("span.open", t=0.0, wall=1.0, fields=fields)

        def close_(span):
            return TraceEvent(
                "span.close", t=1.0, wall=1.0,
                fields=dict(span=span, node=0, start=0.5, work=0.1, out=1),
            )

        return [
            open_(0, operator="src"),
            open_(1, parent=0, operator="agg"),
            close_(0), close_(1),
            TraceEvent("sim.end", t=2.0, wall=1.0, fields={}),
        ]

    def test_span_filter_keeps_only_listed_spans(self):
        kept = filter_events(self._span_events(), spans=[1])
        assert all(e.fields.get("span") == 1 for e in kept)
        assert len(kept) == 2

    def test_operator_filter(self):
        kept = filter_events(self._span_events(), operators=["src"])
        assert len(kept) == 1
        assert kept[0].fields["operator"] == "src"

    def test_filters_drop_field_free_events(self):
        kept = filter_events(self._span_events(), spans=[0, 1])
        assert all(e.type.startswith("span.") for e in kept)


# --------------------------------------------------------------------------
# Engine emission contract
# --------------------------------------------------------------------------


class TestEngineSpanEmission:
    def test_validated_tracer_accepts_engine_spans(self):
        # Tracer(validate=True) raises on any schema violation, so a
        # clean run is the runtime REPRO610 check for span events.
        placement = two_op_placement()
        _, events = traced_simulation(
            placement, rates=[30.0], duration=3.0
        )
        opens = [e for e in events if e.type == "span.open"]
        closes = [e for e in events if e.type == "span.close"]
        assert opens and closes
        assert len(closes) <= len(opens)
        for event in opens:
            assert {"span", "operator", "port", "count", "birth"} <= set(
                event.fields
            )
        for event in closes:
            assert {"span", "node", "start", "work", "out"} <= set(
                event.fields
            )

    def test_sink_close_latency_matches_engine_sample(self):
        placement = two_op_placement()
        result, events = traced_simulation(
            placement, rates=[30.0], duration=3.0
        )
        sink_latencies = [
            e.fields["latency"] for e in events
            if e.type == "span.close" and e.fields.get("sink") is not None
        ]
        assert sink_latencies
        assert all(math.isfinite(v) for v in sink_latencies)
        assert sorted(sink_latencies) == sorted(result.latency._values)

    def test_null_tracer_emits_nothing(self):
        placement = two_op_placement()
        sim = Simulator(placement)
        result = sim.run(rates=[30.0], duration=2.0)
        assert result.tuples_out > 0  # no tracer, no spans, no error
