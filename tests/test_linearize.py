"""Unit tests for linearization (Section 6.2)."""

import pytest

from repro.core.linearize import (
    find_cut_streams,
    linearization_report,
)
from repro.graphs import (
    Map,
    QueryGraph,
    VariableSelectivityOp,
    WindowJoin,
    paper_example3_graph,
    paper_example_graph,
)


class TestFindCutStreams:
    def test_linear_graph_needs_no_cuts(self):
        assert find_cut_streams(paper_example_graph()) == ()

    def test_example3_cuts_two_streams(self):
        assert find_cut_streams(paper_example3_graph()) == (
            "o1.out",
            "o5.out",
        )

    def test_cut_per_nonlinear_operator(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        j1 = g.add_operator(WindowJoin("j1", window=1.0), [a, b])
        g.add_operator(WindowJoin("j2", window=1.0), [j1, b])
        assert find_cut_streams(g) == ("j1.out", "j2.out")


class TestLinearizationReport:
    def test_trivial_for_linear(self):
        report = linearization_report(paper_example_graph())
        assert report.is_trivial
        assert report.num_variables == 2
        assert report.cut_producers == ()

    def test_example3_report(self):
        report = linearization_report(paper_example3_graph())
        assert not report.is_trivial
        assert report.input_streams == ("I1", "I2")
        assert report.cut_streams == ("o1.out", "o5.out")
        assert report.cut_producers == ("o1", "o5")
        assert report.num_variables == 4

    def test_variable_selectivity_alone(self):
        g = QueryGraph()
        i = g.add_input("I")
        v = g.add_operator(VariableSelectivityOp("v", cost=1.0), [i])
        g.add_operator(Map("m", cost=1.0), [v])
        report = linearization_report(g)
        assert report.cut_streams == ("v.out",)

    def test_unknown_nonlinear_operator_rejected(self):
        from repro.graphs.operators import Operator

        class Weird(Operator):
            @property
            def arity(self):
                return 1

            @property
            def is_linear(self):
                return False

            def output_rate(self, rates):
                return rates[0] ** 2

            def load(self, rates):
                return rates[0] ** 2

        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Weird("w"), [i])
        with pytest.raises(TypeError, match="linearize"):
            linearization_report(g)

    def test_minimality_only_nonlinear_outputs_cut(self):
        """Linear operators downstream of a cut do not add variables."""
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        j = g.add_operator(WindowJoin("j", window=1.0), [a, b])
        m = g.add_operator(Map("m1", cost=1.0), [j])
        g.add_operator(Map("m2", cost=1.0), [m])
        report = linearization_report(g)
        assert report.cut_streams == ("j.out",)
        assert report.num_variables == 3
