"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = str(tmp_path / "graph.json")
    code = main([
        "generate", "--kind", "random", "--inputs", "2",
        "--ops-per-tree", "5", "--seed", "3", "-o", path,
    ])
    assert code == 0
    return path


@pytest.fixture
def plan_file(tmp_path, graph_file):
    path = str(tmp_path / "plan.json")
    code = main([
        "place", "--graph", graph_file, "--nodes", "2",
        "--algorithm", "rod", "-o", path,
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_graph_document(self, graph_file):
        with open(graph_file) as handle:
            doc = json.load(handle)
        assert len(doc["inputs"]) == 2
        assert len(doc["operators"]) == 10

    def test_monitoring_kind(self, tmp_path):
        path = str(tmp_path / "mon.json")
        assert main(["generate", "--kind", "monitoring", "--inputs", "2",
                     "-o", path]) == 0
        with open(path) as handle:
            assert json.load(handle)["name"].startswith("monitoring")

    def test_joins_kind(self, tmp_path):
        path = str(tmp_path / "j.json")
        assert main(["generate", "--kind", "joins", "--inputs", "2",
                     "-o", path]) == 0


class TestPlace:
    def test_plan_document(self, plan_file):
        with open(plan_file) as handle:
            doc = json.load(handle)
        assert set(doc) == {
            "graph", "capacities", "assignment", "node_coefficients",
        }
        assert all(node in (0, 1) for node in doc["assignment"].values())
        assert len(doc["node_coefficients"]) == len(doc["capacities"])

    @pytest.mark.parametrize(
        "algorithm", ["llf", "random", "connected", "correlation", "milp"]
    )
    def test_other_algorithms(self, graph_file, algorithm, capsys):
        assert main([
            "place", "--graph", graph_file, "--nodes", "2",
            "--algorithm", algorithm, "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "feasible-set ratio" in out


class TestEvaluate:
    def test_prints_metrics_and_plot(self, graph_file, plan_file, capsys):
        assert main([
            "evaluate", "--graph", graph_file, "--plan", plan_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "plane distance" in out
        assert "> r1" in out  # 2-D plot rendered


class TestSimulate:
    def test_feasible_point_exits_zero(self, graph_file, plan_file, capsys):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "3", "--check",
        ]) == 0
        assert "feasible at this rate point: True" in capsys.readouterr().out

    def test_infeasible_point_fails_check(self, graph_file, plan_file):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "100000,100000", "--duration", "3", "--check",
        ]) == 1


class TestSimulateFaults:
    def test_fault_schedule_file(self, tmp_path, graph_file, plan_file,
                                 capsys):
        faults = str(tmp_path / "faults.json")
        with open(faults, "w") as handle:
            json.dump([
                {"time": 1.0, "kind": "node.crash", "node": 1},
                {"time": 2.0, "kind": "node.recover", "node": 1},
            ], handle)
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "3", "--faults", faults,
        ]) == 0
        assert "faults=2" in capsys.readouterr().out

    def test_chaos_seed_with_failover(self, graph_file, plan_file,
                                      capsys):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "4",
            "--chaos-seed", "3", "--failover", "volume",
        ]) == 0
        assert "faults=" in capsys.readouterr().out

    def test_faults_and_chaos_are_exclusive(self, tmp_path, graph_file,
                                            plan_file):
        faults = str(tmp_path / "faults.json")
        with open(faults, "w") as handle:
            json.dump([], handle)
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "simulate", "--graph", graph_file, "--plan", plan_file,
                "--rates", "20,20", "--duration", "3",
                "--faults", faults, "--chaos-seed", "1",
            ])

    def test_chaos_runs_record_identically(self, tmp_path, graph_file,
                                           plan_file):
        """Two recorded runs of the same chaos seed produce identical
        result.json snapshots — the flow the CI determinism job diffs."""
        root = str(tmp_path / "runs")
        argv = [
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "4",
            "--chaos-seed", "7", "--failover", "volume",
            "--record", root,
        ]
        assert main(argv + ["--run-id", "first"]) == 0
        assert main(argv + ["--run-id", "second"]) == 0
        with open(f"{root}/first/result.json") as handle:
            first = json.load(handle)
        with open(f"{root}/second/result.json") as handle:
            second = json.load(handle)
        assert first == second
        assert first.get("faults")


class TestCheck:
    def test_clean_artifacts_exit_zero(self, graph_file, plan_file, capsys):
        assert main([
            "check", "--paths", graph_file, plan_file,
        ]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_bundled_configs_are_clean(self, capsys):
        import pathlib

        config_dir = str(
            pathlib.Path(__file__).resolve().parents[1]
            / "examples" / "configs"
        )
        assert main([
            "check", "--paths", config_dir, "--fail-on", "warning",
        ]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_error_diagnostic_exits_nonzero(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        import shutil

        shutil.copy(graph_file, tmp_path / "g.graph.json")
        with open(plan_file) as handle:
            doc = json.load(handle)
        doc["node_coefficients"][0][0] += 1.0  # stale L^n
        (tmp_path / "bad.plan.json").write_text(json.dumps(doc))
        assert main(["check", "--paths", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO305" in out
        assert "hint:" in out

    def test_fail_on_warning_promotes_warnings(self, tmp_path, capsys):
        (tmp_path / "no_seed.experiment.json").write_text(
            json.dumps({"kind": "experiment", "strategy": "rod"})
        )
        assert main(["check", "--paths", str(tmp_path)]) == 0
        assert main([
            "check", "--paths", str(tmp_path), "--fail-on", "warning",
        ]) == 1
        assert "REPRO401" in capsys.readouterr().out

    def test_lint_layer_reachable_from_check(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import random\nx = random.random()\n"
        )
        assert main(["check", "--paths", str(tmp_path)]) == 1
        assert "REPRO501" in capsys.readouterr().out
        assert main([
            "check", "--paths", str(tmp_path), "--no-lint",
        ]) == 0

    def test_evaluate_rejects_corrupted_plan(
        self, tmp_path, graph_file, plan_file
    ):
        with open(plan_file) as handle:
            doc = json.load(handle)
        doc["node_coefficients"][0][0] += 1.0
        bad_plan = tmp_path / "bad.plan.json"
        bad_plan.write_text(json.dumps(doc))
        with pytest.raises(SystemExit, match="REPRO305"):
            main(["evaluate", "--graph", graph_file, "--plan", str(bad_plan)])


class TestExperiment:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig9", "fig14", "fig15", "optimal-gap", "latency",
            "lower-bound", "nonlinear", "clustering", "fidelity", "dynamic",
            "fault-tolerance", "heterogeneous", "partitioning",
            "balance-bound", "qmc-convergence", "scheduling", "protocol",
            "linearization", "search-gap", "scale-solve", "elasticity",
        }

    def test_runs_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "PKT" in capsys.readouterr().out

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_writes_selected_artifacts(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        assert main([
            "report", "-o", path, "--scale", "quick", "--only", "fig2",
        ]) == 0
        content = open(path).read()
        assert content.startswith("# Reproduction report")
        assert "fig2" in content
        assert "fig14" not in content

    def test_report_module_validation(self):
        from repro.experiments import report

        with pytest.raises(ValueError, match="scale"):
            report.generate(scale="galactic")
        with pytest.raises(ValueError, match="artifact ids"):
            report.generate(only=("fig999",))

    def test_artifact_ids_unique(self):
        from repro.experiments.report import ARTIFACTS

        ids = [artifact_id for artifact_id, _, _ in ARTIFACTS]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 18


class TestObservabilityFlags:
    def test_simulate_trace_out_and_prometheus(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        trace_path = str(tmp_path / "run.jsonl")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", trace_path, "--emit-metrics", "prometheus",
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        assert "# TYPE rod_sim_runs_total counter" in out
        assert "rod_sim_runs_total 1" in out

        from repro.obs import read_trace

        events = read_trace(trace_path)
        assert events[0].type == "sim.start"
        assert events[-1].type == "sim.end"

    def test_simulate_emit_metrics_json(
        self, graph_file, plan_file, capsys
    ):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--emit-metrics", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["rod_sim_runs_total"]["type"] == "counter"

    def test_evaluate_emit_metrics_profiles_phases(
        self, graph_file, plan_file, capsys
    ):
        assert main([
            "evaluate", "--graph", graph_file, "--plan", plan_file,
            "--emit-metrics", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index('{\n'):])
        phases = {
            sample["labels"]["phase"]
            for sample in doc["repro_phase_seconds"]["samples"]
        }
        assert "evaluate.volume_ratio" in phases


class TestTraceSubcommand:
    def test_renders_trace_report(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        trace_path = str(tmp_path / "run.jsonl")
        main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", trace_path,
        ])
        capsys.readouterr()
        assert main(["trace", trace_path, "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "events by type:" in out
        assert "per-node utilization" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 1
        assert "empty trace" in capsys.readouterr().out


class TestVerbosityFlags:
    def test_verbose_flag_sets_debug_level(self, tmp_path):
        import logging

        path = str(tmp_path / "g.json")
        assert main([
            "-vv", "generate", "--kind", "monitoring", "--inputs", "2",
            "--seed", "1", "-o", path,
        ]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        main(["generate", "--kind", "monitoring", "--inputs", "2",
              "--seed", "1", "-o", path])
        assert logging.getLogger("repro").level == logging.WARNING

    def test_quiet_flag_sets_error_level(self, tmp_path):
        import logging

        path = str(tmp_path / "g.json")
        assert main([
            "-q", "generate", "--kind", "monitoring", "--inputs", "2",
            "--seed", "1", "-o", path,
        ]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        main(["generate", "--kind", "monitoring", "--inputs", "2",
              "--seed", "1", "-o", path])


class TestTraceFilters:
    @pytest.fixture
    def trace_path(self, tmp_path, graph_file, plan_file):
        path = str(tmp_path / "run.jsonl")
        main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", path,
        ])
        return path

    def test_type_filter(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "trace", trace_path, "--type", "batch.serviced",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch.serviced" in out
        assert "batch.enqueued" not in out

    def test_comma_separated_types(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "trace", trace_path, "--type", "node.busy,node.idle",
        ]) == 0
        out = capsys.readouterr().out
        assert "node.busy" in out and "node.idle" in out
        assert "batch.serviced" not in out

    def test_node_and_since_filters(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "trace", trace_path, "--node", "0", "--since", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        # Geometry still comes from the unfiltered trace header.
        assert "2 nodes" in out

    def test_filters_that_empty_the_trace_fail(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "trace", trace_path, "--type", "no.such.event",
        ]) == 1
        assert "no events" in capsys.readouterr().out


class TestRunRegistryCli:
    @pytest.fixture
    def recorded(self, tmp_path, graph_file, plan_file, capsys):
        root = str(tmp_path / "runs")
        for run_id in ("base", "same"):
            assert main([
                "simulate", "--graph", graph_file, "--plan", plan_file,
                "--rates", "20,20", "--duration", "2",
                "--record", root, "--run-id", run_id,
            ]) == 0
        capsys.readouterr()
        return root

    def test_record_announces_run_dir(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        root = str(tmp_path / "r")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--record", root, "--run-id", "x",
        ]) == 0
        assert "run recorded to" in capsys.readouterr().out
        from repro.obs import load_run
        import os

        run = load_run(os.path.join(root, "x"))
        assert run.has_trace
        assert run.manifest.argv[0] == "simulate"

    def test_runs_list_and_show(self, recorded, capsys):
        assert main(["runs", "list", "--root", recorded]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "same" in out and "simulate" in out
        assert main(["runs", "show", "base", "--root", recorded]) == 0
        out = capsys.readouterr().out
        assert "config digest" in out and "trace:" in out

    def test_runs_show_missing_run_fails(self, tmp_path, capsys):
        assert main([
            "runs", "show", "ghost", "--root", str(tmp_path),
        ]) == 1
        assert "ghost" in capsys.readouterr().out

    def test_compare_identical_runs_exits_zero(self, recorded, capsys):
        assert main([
            "compare", "base", "same", "--root", recorded,
        ]) == 0
        out = capsys.readouterr().out
        assert "no metric deltas" in out
        assert "0 breach(es)" in out

    def test_compare_regression_exits_nonzero(
        self, recorded, graph_file, plan_file, capsys
    ):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "60,60", "--duration", "2",
            "--record", recorded, "--run-id", "hot",
        ]) == 0
        capsys.readouterr()
        assert main([
            "compare", "base", "hot", "--root", recorded,
        ]) == 1
        assert "breach" in capsys.readouterr().out

    def test_compare_threshold_flags(self, recorded, capsys):
        assert main([
            "compare", "base", "same", "--root", recorded,
            "--threshold", "latency.p95=0.5",
            "--default-threshold", "0.1",
        ]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="NAME=REL"):
            main([
                "compare", "base", "same", "--root", recorded,
                "--threshold", "garbage",
            ])

    def test_report_writes_self_contained_html(self, recorded, capsys):
        import os

        assert main(["report", "base", "--root", recorded]) == 0
        capsys.readouterr()
        path = os.path.join(recorded, "base", "report.html")
        html = open(path).read()
        assert html.startswith("<!DOCTYPE html>")
        for banned in ("http://", "https://", "<script"):
            assert banned not in html

    def test_report_custom_output_path(self, recorded, tmp_path, capsys):
        out = str(tmp_path / "custom.html")
        assert main(["report", "base", "--root", recorded, "-o", out]) == 0
        assert open(out).read().startswith("<!DOCTYPE html>")

    def test_legacy_markdown_report_still_requires_output(self):
        with pytest.raises(SystemExit, match="-o/--output"):
            main(["report"])

    def test_evaluate_record(self, tmp_path, graph_file, plan_file, capsys):
        root = str(tmp_path / "runs")
        assert main([
            "evaluate", "--graph", graph_file, "--plan", plan_file,
            "--record", root, "--run-id", "ev",
        ]) == 0
        from repro.obs import find_run

        run = find_run("ev", root=root)
        assert run.manifest.kind == "evaluate"
        assert "volume_ratio" in run.result

    def test_experiment_record(self, tmp_path, capsys):
        root = str(tmp_path / "runs")
        assert main([
            "experiment", "fig2", "--record", root, "--run-id", "exp",
        ]) == 0
        from repro.obs import find_run

        run = find_run("exp", root=root)
        assert run.manifest.kind == "experiment"
        assert run.result["rows"]


class TestExplainAndSloCli:
    @pytest.fixture
    def recorded_run(self, tmp_path, graph_file, plan_file, capsys):
        root = str(tmp_path / "runs")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "3",
            "--record", root, "--run-id", "base",
        ]) == 0
        capsys.readouterr()
        return root

    def test_explain_renders_attribution(self, recorded_run, capsys):
        assert main(["explain", "base", "--root", recorded_run]) == 0
        out = capsys.readouterr().out
        assert "run base" in out
        assert "attributed" in out
        assert "service" in out

    def test_explain_json_is_fully_attributed(self, recorded_run, capsys):
        assert main([
            "explain", "base", "--root", recorded_run, "--json",
        ]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["attributed_ratio"] >= 0.999
        assert obj["unclosed_spans"] == 0

    def test_explain_missing_run_fails(self, tmp_path, capsys):
        assert main([
            "explain", "ghost", "--root", str(tmp_path),
        ]) == 1
        assert "ghost" in capsys.readouterr().out

    def test_slo_verdict_exit_codes(self, recorded_run, tmp_path, capsys):
        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps({"objectives": [
            {"name": "lat", "kind": "latency", "threshold_seconds": 60.0,
             "target": 0.5, "window_seconds": 1.0},
        ]}))
        assert main([
            "slo", "base", "--root", recorded_run,
            "--config", str(loose),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 breached" in out
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps({"objectives": [
            {"name": "tput", "kind": "throughput",
             "min_tuples_per_second": 1e9, "window_seconds": 1.0},
        ]}))
        assert main([
            "slo", "base", "--root", recorded_run,
            "--config", str(strict),
        ]) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_slo_bad_config_aborts(self, recorded_run, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"objectives": []}))
        with pytest.raises(SystemExit, match="objectives"):
            main([
                "slo", "base", "--root", recorded_run,
                "--config", str(bad),
            ])

    def test_simulate_slo_flag_gates_exit(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps({"objectives": [
            {"name": "tput", "kind": "throughput",
             "min_tuples_per_second": 1e9, "window_seconds": 1.0},
        ]}))
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--slo", str(strict),
        ]) == 1
        assert "BREACH" in capsys.readouterr().out


class TestWhyAndRunsJsonCli:
    @pytest.fixture
    def controlled_root(self, tmp_path, graph_file, plan_file, capsys):
        """One controller-less run and one chaos+failover run."""
        root = str(tmp_path / "runs")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--record", root, "--run-id", "plain",
        ]) == 0
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "6",
            "--chaos-seed", "5", "--failover", "volume",
            "--record", root, "--run-id", "chaos",
        ]) == 0
        capsys.readouterr()
        return root

    def test_runs_list_json(self, controlled_root, capsys):
        assert main([
            "runs", "list", "--root", controlled_root, "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_id = {row["run_id"]: row for row in rows}
        assert set(by_id) == {"plain", "chaos"}
        for row in rows:
            assert set(row) >= {
                "run_id", "kind", "created_wall", "sim_seconds",
                "seed", "faults", "config_digest", "path",
            }
            assert row["kind"] == "simulate"
            assert row["sim_seconds"] > 0
        assert by_id["plain"]["faults"] == 0
        assert by_id["chaos"]["faults"] > 0

    def test_runs_list_json_empty_root(self, tmp_path, capsys):
        assert main([
            "runs", "list", "--root", str(tmp_path), "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_why_renders_decision_audit(self, controlled_root, capsys):
        assert main(["why", "chaos", "--root", controlled_root]) == 0
        out = capsys.readouterr().out
        assert "run chaos" in out
        assert "decisions evaluated" in out
        assert "migrations applied" in out

    def test_why_json_links_every_migration(self, controlled_root, capsys):
        assert main([
            "why", "chaos", "--root", controlled_root, "--json",
        ]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["summary"]["evaluated"] > 0
        assert (
            obj["summary"]["linked_migrations"]
            == obj["summary"]["migrations"]
            == len(obj["migrations"])
        )
        for migration in obj["migrations"]:
            assert migration["decision"] is not None

    def test_why_without_decisions_fails(self, controlled_root, capsys):
        assert main(["why", "plain", "--root", controlled_root]) == 1
        assert "no decision events" in capsys.readouterr().out

    def test_why_missing_run_fails(self, tmp_path, capsys):
        assert main(["why", "ghost", "--root", str(tmp_path)]) == 1
        assert "ghost" in capsys.readouterr().out

    def test_snapshot_carries_decision_and_drift_keys(
        self, controlled_root
    ):
        from repro.obs import find_run

        for run_id in ("plain", "chaos"):
            result = find_run(run_id, root=controlled_root).result
            assert "decisions" in result and "drift" in result
            assert set(result["decisions"]) >= {
                "evaluated", "migrations", "linked_migrations",
                "triggers", "no_op",
            }
            assert set(result["drift"]) >= {
                "detected", "by_signal", "by_direction",
            }
        plain = find_run("plain", root=controlled_root).result
        # Controller-less constant-rate run: zero-valued but present.
        assert plain["decisions"]["evaluated"] == 0
        assert plain["drift"]["detected"] == 0


class TestTraceSpanLineage:
    @pytest.fixture
    def trace_path(self, tmp_path, graph_file, plan_file, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_span_lineage_view(self, trace_path, capsys):
        assert main(["trace", trace_path, "--span", "0"]) == 0
        out = capsys.readouterr().out
        assert "lineage of span 0" in out
        assert "span 0" in out

    def test_unknown_span_fails(self, trace_path, capsys):
        assert main(["trace", trace_path, "--span", "999999"]) == 1
        assert "does not appear" in capsys.readouterr().out

    def test_operator_filter_narrows_lineage(self, trace_path, capsys):
        assert main([
            "trace", trace_path, "--span", "0", "--operator", "nope",
        ]) == 0
        out = capsys.readouterr().out
        # Lineage header still prints; no member rows survive the filter.
        assert "lineage of span 0" in out
        assert "op=nope" not in out
