"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = str(tmp_path / "graph.json")
    code = main([
        "generate", "--kind", "random", "--inputs", "2",
        "--ops-per-tree", "5", "--seed", "3", "-o", path,
    ])
    assert code == 0
    return path


@pytest.fixture
def plan_file(tmp_path, graph_file):
    path = str(tmp_path / "plan.json")
    code = main([
        "place", "--graph", graph_file, "--nodes", "2",
        "--algorithm", "rod", "-o", path,
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_graph_document(self, graph_file):
        with open(graph_file) as handle:
            doc = json.load(handle)
        assert len(doc["inputs"]) == 2
        assert len(doc["operators"]) == 10

    def test_monitoring_kind(self, tmp_path):
        path = str(tmp_path / "mon.json")
        assert main(["generate", "--kind", "monitoring", "--inputs", "2",
                     "-o", path]) == 0
        with open(path) as handle:
            assert json.load(handle)["name"].startswith("monitoring")

    def test_joins_kind(self, tmp_path):
        path = str(tmp_path / "j.json")
        assert main(["generate", "--kind", "joins", "--inputs", "2",
                     "-o", path]) == 0


class TestPlace:
    def test_plan_document(self, plan_file):
        with open(plan_file) as handle:
            doc = json.load(handle)
        assert set(doc) == {
            "graph", "capacities", "assignment", "node_coefficients",
        }
        assert all(node in (0, 1) for node in doc["assignment"].values())
        assert len(doc["node_coefficients"]) == len(doc["capacities"])

    @pytest.mark.parametrize(
        "algorithm", ["llf", "random", "connected", "correlation", "milp"]
    )
    def test_other_algorithms(self, graph_file, algorithm, capsys):
        assert main([
            "place", "--graph", graph_file, "--nodes", "2",
            "--algorithm", algorithm, "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "feasible-set ratio" in out


class TestEvaluate:
    def test_prints_metrics_and_plot(self, graph_file, plan_file, capsys):
        assert main([
            "evaluate", "--graph", graph_file, "--plan", plan_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "plane distance" in out
        assert "> r1" in out  # 2-D plot rendered


class TestSimulate:
    def test_feasible_point_exits_zero(self, graph_file, plan_file, capsys):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "3", "--check",
        ]) == 0
        assert "feasible at this rate point: True" in capsys.readouterr().out

    def test_infeasible_point_fails_check(self, graph_file, plan_file):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "100000,100000", "--duration", "3", "--check",
        ]) == 1


class TestCheck:
    def test_clean_artifacts_exit_zero(self, graph_file, plan_file, capsys):
        assert main([
            "check", "--paths", graph_file, plan_file,
        ]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_bundled_configs_are_clean(self, capsys):
        import pathlib

        config_dir = str(
            pathlib.Path(__file__).resolve().parents[1]
            / "examples" / "configs"
        )
        assert main([
            "check", "--paths", config_dir, "--fail-on", "warning",
        ]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_error_diagnostic_exits_nonzero(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        import shutil

        shutil.copy(graph_file, tmp_path / "g.graph.json")
        with open(plan_file) as handle:
            doc = json.load(handle)
        doc["node_coefficients"][0][0] += 1.0  # stale L^n
        (tmp_path / "bad.plan.json").write_text(json.dumps(doc))
        assert main(["check", "--paths", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO305" in out
        assert "hint:" in out

    def test_fail_on_warning_promotes_warnings(self, tmp_path, capsys):
        (tmp_path / "no_seed.experiment.json").write_text(
            json.dumps({"kind": "experiment", "strategy": "rod"})
        )
        assert main(["check", "--paths", str(tmp_path)]) == 0
        assert main([
            "check", "--paths", str(tmp_path), "--fail-on", "warning",
        ]) == 1
        assert "REPRO401" in capsys.readouterr().out

    def test_lint_layer_reachable_from_check(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import random\nx = random.random()\n"
        )
        assert main(["check", "--paths", str(tmp_path)]) == 1
        assert "REPRO501" in capsys.readouterr().out
        assert main([
            "check", "--paths", str(tmp_path), "--no-lint",
        ]) == 0

    def test_evaluate_rejects_corrupted_plan(
        self, tmp_path, graph_file, plan_file
    ):
        with open(plan_file) as handle:
            doc = json.load(handle)
        doc["node_coefficients"][0][0] += 1.0
        bad_plan = tmp_path / "bad.plan.json"
        bad_plan.write_text(json.dumps(doc))
        with pytest.raises(SystemExit, match="REPRO305"):
            main(["evaluate", "--graph", graph_file, "--plan", str(bad_plan)])


class TestExperiment:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig9", "fig14", "fig15", "optimal-gap", "latency",
            "lower-bound", "nonlinear", "clustering", "fidelity", "dynamic",
            "heterogeneous", "partitioning", "balance-bound",
            "qmc-convergence", "scheduling", "protocol", "linearization",
            "search-gap",
        }

    def test_runs_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "PKT" in capsys.readouterr().out

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_writes_selected_artifacts(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        assert main([
            "report", "-o", path, "--scale", "quick", "--only", "fig2",
        ]) == 0
        content = open(path).read()
        assert content.startswith("# Reproduction report")
        assert "fig2" in content
        assert "fig14" not in content

    def test_report_module_validation(self):
        from repro.experiments import report

        with pytest.raises(ValueError, match="scale"):
            report.generate(scale="galactic")
        with pytest.raises(ValueError, match="artifact ids"):
            report.generate(only=("fig999",))

    def test_artifact_ids_unique(self):
        from repro.experiments.report import ARTIFACTS

        ids = [artifact_id for artifact_id, _, _ in ARTIFACTS]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 18


class TestObservabilityFlags:
    def test_simulate_trace_out_and_prometheus(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        trace_path = str(tmp_path / "run.jsonl")
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", trace_path, "--emit-metrics", "prometheus",
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        assert "# TYPE rod_sim_runs_total counter" in out
        assert "rod_sim_runs_total 1" in out

        from repro.obs import read_trace

        events = read_trace(trace_path)
        assert events[0].type == "sim.start"
        assert events[-1].type == "sim.end"

    def test_simulate_emit_metrics_json(
        self, graph_file, plan_file, capsys
    ):
        assert main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--emit-metrics", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["rod_sim_runs_total"]["type"] == "counter"

    def test_evaluate_emit_metrics_profiles_phases(
        self, graph_file, plan_file, capsys
    ):
        assert main([
            "evaluate", "--graph", graph_file, "--plan", plan_file,
            "--emit-metrics", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index('{\n'):])
        phases = {
            sample["labels"]["phase"]
            for sample in doc["repro_phase_seconds"]["samples"]
        }
        assert "evaluate.volume_ratio" in phases


class TestTraceSubcommand:
    def test_renders_trace_report(
        self, tmp_path, graph_file, plan_file, capsys
    ):
        trace_path = str(tmp_path / "run.jsonl")
        main([
            "simulate", "--graph", graph_file, "--plan", plan_file,
            "--rates", "20,20", "--duration", "2",
            "--trace-out", trace_path,
        ])
        capsys.readouterr()
        assert main(["trace", trace_path, "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "events by type:" in out
        assert "per-node utilization" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 1
        assert "empty trace" in capsys.readouterr().out


class TestVerbosityFlags:
    def test_verbose_flag_sets_debug_level(self, tmp_path):
        import logging

        path = str(tmp_path / "g.json")
        assert main([
            "-vv", "generate", "--kind", "monitoring", "--inputs", "2",
            "--seed", "1", "-o", path,
        ]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        main(["generate", "--kind", "monitoring", "--inputs", "2",
              "--seed", "1", "-o", path])
        assert logging.getLogger("repro").level == logging.WARNING

    def test_quiet_flag_sets_error_level(self, tmp_path):
        import logging

        path = str(tmp_path / "g.json")
        assert main([
            "-q", "generate", "--kind", "monitoring", "--inputs", "2",
            "--seed", "1", "-o", path,
        ]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        main(["generate", "--kind", "monitoring", "--inputs", "2",
              "--seed", "1", "-o", path])
