"""Unit tests for data-partitioning graph rewrites."""

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import Delay, Filter, QueryGraph, WindowJoin, Union
from repro.graphs.partition import parallelize_heaviest, partition_operator


@pytest.fixture
def chain():
    g = QueryGraph("chain")
    i = g.add_input("I")
    heavy = g.add_operator(Delay("heavy", cost=8.0, selectivity=0.5), [i])
    g.add_operator(Delay("tail", cost=1.0, selectivity=1.0), [heavy])
    return g


class TestPartitionOperator:
    def test_structure(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=4)
        names = rebuilt.operator_names
        assert sum(1 for n in names if n.startswith("heavy.route")) == 4
        assert sum(1 for n in names if n.startswith("heavy.part")) == 4
        assert "heavy.merge" in names
        assert "tail" in names

    def test_downstream_rewired_transparently(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=2)
        # The merge reuses the old output stream name, so 'tail' still
        # consumes "heavy.out".
        assert rebuilt.inputs_of("tail") == ("heavy.out",)

    def test_rates_preserved(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=3)
        original = chain.stream_rates([12.0])
        again = rebuilt.stream_rates([12.0])
        assert again["heavy.out"] == pytest.approx(original["heavy.out"])
        assert again["tail.out"] == pytest.approx(original["tail.out"])

    def test_total_load_preserved_up_to_overhead(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=4, route_cost=0.0, merge_cost=0.0
        )
        assert rebuilt.total_load([5.0]) == pytest.approx(
            chain.total_load([5.0])
        )

    def test_overhead_is_route_plus_merge(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=2, route_cost=0.1, merge_cost=0.2
        )
        # routes: 2 * 0.1 * r ; merge: 0.2 per arriving tuple, arriving
        # rate = 0.5 r total.
        extra = rebuilt.total_load([1.0]) - chain.total_load([1.0])
        assert extra == pytest.approx(2 * 0.1 + 0.2 * 0.5)

    def test_load_model_splits_columns(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=4, route_cost=0.0, merge_cost=0.0
        )
        model = build_load_model(rebuilt)
        row = model.operator_load_vector("heavy.part0")
        assert row[0] == pytest.approx(8.0 / 4)

    def test_resilience_improves(self, chain):
        from repro.core.rod import rod_place

        base_plan = rod_place(build_load_model(chain), [1.0, 1.0])
        rebuilt = partition_operator(chain, "heavy", ways=4)
        part_plan = rod_place(build_load_model(rebuilt), [1.0, 1.0])
        assert part_plan.volume_ratio(samples=2048) > (
            base_plan.volume_ratio(samples=2048)
        )

    def test_validation(self, chain):
        with pytest.raises(ValueError, match="ways"):
            partition_operator(chain, "heavy", ways=1)
        with pytest.raises(KeyError):
            partition_operator(chain, "ghost", ways=2)

    def test_joins_rejected(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(WindowJoin("j", window=1.0), [a, b])
        with pytest.raises(TypeError, match="linear"):
            partition_operator(g, "j", ways=2)

    def test_multi_input_rejected(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(Union("u", costs=[1.0, 1.0]), [a, b])
        with pytest.raises(ValueError, match="single-input"):
            partition_operator(g, "u", ways=2)

    def test_original_graph_untouched(self, chain):
        partition_operator(chain, "heavy", ways=2)
        assert chain.num_operators == 2


class TestParallelizeHeaviest:
    def test_splits_requested_count(self, chain):
        rebuilt = parallelize_heaviest(chain, count=2, ways=2)
        assert any(n.startswith("heavy.part") for n in rebuilt.operator_names)
        assert any(n.startswith("tail.part") for n in rebuilt.operator_names)

    def test_heaviest_first(self, chain):
        rebuilt = parallelize_heaviest(chain, count=1, ways=2)
        assert any(n.startswith("heavy.part") for n in rebuilt.operator_names)
        assert "tail" in rebuilt.operator_names

    def test_runs_out_of_candidates_gracefully(self, chain):
        rebuilt = parallelize_heaviest(chain, count=10, ways=2)
        # Both originals split; created instances are never re-split.
        originals = [
            n for n in rebuilt.operator_names if "." not in n
        ]
        assert originals == []

    def test_zero_count_is_identity(self, chain):
        assert parallelize_heaviest(chain, count=0, ways=2) is chain

    def test_validation(self, chain):
        with pytest.raises(ValueError):
            parallelize_heaviest(chain, count=-1, ways=2)
