"""Unit tests for data-partitioning graph rewrites."""

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import Delay, Filter, QueryGraph, WindowJoin, Union
from repro.graphs.partition import (
    parallelize_heaviest,
    partition_operator,
    unpartition_operator,
)
from repro.graphs.serialize import graph_from_dict, graph_to_dict


@pytest.fixture
def chain():
    g = QueryGraph("chain")
    i = g.add_input("I")
    heavy = g.add_operator(Delay("heavy", cost=8.0, selectivity=0.5), [i])
    g.add_operator(Delay("tail", cost=1.0, selectivity=1.0), [heavy])
    return g


class TestPartitionOperator:
    def test_structure(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=4)
        names = rebuilt.operator_names
        assert sum(1 for n in names if n.startswith("heavy.route")) == 4
        assert sum(1 for n in names if n.startswith("heavy.part")) == 4
        assert "heavy.merge" in names
        assert "tail" in names

    def test_downstream_rewired_transparently(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=2)
        # The merge reuses the old output stream name, so 'tail' still
        # consumes "heavy.out".
        assert rebuilt.inputs_of("tail") == ("heavy.out",)

    def test_rates_preserved(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=3)
        original = chain.stream_rates([12.0])
        again = rebuilt.stream_rates([12.0])
        assert again["heavy.out"] == pytest.approx(original["heavy.out"])
        assert again["tail.out"] == pytest.approx(original["tail.out"])

    def test_total_load_preserved_up_to_overhead(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=4, route_cost=0.0, merge_cost=0.0
        )
        assert rebuilt.total_load([5.0]) == pytest.approx(
            chain.total_load([5.0])
        )

    def test_overhead_is_route_plus_merge(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=2, route_cost=0.1, merge_cost=0.2
        )
        # routes: 2 * 0.1 * r ; merge: 0.2 per arriving tuple, arriving
        # rate = 0.5 r total.
        extra = rebuilt.total_load([1.0]) - chain.total_load([1.0])
        assert extra == pytest.approx(2 * 0.1 + 0.2 * 0.5)

    def test_load_model_splits_columns(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=4, route_cost=0.0, merge_cost=0.0
        )
        model = build_load_model(rebuilt)
        row = model.operator_load_vector("heavy.part0")
        assert row[0] == pytest.approx(8.0 / 4)

    def test_resilience_improves(self, chain):
        from repro.core.rod import rod_place

        base_plan = rod_place(build_load_model(chain), [1.0, 1.0])
        rebuilt = partition_operator(chain, "heavy", ways=4)
        part_plan = rod_place(build_load_model(rebuilt), [1.0, 1.0])
        assert part_plan.volume_ratio(samples=2048) > (
            base_plan.volume_ratio(samples=2048)
        )

    def test_validation(self, chain):
        with pytest.raises(ValueError, match="ways"):
            partition_operator(chain, "heavy", ways=1)
        with pytest.raises(KeyError):
            partition_operator(chain, "ghost", ways=2)

    def test_joins_rejected(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(WindowJoin("j", window=1.0), [a, b])
        with pytest.raises(TypeError, match="linear"):
            partition_operator(g, "j", ways=2)

    def test_multi_input_rejected(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(Union("u", costs=[1.0, 1.0]), [a, b])
        with pytest.raises(ValueError, match="single-input"):
            partition_operator(g, "u", ways=2)

    def test_original_graph_untouched(self, chain):
        partition_operator(chain, "heavy", ways=2)
        assert chain.num_operators == 2


class TestParallelizeHeaviest:
    def test_splits_requested_count(self, chain):
        rebuilt = parallelize_heaviest(chain, count=2, ways=2)
        assert any(n.startswith("heavy.part") for n in rebuilt.operator_names)
        assert any(n.startswith("tail.part") for n in rebuilt.operator_names)

    def test_heaviest_first(self, chain):
        rebuilt = parallelize_heaviest(chain, count=1, ways=2)
        assert any(n.startswith("heavy.part") for n in rebuilt.operator_names)
        assert "tail" in rebuilt.operator_names

    def test_runs_out_of_candidates_gracefully(self, chain):
        rebuilt = parallelize_heaviest(chain, count=10, ways=2)
        # Both originals split; created instances are never re-split.
        originals = [
            n for n in rebuilt.operator_names if "." not in n
        ]
        assert originals == []

    def test_zero_count_is_identity(self, chain):
        assert parallelize_heaviest(chain, count=0, ways=2) is chain

    def test_validation(self, chain):
        with pytest.raises(ValueError):
            parallelize_heaviest(chain, count=-1, ways=2)

    def test_dotted_user_names_stay_eligible(self):
        # Provenance is recorded in partition groups, not inferred from
        # names, so an operator whose *user-chosen* name contains a dot
        # is still a split candidate.
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("ns.heavy", cost=4.0, selectivity=1.0), [i])
        rebuilt = parallelize_heaviest(g, count=2, ways=2)
        assert "ns.heavy.part0" in rebuilt.operator_names
        # One eligible operator: the second round finds only derived
        # instances and stops instead of re-splitting them.
        assert "ns.heavy" in rebuilt.partition_groups
        assert len(rebuilt.partition_groups) == 1

    def test_load_ties_break_first_in_graph(self):
        # Two equally loaded operators: the earlier insertion wins, not
        # the lexicographically larger name.
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("zeta", cost=2.0, selectivity=1.0), [i])
        g.add_operator(
            Delay("alpha", cost=2.0, selectivity=1.0), ["zeta.out"]
        )
        rebuilt = parallelize_heaviest(g, count=1, ways=2)
        assert "zeta" in rebuilt.partition_groups
        assert "alpha" in rebuilt.operator_names


class TestPartitionProvenance:
    def test_instances_keep_concrete_class(self, chain):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Filter("f", cost=2.0, selectivity=0.5), [i])
        rebuilt = partition_operator(g, "f", ways=2)
        part = rebuilt.operator("f.part0")
        assert type(part) is Filter
        assert part.costs == (2.0,)
        assert part.selectivities == (0.5,)

    def test_unpartition_round_trips_type_and_fields(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Filter("f", cost=2.0, selectivity=0.5), [i])
        g.add_operator(Delay("tail", cost=1.0, selectivity=1.0), ["f.out"])
        restored = unpartition_operator(
            partition_operator(g, "f", ways=3), "f"
        )
        op = restored.operator("f")
        assert type(op) is Filter
        assert op.costs == (2.0,)
        assert op.selectivities == (0.5,)
        assert restored.inputs_of("tail") == ("f.out",)
        assert restored.partition_groups == {}
        assert restored.stream_rates([8.0]) == pytest.approx(
            g.stream_rates([8.0])
        )

    def test_unpartition_requires_a_group(self, chain):
        with pytest.raises(KeyError, match="no partition group"):
            unpartition_operator(chain, "heavy")

    def test_derived_instances_cannot_be_resplit(self, chain):
        rebuilt = partition_operator(chain, "heavy", ways=2)
        with pytest.raises(ValueError, match="unpartition"):
            partition_operator(rebuilt, "heavy.part0", ways=2)

    def test_group_records_rewrite(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=2, fractions=(0.75, 0.25)
        )
        group = rebuilt.partition_groups["heavy"]
        assert group.routes == ("heavy.route0", "heavy.route1")
        assert group.parts == ("heavy.part0", "heavy.part1")
        assert group.merge == "heavy.merge"
        assert group.fractions == (0.75, 0.25)
        # The route filters carry the fractions as selectivities.
        assert rebuilt.operator("heavy.route0").selectivities == (0.75,)
        assert rebuilt.operator("heavy.route1").selectivities == (0.25,)

    def test_fractions_validation(self, chain):
        with pytest.raises(ValueError, match="fractions"):
            partition_operator(chain, "heavy", ways=2, fractions=(1.0,))
        with pytest.raises(ValueError, match="sum"):
            partition_operator(
                chain, "heavy", ways=2, fractions=(0.9, 0.3)
            )
        with pytest.raises(ValueError, match="> 0"):
            partition_operator(
                chain, "heavy", ways=2, fractions=(1.0, 0.0)
            )

    def test_groups_serialize_round_trip(self, chain):
        rebuilt = partition_operator(
            chain, "heavy", ways=2, fractions=(0.7, 0.3)
        )
        loaded = graph_from_dict(graph_to_dict(rebuilt))
        group = loaded.partition_groups["heavy"]
        assert group.fractions == (0.7, 0.3)
        assert group.parts == ("heavy.part0", "heavy.part1")
        assert type(loaded.operator("heavy.part0")) is Delay

    def test_unpartitioned_graphs_serialize_without_partitions_key(
        self, chain
    ):
        assert "partitions" not in graph_to_dict(chain)
