"""Hierarchical cluster-then-place: decomposition, parity, and scale."""

import numpy as np
import pytest

from repro.check import check_plan_document
from repro.experiments.common import make_model
from repro.placement import AnnealingPlacer, HierarchicalPlacer
from repro.placement.hierarchical import RestrictedModel


@pytest.fixture(scope="module")
def mid_model():
    return make_model(6, 32, seed=2)


def hierarchical(seed=0, **overrides):
    config = dict(group_size=8, refine_iterations=100, samples=512,
                  score_batch=16, seed=seed)
    config.update(overrides)
    return HierarchicalPlacer(**config)


class TestNodeGroups:
    def test_groups_partition_all_nodes(self):
        placer = HierarchicalPlacer(group_size=4)
        caps = np.array([1.0] * 10)
        groups = placer.node_groups(caps)
        flat = sorted(node for group in groups for node in group)
        assert flat == list(range(10))
        assert all(len(group) <= 4 for group in groups)

    def test_round_robin_balances_capacity(self):
        placer = HierarchicalPlacer(group_size=2)
        caps = np.array([4.0, 3.0, 2.0, 1.0])
        groups = placer.node_groups(caps)
        totals = sorted(float(caps[g].sum()) for g in groups)
        # Largest-first dealing pairs 4 with 1 and 3 with 2.
        assert totals == [5.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalPlacer(group_size=0)
        with pytest.raises(ValueError):
            HierarchicalPlacer(max_clusters=0)
        with pytest.raises(ValueError):
            HierarchicalPlacer(refine_iterations=0)
        with pytest.raises(ValueError):
            HierarchicalPlacer(score_batch=0)
        with pytest.raises(ValueError):
            HierarchicalPlacer(jobs=0)
        with pytest.raises(ValueError):
            HierarchicalPlacer(max_weight_multiplier=0.0)


class TestRestrictedModel:
    def test_subset_with_global_totals(self, mid_model):
        sub = RestrictedModel(mid_model, (3, 5, 8))
        assert sub.num_operators == 3
        assert sub.num_variables == mid_model.num_variables
        assert np.array_equal(sub.column_totals(),
                              mid_model.column_totals())
        assert sub.operator_names == tuple(
            mid_model.operator_names[j] for j in (3, 5, 8)
        )
        assert sub.operator_index(sub.operator_names[1]) == 1

    def test_validation(self, mid_model):
        with pytest.raises(ValueError):
            RestrictedModel(mid_model, (1, 1))
        with pytest.raises(IndexError):
            RestrictedModel(mid_model, (mid_model.num_operators,))
        with pytest.raises(KeyError):
            RestrictedModel(mid_model, (0,)).operator_index("nope")


class TestPlacementParity:
    def test_volume_within_five_percent_of_flat(self):
        # The acceptance bound of the scale path: decomposition may not
        # cost more than 5% of the flat baseline's feasible-set volume.
        for seed in (1, 2, 3):
            model = make_model(6, 32, seed=seed)
            caps = [1.0] * 48
            flat = AnnealingPlacer(seed=5).place(model, caps)
            hier = hierarchical(seed=5).place(model, caps)
            flat_volume = flat.volume_ratio(samples=4096)
            hier_volume = hier.volume_ratio(samples=4096)
            assert hier_volume >= 0.95 * flat_volume

    def test_plan_document_passes_invariant_checks(self, mid_model):
        plan = hierarchical().place(mid_model, [1.0] * 48)
        report = check_plan_document(plan.to_document(), model=mid_model)
        assert report.ok, report.format()

    def test_every_operator_assigned_in_range(self, mid_model):
        plan = hierarchical().place(mid_model, [1.0] * 48)
        assert len(plan.assignment) == mid_model.num_operators
        assert all(0 <= node < 48 for node in plan.assignment)

    def test_deterministic_for_seed(self, mid_model):
        caps = [1.0] * 48
        first = hierarchical(seed=9).place(mid_model, caps)
        second = hierarchical(seed=9).place(mid_model, caps)
        assert first.assignment == second.assignment

    def test_jobs_do_not_change_the_plan(self, mid_model):
        caps = [1.0] * 48
        serial = hierarchical(seed=4, jobs=1).place(mid_model, caps)
        parallel = hierarchical(seed=4, jobs=2).place(mid_model, caps)
        assert serial.assignment == parallel.assignment

    def test_single_group_falls_back_to_flat(self, mid_model):
        plan = hierarchical(group_size=64).place(mid_model, [1.0] * 6)
        assert len(plan.assignment) == mid_model.num_operators
        assert all(0 <= node < 6 for node in plan.assignment)

    def test_coarse_clustering_still_produces_valid_plan(self, mid_model):
        placer = hierarchical(max_clusters=48, max_weight_multiplier=4.0)
        plan = placer.place(mid_model, [1.0] * 48)
        report = check_plan_document(plan.to_document(), model=mid_model)
        assert report.ok, report.format()

    def test_heterogeneous_capacities(self, mid_model):
        caps = [2.0 if i % 3 == 0 else 1.0 for i in range(48)]
        plan = hierarchical(seed=2).place(mid_model, caps)
        assert plan.volume_ratio(samples=2048) >= 0.0


class TestThousandNodeScale:
    def test_thousand_node_sixty_four_stream_end_to_end(self):
        # The tentpole's headline scale: 1000 nodes, 64 input streams,
        # 2048 operators, end to end through the hierarchical path.
        model = make_model(64, 32, seed=1)
        assert model.num_variables == 64
        placer = hierarchical(refine_iterations=50, samples=256)
        plan = placer.place(model, [1.0] * 1000)
        assert len(plan.assignment) == model.num_operators
        used = set(plan.assignment)
        assert len(used) == 1000  # every node carries load at this size
        report = check_plan_document(plan.to_document(), model=model)
        assert report.ok, report.format()
