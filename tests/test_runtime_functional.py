"""Unit tests for functional operators and records."""

import math

import pytest

from repro.graphs import Aggregate, Filter, Map, Union, WindowJoin
from repro.runtime import (
    FnAggregate,
    FnFilter,
    FnMap,
    FnUnion,
    FnWindowJoin,
    Record,
)


class TestRecord:
    def test_immutable_mapping(self):
        r = Record(1.0, {"a": 1})
        with pytest.raises(TypeError):
            r.data["a"] = 2

    def test_with_data_copies(self):
        r = Record(1.0, {"a": 1})
        r2 = r.with_data(b=2)
        assert r2["a"] == 1 and r2["b"] == 2
        assert "b" not in r.data

    def test_get_and_item(self):
        r = Record(0.0, {"x": 5})
        assert r["x"] == 5
        assert r.get("y", 7) == 7

    def test_rejects_nonfinite_time(self):
        with pytest.raises(ValueError):
            Record(math.nan, {})

    def test_repr(self):
        assert "x=1" in repr(Record(2.0, {"x": 1}))


class TestFnMap:
    def test_applies_function(self):
        op = FnMap("m", lambda d: {"y": d["x"] * 2})
        (out,) = op.accept(0, Record(1.0, {"x": 3}))
        assert out["y"] == 6
        assert out.time == 1.0

    def test_lowering(self):
        op = FnMap("m", lambda d: d, cost=2e-4)
        model_op = op.to_model_operator()
        assert isinstance(model_op, Map)
        assert model_op.costs == (2e-4,)

    def test_port_checked(self):
        with pytest.raises(IndexError):
            FnMap("m", lambda d: d).accept(1, Record(0.0))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            FnMap("m", lambda d: d, cost=-1.0)


class TestFnFilter:
    def test_keeps_and_drops(self):
        op = FnFilter("f", lambda d: d["x"] > 0)
        assert op.accept(0, Record(0.0, {"x": 1}))
        assert op.accept(0, Record(0.0, {"x": -1})) == []

    def test_lowering_uses_measured_selectivity(self):
        op = FnFilter("f", lambda d: True)
        model_op = op.to_model_operator(selectivity=0.25)
        assert isinstance(model_op, Filter)
        assert model_op.selectivities == (0.25,)

    def test_lowering_caps_selectivity(self):
        model_op = FnFilter("f", lambda d: True).to_model_operator(
            selectivity=1.7
        )
        assert model_op.selectivities == (1.0,)


class TestFnUnion:
    def test_tags_source_port(self):
        op = FnUnion("u", arity=3)
        (out,) = op.accept(2, Record(0.0, {"x": 1}))
        assert out["_source"] == 2

    def test_arity_validated(self):
        with pytest.raises(ValueError):
            FnUnion("u", arity=1)

    def test_lowering(self):
        model_op = FnUnion("u", arity=3).to_model_operator()
        assert isinstance(model_op, Union)
        assert model_op.arity == 3


class TestFnAggregate:
    def make(self, window=1.0, key=None):
        return FnAggregate(
            "agg",
            window=window,
            reducer=lambda rs: {"n": len(rs)},
            key=key,
        )

    def test_window_closes_on_watermark(self):
        op = self.make()
        assert op.accept(0, Record(0.2, {})) == []
        assert op.accept(0, Record(0.7, {})) == []
        (out,) = op.accept(0, Record(1.1, {}))
        assert out["n"] == 2
        assert out.time == 1.0

    def test_grouping(self):
        op = self.make(key=lambda d: d["k"])
        op.accept(0, Record(0.1, {"k": "a"}))
        op.accept(0, Record(0.2, {"k": "b"}))
        op.accept(0, Record(0.3, {"k": "a"}))
        outs = op.flush()
        by_key = {o["key"]: o["n"] for o in outs}
        assert by_key == {"a": 2, "b": 1}

    def test_flush_releases_open_windows(self):
        op = self.make()
        op.accept(0, Record(0.5, {}))
        (out,) = op.flush()
        assert out["n"] == 1

    def test_lowering_uses_observed_compression(self):
        op = self.make()
        for t in (0.1, 0.2, 0.3, 0.4):
            op.accept(0, Record(t, {}))
        op.flush()
        model_op = op.to_model_operator()
        assert isinstance(model_op, Aggregate)
        assert model_op.selectivities[0] == pytest.approx(0.25)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            self.make(window=0.0)


class TestFnAggregateSliding:
    def make(self, window=4.0, slide=2.0):
        return FnAggregate(
            "agg", window=window, slide=slide,
            reducer=lambda rs: {"n": len(rs)},
        )

    def test_record_lands_in_overlapping_windows(self):
        op = self.make(window=4.0, slide=2.0)
        # t=3 belongs to windows [0,4) and [2,6).
        op.accept(0, Record(3.0, {}))
        outs = op.flush()
        assert [o["n"] for o in outs] == [1, 1]
        assert [o.time for o in outs] == [4.0, 6.0]

    def test_watermark_emits_hops_in_order(self):
        op = self.make(window=4.0, slide=2.0)
        op.accept(0, Record(1.0, {}))   # windows 0 only (k=0)
        op.accept(0, Record(3.0, {}))   # windows 0 and 1
        released = op.accept(0, Record(6.5, {}))  # closes [0,4) and [2,6)
        assert [o.time for o in released] == [4.0, 6.0]
        assert [o["n"] for o in released] == [2, 1]

    def test_output_rate_scales_with_overlap(self):
        op = self.make(window=4.0, slide=1.0)
        for t in range(40):
            op.accept(0, Record(float(t), {}))
        op.flush()
        model_op = op.to_model_operator()
        # ~1 output per slide, 1 input per unit time -> selectivity ~1.
        assert model_op.selectivities[0] == pytest.approx(1.0, abs=0.15)

    def test_slide_validation(self):
        with pytest.raises(ValueError, match="slide"):
            self.make(window=2.0, slide=3.0)
        with pytest.raises(ValueError, match="slide"):
            self.make(window=2.0, slide=0.0)

    def test_tumbling_default_unchanged(self):
        op = FnAggregate("agg", window=2.0,
                         reducer=lambda rs: {"n": len(rs)})
        assert op.slide == 2.0


class TestFnWindowJoin:
    def make(self, window=2.0):
        return FnWindowJoin(
            "j",
            window=window,
            left_key=lambda d: d["k"],
            right_key=lambda d: d["k"],
            merge=lambda l, r: {"k": l["k"], "both": (l["v"], r["v"])},
        )

    def test_matching_keys_within_window_join(self):
        op = self.make()
        op.accept(0, Record(0.0, {"k": "a", "v": 1}))
        (out,) = op.accept(1, Record(0.5, {"k": "a", "v": 2}))
        assert out["both"] == (1, 2)
        assert out.time == 0.5

    def test_mismatched_keys_do_not_join(self):
        op = self.make()
        op.accept(0, Record(0.0, {"k": "a", "v": 1}))
        assert op.accept(1, Record(0.5, {"k": "b", "v": 2})) == []

    def test_half_window_expiry(self):
        op = self.make(window=2.0)
        op.accept(0, Record(0.0, {"k": "a", "v": 1}))
        assert op.accept(1, Record(1.5, {"k": "a", "v": 2})) == []

    def test_merge_order_is_left_right(self):
        op = self.make()
        op.accept(1, Record(0.0, {"k": "a", "v": "right"}))
        (out,) = op.accept(0, Record(0.1, {"k": "a", "v": "left"}))
        assert out["both"] == ("left", "right")

    def test_match_selectivity_measured(self):
        op = self.make()
        op.accept(0, Record(0.0, {"k": "a", "v": 1}))
        op.accept(0, Record(0.0, {"k": "b", "v": 1}))
        op.accept(1, Record(0.1, {"k": "a", "v": 2}))  # 2 pairs, 1 match
        assert op.match_selectivity == pytest.approx(0.5)

    def test_lowering_uses_pair_statistics(self):
        op = self.make(window=3.0)
        op.accept(0, Record(0.0, {"k": "a", "v": 1}))
        op.accept(0, Record(0.0, {"k": "b", "v": 1}))
        op.accept(1, Record(0.1, {"k": "a", "v": 2}))
        # Interpreter-level ratios are ignored: per-pair stats rule.
        model_op = op.to_model_operator(selectivity=0.9)
        assert isinstance(model_op, WindowJoin)
        assert model_op.window == 3.0
        assert model_op.selectivity == pytest.approx(0.5)

    def test_lowering_without_traffic_defaults_to_one(self):
        model_op = self.make().to_model_operator()
        assert model_op.selectivity == 1.0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            self.make(window=-1.0)
