"""Smoke and shape tests for every experiment harness."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    balance_bound,
    clustering_experiment,
    dimensions,
    dynamic_migration,
    fidelity,
    fig2_traces,
    fig9_plane_distance,
    format_rows,
    heterogeneous,
    latency,
    linearization_value,
    lower_bound,
    nonlinear,
    optimal_gap,
    partitioning,
    qmc_convergence,
    resiliency,
    scheduling_ablation,
)
from repro.experiments.common import ALGORITHMS, make_model, make_placer


class TestCommon:
    def test_make_model_dimensions(self):
        model = make_model(3, 5, seed=1)
        assert model.num_variables == 3
        assert model.num_operators == 15

    def test_make_placer_all_algorithms(self):
        model = make_model(2, 4, seed=1)
        for name in ALGORITHMS:
            placer = make_placer(name, model, run_seed=1)
            plan = placer.place(model, [1.0, 1.0])
            assert len(plan.assignment) == model.num_operators

    def test_make_placer_unknown(self):
        model = make_model(2, 4, seed=1)
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_placer("hashring", model, run_seed=1)

    def test_format_rows_alignment(self):
        text = format_rows([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "0.5000" in text

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"


class TestFig2:
    def test_rows_and_burstiness(self):
        rows = fig2_traces.run(steps=1024, seed=1)
        assert [r["trace"] for r in rows] == ["PKT", "TCP", "HTTP"]
        for row in rows:
            assert row["normalized_std"] > 0.1
            assert row["hurst"] > 0.55  # self-similar


class TestFig9:
    def test_scatter_and_bins(self):
        rows = fig9_plane_distance.run(count=100, samples=512, seed=1)
        assert len(rows) == 100
        assert all(0 <= r["volume_ratio"] <= 1 for r in rows)
        bins = fig9_plane_distance.binned(rows, bins=5)
        assert bins
        # Envelope trend: mean ratio grows with r/r*.
        means = [b["mean_ratio"] for b in bins]
        assert means[-1] > means[0]

    def test_lower_bound_below_minimum(self):
        rows = fig9_plane_distance.run(count=150, samples=512, seed=2)
        for b in fig9_plane_distance.binned(rows, bins=5):
            assert b["sphere_lower_bound"] <= b["min_ratio"] + 0.05

    def test_binned_validation(self):
        with pytest.raises(ValueError):
            fig9_plane_distance.binned([], bins=0)
        assert fig9_plane_distance.binned([], bins=3) == []


class TestResiliency:
    def test_figure14_shape(self):
        rows = resiliency.run(
            operator_counts=(20, 40),
            num_inputs=2,
            num_nodes=4,
            repeats=3,
            graph_repeats=1,
            samples=1024,
        )
        by_key = {(r["operators"], r["algorithm"]): r for r in rows}
        for count in (20, 40):
            rod = by_key[(count, "rod")]["ratio_to_ideal"]
            for name in ALGORITHMS:
                assert by_key[(count, name)]["ratio_to_ideal"] <= rod + 0.02
        # More operators -> ROD closer to ideal.
        assert (
            by_key[(40, "rod")]["ratio_to_ideal"]
            >= by_key[(20, "rod")]["ratio_to_ideal"] - 0.02
        )

    def test_rejects_nondivisible_counts(self):
        with pytest.raises(ValueError, match="multiple"):
            resiliency.run(operator_counts=(25,), num_inputs=2, repeats=1)


class TestOptimalGap:
    def test_ratios_in_range(self):
        rows = optimal_gap.run(
            dimensions=(2,), operators_per_tree=3, graphs_per_dimension=2
        )
        for row in rows:
            assert 0.5 <= row["rod_over_optimal"] <= 1.0 + 1e-9
        agg = optimal_gap.aggregate(rows)
        assert agg["min_ratio"] <= agg["mean_ratio"]

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_gap.aggregate([])


class TestDimensions:
    def test_ratio_to_rod_at_most_one_ish(self):
        rows = dimensions.run(
            input_counts=(2, 3),
            operators_per_tree=8,
            num_nodes=4,
            repeats=2,
            samples=1024,
        )
        assert {r["inputs"] for r in rows} == {2, 3}
        for row in rows:
            assert row["ratio_to_rod"] <= 1.1


class TestLatency:
    def test_rows_schema_and_overload_shape(self):
        rows = latency.run(
            utilizations=(0.5,),
            steps=100,
            algorithms=("rod", "connected"),
        )
        assert len(rows) == 2
        by_alg = {r["algorithm"]: r for r in rows}
        assert (
            by_alg["rod"]["p95_latency_ms"]
            <= by_alg["connected"]["p95_latency_ms"] + 1e-6
        )


class TestLowerBound:
    def test_zero_floor_variants_agree(self):
        rows = lower_bound.run(floor_fractions=(0.0,), samples=512)
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["rod"]["restricted_ratio"] == pytest.approx(
            by_alg["rod_lb"]["restricted_ratio"]
        )

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            lower_bound.run(floor_fractions=(1.5,))


class TestNonlinear:
    def test_rod_not_dominated(self):
        rows = nonlinear.run(
            directions=8, num_nodes=3, algorithms=("rod", "random")
        )
        by_alg = {r["algorithm"]: r for r in rows}
        assert (
            by_alg["rod"]["feasible_fraction"]
            >= by_alg["random"]["feasible_fraction"] - 0.05
        )
        assert by_alg["rod"]["aux_variables"] == 2

    def test_saturation_scale_is_exact(self, join_model):
        direction = np.ones(join_model.num_inputs)
        scale = nonlinear.saturation_scale(join_model, [1.0, 1.0], direction)
        total = join_model.graph.total_load(scale * direction)
        assert total == pytest.approx(2.0, rel=1e-4)


class TestClustering:
    def test_clustering_not_worse(self):
        rows = clustering_experiment.run(
            cost_multipliers=(1.0,), samples=512
        )
        by_strategy = {r["strategy"]: r for r in rows}
        assert (
            by_strategy["rod_clustered"]["comm_plane_distance"]
            >= by_strategy["rod_plain"]["comm_plane_distance"] - 1e-9
        )


class TestFidelity:
    def test_high_agreement(self):
        rows = fidelity.run(points=8, duration=4.0)
        row = rows[0]
        assert row["agreement_rate"] + row["near_boundary_disagreements"] / 8 \
            >= 0.99
        assert row["mean_utilization_error"] < 0.05


class TestHeterogeneous:
    def test_rod_dominates_on_skewed_profile(self):
        rows = heterogeneous.run(
            operators_per_tree=8,
            repeats=2,
            samples=1024,
            profiles=("skewed",),
        )
        by_alg = {r["algorithm"]: r for r in rows}
        for name in ("llf", "random", "connected"):
            assert (
                by_alg[name]["ratio_to_ideal"]
                <= by_alg["rod"]["ratio_to_ideal"] + 0.02
            )
        assert by_alg["rod"]["rod_capacity_share_error"] < 0.1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            heterogeneous.run(profiles=("galactic",))


class TestDynamicMigration:
    def test_scenarios_and_strategies_covered(self):
        rows = dynamic_migration.run(steps=120)
        scenarios = {r["scenario"] for r in rows}
        strategies = {r["strategy"] for r in rows}
        assert scenarios == {"burst", "shift"}
        assert strategies == {
            "static_rod",
            "static_llf",
            "dynamic_llf_aggressive",
            "dynamic_llf_conservative",
        }
        for row in rows:
            if row["strategy"].startswith("static"):
                assert row["migrations"] == 0


class TestPartitioning:
    def test_rod_improves_with_partitioning(self):
        rows = partitioning.run(
            ways_options=(1, 4), samples=1024, algorithms=("rod",)
        )
        by_ways = {r["ways"]: r for r in rows}
        assert (
            by_ways[4]["ratio_to_ideal"] > by_ways[1]["ratio_to_ideal"]
        )
        assert by_ways[4]["operators"] > by_ways[1]["operators"]


class TestBalanceBound:
    def test_milp_is_a_true_lower_bound(self):
        rows = balance_bound.run(
            graph_seeds=(3,), regimes=(2,), samples=512
        )
        for row in rows:
            assert row["rod_max_weight"] >= row["optimal_max_weight"] - 1e-6
            assert row["balance_gap"] >= -1e-9


class TestQmcConvergence:
    def test_errors_shrink(self):
        rows = qmc_convergence.run(
            sample_counts=(256, 4096), graph_seeds=(2, 4), mc_repeats=2
        )
        assert rows[-1]["halton_mean_abs_error"] <= (
            rows[0]["halton_mean_abs_error"] + 1e-9
        )


class TestSchedulingAblation:
    def test_policies_share_throughput(self):
        rows = scheduling_ablation.run(steps=100)
        assert len({r["tuples_out"] for r in rows}) == 1


class TestLinearizationValue:
    def test_rows_and_validation(self):
        rows = linearization_value.run(
            selectivities=(0.3, 0.5, 0.7), workload_seeds=(0, 1)
        )
        assert rows[-1]["realized_selectivity"] == "worst-case"
        for row in rows:
            assert 0 < row["linearized_ratio"] <= 1
        with pytest.raises(ValueError, match="selectivities"):
            linearization_value.run(selectivities=(0.0,))


class TestProtocolComparison:
    def test_small_run_schema(self):
        rows = fidelity.run_protocol_comparison(points=6, duration=3.0)
        assert {r["algorithm"] for r in rows} == {"rod", "llf"}
        for row in rows:
            assert 0 <= row["empirical_fraction"] <= 1


class TestAblations:
    def test_ordering_rows(self):
        rows = ablations.run_ordering(random_orders=2, samples=512)
        assert [r["ordering"] for r in rows] == [
            "norm_descending",
            "graph_order",
            "random_mean_of_2",
        ]

    def test_policy_rows(self):
        rows = ablations.run_class_one_policy(samples=512)
        assert {r["policy"] for r in rows} == {
            "plane", "first", "random", "connections"
        }
