"""Unit tests for the discrete-event simulation engine."""

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping
from repro.graphs import Delay, Filter, Map, QueryGraph, WindowJoin
from repro.simulator import Simulator


def single_op_plan(cost=0.01, selectivity=1.0, capacity=1.0):
    g = QueryGraph()
    i = g.add_input("I")
    g.add_operator(Delay("op", cost=cost, selectivity=selectivity), [i])
    model = build_load_model(g)
    return placement_from_mapping(model, [capacity], {"op": 0})


class TestBasicRuns:
    def test_tuple_conservation_unit_selectivity(self):
        plan = single_op_plan()
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[50.0], duration=10.0
        )
        assert result.tuples_in == 500
        assert result.tuples_out == 500

    def test_selectivity_reduces_output(self):
        plan = single_op_plan(selectivity=0.25)
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[40.0], duration=10.0
        )
        assert result.tuples_out == 100

    def test_utilization_matches_analytic(self):
        # 50 tuples/s * 0.01 s/tuple = 0.5 CPU demand.
        plan = single_op_plan(cost=0.01)
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[50.0], duration=20.0
        )
        assert result.max_utilization == pytest.approx(0.5, abs=0.01)

    def test_capacity_scales_service(self):
        plan = single_op_plan(cost=0.01, capacity=2.0)
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[50.0], duration=20.0
        )
        assert result.max_utilization == pytest.approx(0.25, abs=0.01)

    def test_latency_includes_queueing(self):
        """A batch of B tuples served at cost c has mean completion near
        the batch service time."""
        plan = single_op_plan(cost=0.001)
        result = Simulator(plan, step_seconds=1.0).run(
            rates=[100.0], duration=5.0
        )
        # Each 1 s step delivers 100 tuples taking 0.1 s to drain.
        assert 0.01 <= result.latency.mean() <= 0.2

    def test_overload_accumulates_backlog(self):
        plan = single_op_plan(cost=0.05)  # demand 2.5x capacity at r=50
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[50.0], duration=5.0
        )
        assert result.max_utilization > 2.0
        assert result.backlog_seconds[0] > 1.0
        assert not result.is_feasible()

    def test_operator_stats_recorded(self):
        plan = single_op_plan(cost=0.01, selectivity=0.5)
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[20.0], duration=10.0
        )
        stats = result.operator_stats["op"]
        assert stats.tuples_in == 200
        assert stats.tuples_out == 100
        assert stats.measured_cost == pytest.approx(0.01)
        assert stats.measured_selectivity == pytest.approx(0.5)


class TestPipelines:
    @pytest.fixture
    def chain_plan(self):
        g = QueryGraph()
        s = g.add_input("I")
        s = g.add_operator(Filter("f", cost=0.001, selectivity=0.5), [s])
        g.add_operator(Map("m", cost=0.002), [s])
        model = build_load_model(g)
        return placement_from_mapping(model, [1.0, 1.0], {"f": 0, "m": 1})

    def test_downstream_sees_filtered_stream(self, chain_plan):
        result = Simulator(chain_plan, step_seconds=0.1).run(
            rates=[100.0], duration=10.0
        )
        assert result.operator_stats["f"].tuples_in == 1000
        assert result.operator_stats["m"].tuples_in == 500
        assert result.tuples_out == 500

    def test_sink_latency_keyed_by_stream(self, chain_plan):
        result = Simulator(chain_plan, step_seconds=0.1).run(
            rates=[100.0], duration=5.0
        )
        assert set(result.sink_latency) == {"m.out"}

    def test_fanout_duplicates_tuples(self):
        g = QueryGraph()
        i = g.add_input("I")
        a = g.add_operator(Map("a", cost=0.001), [i])
        g.add_operator(Map("b", cost=0.001), [a])
        g.add_operator(Map("c", cost=0.001), [a])
        model = build_load_model(g)
        plan = placement_from_mapping(model, [1.0], {"a": 0, "b": 0, "c": 0})
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[10.0], duration=10.0
        )
        assert result.operator_stats["b"].tuples_in == 100
        assert result.operator_stats["c"].tuples_in == 100
        assert result.tuples_out == 200


class TestNetworkCosts:
    def make_plan(self, colocate: bool):
        g = QueryGraph()
        i = g.add_input("I")
        a = g.add_operator(Map("a", cost=0.001), [i])
        g.add_operator(Map("b", cost=0.001), [a])
        model = build_load_model(g)
        mapping = {"a": 0, "b": 0} if colocate else {"a": 0, "b": 1}
        return placement_from_mapping(model, [1.0, 1.0], mapping)

    def test_crossing_arc_charges_both_nodes(self):
        split = self.make_plan(colocate=False)
        result = Simulator(
            split, step_seconds=0.1, transfer_costs=0.004
        ).run(rates=[100.0], duration=10.0)
        # Node 0: op a 0.1 + send 0.4; node 1: recv 0.4 + op b 0.1.
        assert result.node_utilization[0] == pytest.approx(0.5, abs=0.02)
        assert result.node_utilization[1] == pytest.approx(0.5, abs=0.02)

    def test_colocated_pays_no_transfer(self):
        together = self.make_plan(colocate=True)
        result = Simulator(
            together, step_seconds=0.1, transfer_costs=0.004
        ).run(rates=[100.0], duration=10.0)
        assert result.node_utilization[0] == pytest.approx(0.2, abs=0.02)

    def test_per_stream_transfer_costs(self):
        split = self.make_plan(colocate=False)
        result = Simulator(
            split, step_seconds=0.1, transfer_costs={"a.out": 0.002}
        ).run(rates=[100.0], duration=10.0)
        assert result.node_utilization[0] == pytest.approx(0.3, abs=0.02)


class TestJoins:
    def test_join_load_tracks_quadratic_model(self, join_model):
        from repro.core.rod import rod_place

        plan = rod_place(join_model, [1.0, 1.0])
        rates = [60.0, 60.0]
        result = Simulator(plan, step_seconds=0.01).run(
            rates=rates, duration=20.0
        )
        point = join_model.variable_point(rates)
        predicted = plan.feasible_set().utilizations(point).max()
        assert result.max_utilization == pytest.approx(predicted, rel=0.15)

    def test_step_coarser_than_half_window_rejected(self, join_model):
        from repro.core.rod import rod_place

        plan = rod_place(join_model, [1.0, 1.0])
        with pytest.raises(ValueError, match="half-window"):
            Simulator(plan, step_seconds=0.06)  # window is 0.1


class TestInputValidation:
    def test_series_or_constant_but_not_both(self):
        plan = single_op_plan()
        sim = Simulator(plan)
        with pytest.raises(ValueError, match="not both"):
            sim.run(rate_series=np.ones((10, 1)), rates=[1.0], duration=1.0)
        with pytest.raises(ValueError, match="rate_series"):
            sim.run()
        with pytest.raises(ValueError, match="duration"):
            sim.run(rates=[1.0], duration=0.0)

    def test_series_shape_checked(self):
        plan = single_op_plan()
        with pytest.raises(ValueError, match="shape"):
            Simulator(plan).run(rate_series=np.ones((10, 3)))

    def test_rates_shape_checked(self):
        plan = single_op_plan()
        with pytest.raises(ValueError, match="expected 1 rates"):
            Simulator(plan).run(rates=[1.0, 2.0], duration=1.0)

    def test_step_seconds_positive(self):
        with pytest.raises(ValueError, match="step_seconds"):
            Simulator(single_op_plan(), step_seconds=0.0)

    def test_work_timeline_sums_to_node_busy(self):
        plan = single_op_plan(cost=0.005)
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[60.0], duration=10.0
        )
        assert result.work_timeline.shape == (100, 1)
        assert result.work_timeline.sum() == pytest.approx(
            result.node_busy.sum()
        )

    def test_utilization_timeline_tracks_burst(self):
        plan = single_op_plan(cost=0.005)
        series = np.full((100, 1), 40.0)
        series[50:60] = 120.0
        result = Simulator(plan, step_seconds=0.1).run(rate_series=series)
        utilization = result.utilization_timeline(
            plan.capacities, 0.1
        )[:, 0]
        assert utilization[55] > utilization[20] * 2

    def test_poisson_arrivals_supported(self):
        plan = single_op_plan()
        result = Simulator(
            plan, step_seconds=0.1, arrival_kind="poisson", seed=1
        ).run(rates=[100.0], duration=20.0)
        assert result.tuples_in == pytest.approx(2000, rel=0.1)
