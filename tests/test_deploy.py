"""Tests for the high-level Deployment facade."""

import numpy as np
import pytest

from repro.deploy import Deployment
from repro.graphs import (
    Delay,
    QueryGraph,
    graph_from_dict,
    graph_to_dict,
    join_graph,
    monitoring_graph,
)


@pytest.fixture
def graph():
    return monitoring_graph(num_links=2, seed=3)


class TestPlan:
    def test_default_rod(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        assert 0.0 < deployment.volume_ratio(samples=1024) <= 1.0
        assert "monitoring" in repr(deployment)

    @pytest.mark.parametrize(
        "strategy", ["llf", "connected", "correlation", "random", "milp"]
    )
    def test_baseline_strategies(self, graph, strategy):
        deployment = Deployment.plan(
            graph, [1.0, 1.0], strategy=strategy, seed=1
        )
        assert deployment.placement.num_nodes == 2

    def test_unknown_strategy(self, graph):
        with pytest.raises(ValueError, match="strategy"):
            Deployment.plan(graph, [1.0, 1.0], strategy="magic")

    def test_nonlinear_graph_linearized_automatically(self):
        graph = join_graph(1, downstream_per_join=2, window=0.2, seed=2)
        deployment = Deployment.plan(graph, [1.0, 1.0])
        assert deployment.model.is_linearized

    def test_transfer_costs_trigger_clustering(self, graph):
        plain = Deployment.plan(graph, [1.0, 1.0])
        clustered = Deployment.plan(graph, [1.0, 1.0], transfer_costs=3e-4)
        # Clustering never increases crossings vs the plain ROD plan.
        assert (
            clustered.placement.inter_node_arcs()
            <= plain.placement.inter_node_arcs()
        )

    def test_cluster_flag_validation(self, graph):
        with pytest.raises(ValueError, match="zero"):
            Deployment.plan(graph, [1.0, 1.0], cluster=True)
        with pytest.raises(ValueError, match="ROD"):
            Deployment.plan(
                graph, [1.0, 1.0], strategy="llf",
                transfer_costs=1e-4,
            )

    def test_lower_bound_only_with_rod(self, graph):
        floor = np.zeros(2)
        with pytest.raises(ValueError, match="ROD"):
            Deployment.plan(
                graph, [1.0, 1.0], strategy="llf", lower_bound=floor
            )

    def test_comm_aware_ratio_below_plain(self, graph):
        plain = Deployment.plan(graph, [1.0, 1.0])
        costly = Deployment.plan(
            graph, [1.0, 1.0], transfer_costs=5e-4, cluster=False
        )
        assert costly.volume_ratio(samples=1024) <= (
            plain.volume_ratio(samples=1024) + 1e-9
        )


class TestGrow:
    def test_grow_pins_existing(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        grown_graph = graph_from_dict(graph_to_dict(graph))
        stream = grown_graph.add_input("link_new")
        grown_graph.add_operator(
            Delay("new_filter", cost=2e-4, selectivity=0.5), [stream]
        )
        grown = deployment.grow(grown_graph)
        for name in deployment.model.operator_names:
            assert grown.placement.node_of(name) == (
                deployment.placement.node_of(name)
            )
        assert "new_filter" in grown.model.operator_names


class TestExecution:
    def test_simulate(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        result = deployment.simulate(rates=[50.0, 50.0], duration=5.0)
        assert result.tuples_in > 0

    def test_probe(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        assert deployment.probe([20.0, 20.0], duration=4.0)
        assert not deployment.probe([1e6, 1e6], duration=4.0)

    def test_summary_mentions_key_sections(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        text = deployment.summary()
        assert "plane distance" in text
        assert "headroom" in text
        assert "feasible-set ratio" in text
