"""Unit tests for the ROD algorithm (Section 5, Figure 10)."""

import itertools

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping
from repro.core.rod import CLASS_ONE_POLICIES, RodStep, rod_order, rod_place
from repro.graphs import Delay, QueryGraph, random_tree_graph
from repro.graphs.generator import RandomGraphConfig


class TestOrdering:
    def test_sorts_by_norm_descending(self, example_model):
        # Norms are (4, 6, 9, 2) -> order o3, o2, o1, o4.
        order = rod_order(example_model)
        names = [example_model.operator_names[j] for j in order]
        assert names == ["o3", "o2", "o1", "o4"]

    def test_ties_broken_by_index(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("a", cost=1.0, selectivity=1.0), [i])
        g.add_operator(Delay("b", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        assert rod_order(model) == [0, 1]


class TestAssignment:
    def test_balances_each_stream_across_nodes(self, example_model,
                                               two_nodes):
        """Each chain's operators split across the two nodes (MMAD)."""
        plan = rod_place(example_model, two_nodes)
        assert plan.node_of("o1") != plan.node_of("o2")
        assert plan.node_of("o3") != plan.node_of("o4")

    def test_matches_exhaustive_optimum_on_example(self, example_model,
                                                   two_nodes):
        best = max(
            placement_from_mapping(
                example_model,
                two_nodes,
                dict(zip(example_model.operator_names, assignment)),
            ).feasible_set().exact_volume()
            for assignment in itertools.product((0, 1), repeat=4)
        )
        rod_volume = rod_place(
            example_model, two_nodes
        ).feasible_set().exact_volume()
        assert rod_volume == pytest.approx(best, rel=1e-9)

    def test_deterministic(self, small_tree_model, four_nodes):
        a = rod_place(small_tree_model, four_nodes)
        b = rod_place(small_tree_model, four_nodes)
        assert a.assignment == b.assignment

    def test_every_operator_assigned(self, small_tree_model, four_nodes):
        plan = rod_place(small_tree_model, four_nodes)
        assert len(plan.assignment) == small_tree_model.num_operators
        assert all(0 <= n < 4 for n in plan.assignment)

    def test_single_node_trivial(self, example_model):
        plan = rod_place(example_model, [1.0])
        assert set(plan.assignment) == {0}

    def test_heterogeneous_capacity_proportionality(self):
        """A node with 3x capacity should carry about 3x the load."""
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=40)
        model = build_load_model(random_tree_graph(config, seed=9))
        caps = [3.0, 1.0]
        plan = rod_place(model, caps)
        ln = plan.node_coefficients()
        loads = ln.sum(axis=1)
        assert loads[0] / loads[1] == pytest.approx(3.0, rel=0.25)

    def test_trace_records_every_step(self, example_model, two_nodes):
        steps = []
        rod_place(example_model, two_nodes, steps=steps)
        assert len(steps) == 4
        assert all(isinstance(s, RodStep) for s in steps)
        assert steps[0].operator == "o3"  # largest norm first

    def test_first_assignment_is_class_one_when_shares_small(self,
                                                             two_nodes):
        """With every operator under half a stream's load, empty nodes'
        candidate hyperplanes stay above the ideal one (Class I)."""
        g = QueryGraph()
        i = g.add_input("I")
        for k in range(8):
            g.add_operator(Delay(f"d{k}", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        steps = []
        rod_place(model, two_nodes, steps=steps)
        assert steps[0].chosen_from_class_one
        assert steps[0].class_one == (0, 1)

    def test_class_two_when_one_operator_dominates(self, two_nodes):
        """An operator holding a whole stream can never be Class I on
        multiple nodes: some node must end up past the ideal hyperplane."""
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("big", cost=10.0, selectivity=1.0), [i])
        g.add_operator(Delay("small", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        steps = []
        rod_place(model, two_nodes, steps=steps)
        big_step = steps[0]
        assert big_step.operator == "big"
        assert not big_step.chosen_from_class_one


class TestClassOnePolicies:
    @pytest.mark.parametrize("policy", CLASS_ONE_POLICIES)
    def test_all_policies_produce_valid_plans(self, small_tree_model,
                                              four_nodes, policy):
        plan = rod_place(
            small_tree_model, four_nodes, class_one_policy=policy, seed=3
        )
        assert len(plan.assignment) == small_tree_model.num_operators

    def test_unknown_policy_rejected(self, example_model, two_nodes):
        with pytest.raises(ValueError, match="policy"):
            rod_place(example_model, two_nodes, class_one_policy="bogus")

    def test_connections_policy_reduces_crossings(self, four_nodes):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=30)
        model = build_load_model(random_tree_graph(config, seed=17))
        plane = rod_place(model, four_nodes, class_one_policy="plane")
        conn = rod_place(model, four_nodes, class_one_policy="connections")
        assert conn.inter_node_arcs() <= plane.inter_node_arcs()

    def test_random_policy_respects_seed(self, small_tree_model, four_nodes):
        a = rod_place(small_tree_model, four_nodes,
                      class_one_policy="random", seed=5)
        b = rod_place(small_tree_model, four_nodes,
                      class_one_policy="random", seed=5)
        assert a.assignment == b.assignment


class TestExplicitOrder:
    def test_order_must_be_permutation(self, example_model, two_nodes):
        with pytest.raises(ValueError, match="permutation"):
            rod_place(example_model, two_nodes, order=[0, 0, 1, 2])
        with pytest.raises(ValueError, match="permutation"):
            rod_place(example_model, two_nodes, order=[0, 1])

    def test_norm_order_not_worse_than_reverse(self, four_nodes):
        config = RandomGraphConfig(num_inputs=3, operators_per_tree=12)
        model = build_load_model(random_tree_graph(config, seed=23))
        sorted_plan = rod_place(model, four_nodes)
        reverse = list(reversed(rod_order(model)))
        reverse_plan = rod_place(model, four_nodes, order=reverse)
        assert (
            sorted_plan.volume_ratio(samples=2048)
            >= reverse_plan.volume_ratio(samples=2048) - 0.02
        )


class TestLowerBoundVariant:
    def test_zero_floor_matches_plain(self, small_tree_model, four_nodes):
        plain = rod_place(small_tree_model, four_nodes)
        floored = rod_place(
            small_tree_model,
            four_nodes,
            lower_bound=np.zeros(small_tree_model.num_variables),
        )
        assert plain.assignment == floored.assignment

    def test_lower_bound_carried_to_placement(self, small_tree_model,
                                              four_nodes):
        floor = np.zeros(small_tree_model.num_variables)
        floor[0] = 0.1
        plan = rod_place(small_tree_model, four_nodes, lower_bound=floor)
        assert plan.lower_bound is not None
        assert plan.feasible_set().lower_bound is not None


class TestAgainstBaselines:
    def test_rod_beats_every_baseline_on_random_graphs(self, four_nodes):
        """The headline claim, on a handful of random workloads."""
        from repro.experiments.common import make_placer

        for seed in (101, 202, 303):
            config = RandomGraphConfig(num_inputs=3, operators_per_tree=15)
            model = build_load_model(random_tree_graph(config, seed=seed))
            rod_ratio = rod_place(model, four_nodes).volume_ratio(samples=2048)
            for name in ("llf", "random", "connected"):
                other = make_placer(name, model, run_seed=seed).place(
                    model, four_nodes
                )
                assert rod_ratio >= other.volume_ratio(samples=2048) - 0.02
