"""Unit tests for the operator model."""

import math

import pytest

from repro.graphs import (
    Aggregate,
    Delay,
    Filter,
    LinearOperator,
    Map,
    Union,
    VariableSelectivityOp,
    WindowJoin,
)


class TestLinearOperator:
    def test_load_is_cost_times_rate(self):
        op = LinearOperator("o", costs=(3.0,), selectivities=(0.5,))
        assert op.load([10.0]) == pytest.approx(30.0)

    def test_output_rate_applies_selectivity(self):
        op = LinearOperator("o", costs=(3.0,), selectivities=(0.5,))
        assert op.output_rate([10.0]) == pytest.approx(5.0)

    def test_multi_port_load_sums_ports(self):
        op = LinearOperator("o", costs=(1.0, 2.0), selectivities=(1.0, 1.0))
        assert op.load([10.0, 5.0]) == pytest.approx(20.0)
        assert op.output_rate([10.0, 5.0]) == pytest.approx(15.0)

    def test_arity_matches_costs(self):
        assert LinearOperator("o", costs=(1.0, 1.0, 1.0),
                              selectivities=(1.0, 1.0, 1.0)).arity == 3

    def test_is_linear(self):
        assert LinearOperator("o").is_linear

    def test_rejects_mismatched_selectivities(self):
        with pytest.raises(ValueError, match="selectivities"):
            LinearOperator("o", costs=(1.0, 2.0), selectivities=(1.0,))

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="cost"):
            LinearOperator("o", costs=(-1.0,), selectivities=(1.0,))

    def test_rejects_nan_cost(self):
        with pytest.raises(ValueError, match="cost"):
            LinearOperator("o", costs=(math.nan,), selectivities=(1.0,))

    def test_rejects_negative_selectivity(self):
        with pytest.raises(ValueError, match="selectivity"):
            LinearOperator("o", costs=(1.0,), selectivities=(-0.5,))

    def test_rejects_wrong_rate_count(self):
        op = LinearOperator("o", costs=(1.0,), selectivities=(1.0,))
        with pytest.raises(ValueError, match="input rates"):
            op.load([1.0, 2.0])

    def test_rejects_negative_rate(self):
        op = LinearOperator("o", costs=(1.0,), selectivities=(1.0,))
        with pytest.raises(ValueError, match="rate"):
            op.load([-1.0])

    def test_zero_input_operator_rejected(self):
        with pytest.raises(ValueError, match="at least one input"):
            LinearOperator("o", costs=(), selectivities=())


class TestConvenienceOperators:
    def test_map_has_unit_selectivity(self):
        op = Map("m", cost=2.0)
        assert op.output_rate([7.0]) == pytest.approx(7.0)
        assert op.load([7.0]) == pytest.approx(14.0)

    def test_filter_caps_selectivity_at_one(self):
        with pytest.raises(ValueError, match="<= 1"):
            Filter("f", cost=1.0, selectivity=1.5)

    def test_filter_passes_fraction(self):
        assert Filter("f", cost=1.0, selectivity=0.25).output_rate([8.0]) == 2.0

    def test_union_sums_inputs(self):
        op = Union("u", costs=[1.0, 1.0, 1.0])
        assert op.output_rate([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_union_needs_two_inputs(self):
        with pytest.raises(ValueError, match="two inputs"):
            Union("u", costs=[1.0])

    def test_aggregate_compresses(self):
        op = Aggregate("a", cost=1.0, selectivity=0.1)
        assert op.output_rate([100.0]) == pytest.approx(10.0)

    def test_delay_matches_paper_parameters(self):
        op = Delay("d", cost=4.0, selectivity=1.0)
        assert op.load([3.0]) == pytest.approx(12.0)


class TestVariableSelectivityOp:
    def test_not_linear(self):
        assert not VariableSelectivityOp("v", cost=1.0).is_linear

    def test_load_still_linear_in_input(self):
        op = VariableSelectivityOp("v", cost=2.0, nominal_selectivity=0.5)
        assert op.load_is_linear_in_inputs
        assert op.load([4.0]) == pytest.approx(8.0)

    def test_output_uses_nominal_selectivity(self):
        op = VariableSelectivityOp("v", cost=2.0, nominal_selectivity=0.5)
        assert op.output_rate([4.0]) == pytest.approx(2.0)

    def test_cost_of_port(self):
        assert VariableSelectivityOp("v", cost=2.0).cost_of_port(0) == 2.0
        with pytest.raises(IndexError):
            VariableSelectivityOp("v", cost=2.0).cost_of_port(1)


class TestWindowJoin:
    def test_pairs_per_unit_time(self):
        op = WindowJoin("j", cost_per_pair=1.0, selectivity=0.5, window=2.0)
        assert op.pairs_per_unit_time([3.0, 4.0]) == pytest.approx(24.0)

    def test_load_is_quadratic(self):
        op = WindowJoin("j", cost_per_pair=0.5, selectivity=0.5, window=1.0)
        assert op.load([2.0, 2.0]) == pytest.approx(2.0)
        assert op.load([4.0, 4.0]) == pytest.approx(8.0)  # 4x, not 2x

    def test_output_rate(self):
        op = WindowJoin("j", cost_per_pair=1.0, selectivity=0.25, window=1.0)
        assert op.output_rate([2.0, 4.0]) == pytest.approx(2.0)

    def test_load_per_output_tuple_is_c_over_s(self):
        op = WindowJoin("j", cost_per_pair=2.0, selectivity=0.5, window=1.0)
        assert op.load_per_output_tuple == pytest.approx(4.0)

    def test_not_linear(self):
        assert not WindowJoin("j").is_linear
        assert not WindowJoin("j").load_is_linear_in_inputs

    def test_no_constant_per_tuple_cost(self):
        with pytest.raises(TypeError, match="linearize"):
            WindowJoin("j").cost_of_port(0)

    def test_rejects_zero_selectivity(self):
        with pytest.raises(ValueError, match="selectivity"):
            WindowJoin("j", selectivity=0.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window"):
            WindowJoin("j", window=0.0)

    def test_arity_is_two(self):
        assert WindowJoin("j").arity == 2
        with pytest.raises(ValueError):
            WindowJoin("j").load([1.0])
