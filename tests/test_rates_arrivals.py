"""Unit tests for rate-point samplers and arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    ArrivalProcess,
    deterministic_arrivals,
    poisson_arrivals,
)
from repro.workload.rates import (
    ideal_rate_points,
    rate_series,
    scale_point_to_utilization,
)


class TestIdealRatePoints:
    def test_points_inside_ideal_set(self, example_model, two_nodes):
        pts = ideal_rate_points(example_model, two_nodes, 200, seed=1)
        totals = example_model.column_totals()
        demand = pts @ totals
        assert np.all(demand <= two_nodes.sum() + 1e-9)
        assert np.all(pts >= 0)

    def test_shape(self, example_model, two_nodes):
        assert ideal_rate_points(example_model, two_nodes, 7).shape == (7, 2)

    def test_qmc_method(self, example_model, two_nodes):
        pts = ideal_rate_points(
            example_model, two_nodes, 64, method="halton"
        )
        assert pts.shape == (64, 2)


class TestScaleToUtilization:
    def test_total_demand_hits_target(self, example_model, two_nodes):
        point = scale_point_to_utilization(
            example_model, two_nodes, [1.0, 1.0], 0.6
        )
        demand = float(example_model.column_totals() @ point)
        assert demand == pytest.approx(0.6 * two_nodes.sum())

    def test_direction_preserved(self, example_model, two_nodes):
        point = scale_point_to_utilization(
            example_model, two_nodes, [2.0, 1.0], 0.5
        )
        assert point[0] / point[1] == pytest.approx(2.0)

    def test_validation(self, example_model, two_nodes):
        with pytest.raises(ValueError):
            scale_point_to_utilization(example_model, two_nodes, [0, 0], 0.5)
        with pytest.raises(ValueError):
            scale_point_to_utilization(example_model, two_nodes, [1, 1], 0.0)
        with pytest.raises(ValueError):
            scale_point_to_utilization(example_model, two_nodes, [-1, 1], 0.5)


class TestRateSeries:
    def test_shape_and_means(self):
        series = rate_series(3, 1024, mean_rates=[10.0, 20.0, 30.0], seed=1)
        assert series.shape == (1024, 3)
        assert np.allclose(series.mean(axis=0), [10.0, 20.0, 30.0])

    def test_kinds_cycle(self):
        series = rate_series(4, 128, seed=2)
        assert series.shape == (4 * 0 + 128, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_series(0, 10)
        with pytest.raises(ValueError):
            rate_series(2, 0)
        with pytest.raises(ValueError):
            rate_series(2, 10, mean_rates=[1.0])
        with pytest.raises(ValueError):
            rate_series(2, 10, mean_rates=[1.0, 0.0])
        with pytest.raises(ValueError):
            rate_series(2, 10, kinds=["pkt"])


class TestDeterministicArrivals:
    def test_conserves_volume(self):
        rates = [10.0, 0.0, 3.7, 3.7, 3.7]
        counts = deterministic_arrivals(rates, 1.0)
        assert counts.sum() == int(sum(rates))

    def test_fractional_carry(self):
        counts = deterministic_arrivals([0.5] * 10, 1.0)
        assert counts.sum() == 5
        assert counts.max() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            deterministic_arrivals([1.0], 0.0)
        with pytest.raises(ValueError):
            deterministic_arrivals([-1.0], 1.0)


class TestPoissonArrivals:
    def test_mean_matches_rate(self):
        counts = poisson_arrivals([100.0] * 2000, 0.1, seed=3)
        assert counts.mean() == pytest.approx(10.0, rel=0.05)

    def test_deterministic_with_seed(self):
        a = poisson_arrivals([5.0] * 50, 1.0, seed=4)
        b = poisson_arrivals([5.0] * 50, 1.0, seed=4)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals([1.0], -1.0)


class TestArrivalProcess:
    def test_steps_skip_empty(self):
        process = ArrivalProcess([2.0, 0.0, 1.0], 1.0, kind="deterministic")
        steps = list(process.steps())
        assert steps == [(0.0, 2), (2.0, 1)]

    def test_num_steps(self):
        assert ArrivalProcess([1.0] * 7, 0.5).num_steps == 7

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ArrivalProcess([1.0], 1.0, kind="burst")
