"""Unit tests for operator clustering (Section 6.3)."""

import numpy as np
import pytest

from repro import build_load_model
from repro.core.clustering import (
    ClusteredModel,
    Clustering,
    cluster_operators,
    communication_feasible_set,
    search_clusterings,
)
from repro.core.rod import rod_place
from repro.graphs import Delay, Map, QueryGraph


@pytest.fixture
def chain_model():
    """I -> a -> b -> c, equal unit costs."""
    g = QueryGraph("chain")
    s = g.add_input("I")
    for name in "abc":
        s = g.add_operator(Delay(name, cost=1.0, selectivity=1.0), [s])
    return build_load_model(g)


class TestClusterOperators:
    def test_zero_transfer_cost_never_merges(self, chain_model):
        clustering = cluster_operators(chain_model, 0.0, threshold=0.1)
        assert clustering.num_clusters == 3

    def test_expensive_arcs_merge(self, chain_model):
        # Transfer 2x the processing cost, threshold 1: merge everything
        # the weight cap allows.
        clustering = cluster_operators(
            chain_model, 2.0, threshold=1.0, max_weight=1.0
        )
        assert clustering.num_clusters < 3

    def test_threshold_blocks_cheap_arcs(self, chain_model):
        clustering = cluster_operators(
            chain_model, 0.5, threshold=1.0, max_weight=1.0
        )
        # Ratio = 0.5 / 1.0 < threshold: nothing merges.
        assert clustering.num_clusters == 3

    def test_weight_cap_blocks_merges(self, chain_model):
        # Each operator holds 1/3 of the stream's load; cap below 2/3
        # forbids any pairwise merge.
        clustering = cluster_operators(
            chain_model, 10.0, threshold=0.1, max_weight=0.5
        )
        assert clustering.num_clusters == 3

    def test_clusters_partition_operators(self, monitoring_model):
        clustering = cluster_operators(
            monitoring_model, 1e-4, threshold=0.5, max_weight=0.6
        )
        clustering.validate(monitoring_model)
        members = sorted(
            name for group in clustering.groups for name in group
        )
        assert members == sorted(monitoring_model.operator_names)

    def test_approaches_accepted(self, chain_model):
        for approach in ("ratio", "weight"):
            cluster_operators(
                chain_model, 2.0, threshold=1.0, max_weight=1.0,
                approach=approach,
            )
        with pytest.raises(ValueError, match="approach"):
            cluster_operators(chain_model, 2.0, approach="magic")

    def test_per_stream_transfer_costs(self, chain_model):
        costs = {"a.out": 5.0}  # only a->b is expensive
        clustering = cluster_operators(
            chain_model, costs, threshold=1.0, max_weight=0.7
        )
        merged = next(g for g in clustering.groups if len(g) > 1)
        assert set(merged) == {"a", "b"}

    def test_negative_transfer_cost_rejected(self, chain_model):
        with pytest.raises(ValueError, match="transfer cost"):
            cluster_operators(chain_model, -1.0)

    def test_invalid_clustering_rejected(self, chain_model):
        bad = Clustering(groups=(("a",), ("b",)))  # missing c
        with pytest.raises(ValueError, match="partition"):
            bad.validate(chain_model)


class TestClusteredModel:
    def test_rows_are_summed_members(self, chain_model):
        clustering = Clustering(groups=(("a", "b"), ("c",)))
        clustered = ClusteredModel(chain_model, clustering)
        assert clustered.num_operators == 2
        assert np.allclose(clustered.coefficients[0], [2.0])
        assert np.allclose(clustered.coefficients[1], [1.0])

    def test_totals_unchanged(self, chain_model):
        clustering = Clustering(groups=(("a", "b"), ("c",)))
        clustered = ClusteredModel(chain_model, clustering)
        assert np.allclose(
            clustered.column_totals(), chain_model.column_totals()
        )

    def test_expand_keeps_members_together(self, chain_model):
        clustering = Clustering(groups=(("a", "b"), ("c",)))
        clustered = ClusteredModel(chain_model, clustering)
        plan = clustered.expand(rod_place(clustered, [1.0, 1.0]))
        assert plan.node_of("a") == plan.node_of("b")
        assert plan.model is chain_model

    def test_cluster_graph_adjacency(self, chain_model):
        clustering = Clustering(groups=(("a", "b"), ("c",)))
        clustered = ClusteredModel(chain_model, clustering)
        assert clustered.graph.downstream_operators("a+b") == ("c",)
        assert clustered.graph.upstream_operators("c") == ("a+b",)

    def test_rod_with_connections_policy_on_clusters(self, chain_model):
        clustering = Clustering(groups=(("a",), ("b",), ("c",)))
        clustered = ClusteredModel(chain_model, clustering)
        plan = rod_place(
            clustered, [1.0, 1.0], class_one_policy="connections"
        )
        assert len(plan.assignment) == 3


class TestCommunicationFeasibleSet:
    def test_no_cost_matches_plain(self, chain_model):
        plan = rod_place(chain_model, [1.0, 1.0])
        plain = plan.feasible_set()
        comm = communication_feasible_set(plan, 0.0)
        assert np.allclose(
            comm.node_coefficients, plain.node_coefficients
        )

    def test_crossing_arcs_charge_both_nodes(self, chain_model):
        from repro import placement_from_mapping

        plan = placement_from_mapping(
            chain_model, [1.0, 1.0], {"a": 0, "b": 1, "c": 1}
        )
        comm = communication_feasible_set(plan, 0.5)
        plain = plan.node_coefficients()
        delta = comm.node_coefficients - plain
        # One crossing arc (a->b) with unit stream rate: +0.5 on each node.
        assert np.allclose(delta, [[0.5], [0.5]])

    def test_colocated_plan_pays_nothing(self, chain_model):
        from repro import placement_from_mapping

        plan = placement_from_mapping(
            chain_model, [1.0, 1.0], {"a": 0, "b": 0, "c": 0}
        )
        comm = communication_feasible_set(plan, 5.0)
        assert np.allclose(
            comm.node_coefficients, plan.node_coefficients()
        )


class TestSearch:
    def test_search_returns_best_comm_distance(self, monitoring_model):
        result = search_clusterings(
            monitoring_model,
            [1.0, 1.0, 1.0],
            transfer_costs=3e-4,
            thresholds=(0.5, 1.0),
            weight_cap_multipliers=(1.0, 2.0),
        )
        assert result.comm_plane_distance > 0
        assert result.clustering.num_clusters <= monitoring_model.num_operators

    def test_clustered_not_worse_than_plain_under_comm_cost(
        self, monitoring_model
    ):
        caps = [1.0, 1.0, 1.0]
        transfer = 4e-4
        plain = rod_place(monitoring_model, caps)
        plain_distance = communication_feasible_set(
            plain, transfer
        ).plane_distance()
        result = search_clusterings(monitoring_model, caps, transfer)
        assert result.comm_plane_distance >= plain_distance - 1e-9
