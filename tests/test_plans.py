"""Unit tests for Placement (the allocation matrix A)."""

import json

import numpy as np
import pytest

from repro import placement_from_mapping
from repro.core.plans import Placement


@pytest.fixture
def plan(example_model, two_nodes):
    return placement_from_mapping(
        example_model, two_nodes, {"o1": 0, "o2": 1, "o3": 1, "o4": 0}
    )


class TestConstruction:
    def test_assignment_length_checked(self, example_model, two_nodes):
        with pytest.raises(ValueError, match="covers"):
            Placement(example_model, two_nodes, (0, 1))

    def test_node_range_checked(self, example_model, two_nodes):
        with pytest.raises(ValueError, match="node 7"):
            Placement(example_model, two_nodes, (0, 1, 7, 0))

    def test_mapping_must_cover_all_operators(self, example_model, two_nodes):
        with pytest.raises(ValueError, match="missing"):
            placement_from_mapping(example_model, two_nodes, {"o1": 0})

    def test_mapping_rejects_unknown_operators(self, example_model,
                                               two_nodes):
        mapping = {"o1": 0, "o2": 0, "o3": 0, "o4": 0, "ghost": 1}
        with pytest.raises(ValueError, match="unknown"):
            placement_from_mapping(example_model, two_nodes, mapping)

    def test_capacities_validated(self, example_model):
        with pytest.raises(ValueError):
            Placement(example_model, np.array([0.0, 1.0]), (0, 0, 0, 0))


class TestStructure:
    def test_node_of(self, plan):
        assert plan.node_of("o1") == 0
        assert plan.node_of("o3") == 1

    def test_operators_on(self, plan):
        assert plan.operators_on(0) == ("o1", "o4")
        assert plan.operators_on(1) == ("o2", "o3")
        with pytest.raises(IndexError):
            plan.operators_on(5)

    def test_operator_counts(self, plan):
        assert np.array_equal(plan.operator_counts(), [2, 2])

    def test_allocation_matrix(self, plan):
        a = plan.allocation_matrix()
        assert a.shape == (2, 4)
        assert np.array_equal(a.sum(axis=0), np.ones(4))
        assert a[0, 0] == 1.0 and a[1, 1] == 1.0

    def test_node_coefficients_equal_A_times_Lo(self, plan):
        expected = plan.allocation_matrix() @ plan.model.coefficients
        assert np.allclose(plan.node_coefficients(), expected)

    def test_node_coefficients_values(self, plan):
        # node 0: o1 + o4 = (4, 2); node 1: o2 + o3 = (6, 9).
        assert np.allclose(plan.node_coefficients(), [[4.0, 2.0], [6.0, 9.0]])

    def test_inter_node_arcs(self, plan):
        # o1->o2 crosses, o3->o4 crosses.
        assert plan.inter_node_arcs() == 2

    def test_colocated_chains_have_no_crossings(self, example_model,
                                                two_nodes):
        plan = placement_from_mapping(
            example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
        )
        assert plan.inter_node_arcs() == 0


class TestSerialization:
    def test_mapping_roundtrip(self, plan, example_model, two_nodes):
        rebuilt = placement_from_mapping(
            example_model, two_nodes, plan.to_mapping()
        )
        assert rebuilt.assignment == plan.assignment

    def test_json_is_valid(self, plan):
        doc = json.loads(plan.to_json())
        assert doc["assignment"] == {"o1": 0, "o2": 1, "o3": 1, "o4": 0}
        assert doc["capacities"] == [1.0, 1.0]

    def test_describe_mentions_nodes_and_distance(self, plan):
        text = plan.describe()
        assert "node 0" in text
        assert "plane distance" in text


class TestMetrics:
    def test_volume_ratio_in_unit_interval(self, plan):
        assert 0.0 < plan.volume_ratio(samples=1024) <= 1.0

    def test_plane_distance_positive(self, plan):
        assert plan.plane_distance() > 0.0

    def test_weights_shape(self, plan):
        assert plan.weights().shape == (2, 2)
