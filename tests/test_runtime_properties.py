"""Property-based tests on the functional runtime."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    FnAggregate,
    FnFilter,
    FnMap,
    FnWindowJoin,
    Interpreter,
    Record,
    StreamProgram,
)

times = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=60
).map(sorted)


def make_records(time_list, values=None):
    return [
        Record(t, {"v": (values[i] if values else i)})
        for i, t in enumerate(time_list)
    ]


class TestAggregateConservation:
    @given(times)
    @settings(max_examples=50, deadline=None)
    def test_counts_conserved_across_windows(self, time_list):
        """Every input record lands in exactly one emitted window."""
        op = FnAggregate("agg", window=7.0,
                         reducer=lambda rs: {"n": len(rs)})
        outs = []
        for record in make_records(time_list):
            outs.extend(op.accept(0, record))
        outs.extend(op.flush())
        assert sum(o["n"] for o in outs) == len(time_list)

    @given(times)
    @settings(max_examples=50, deadline=None)
    def test_window_emission_times_monotone(self, time_list):
        op = FnAggregate("agg", window=3.0,
                         reducer=lambda rs: {"n": len(rs)})
        outs = []
        for record in make_records(time_list):
            outs.extend(op.accept(0, record))
        outs.extend(op.flush())
        emitted = [o.time for o in outs]
        assert emitted == sorted(emitted)


class TestJoinProperties:
    @given(times, times)
    @settings(max_examples=40, deadline=None)
    def test_join_is_symmetric_in_match_count(self, left, right):
        """Swapping ports yields the same number of matches."""

        def run(a, b):
            op = FnWindowJoin(
                "j", window=5.0,
                left_key=lambda d: 0, right_key=lambda d: 0,
                merge=lambda l, r: {},
            )
            merged = sorted(
                [(t, 0) for t in a] + [(t, 1) for t in b]
            )
            total = 0
            for t, port in merged:
                total += len(op.accept(port, Record(t, {"v": 0})))
            return total

        assert run(left, right) == run(right, left)

    @given(times, times)
    @settings(max_examples=40, deadline=None)
    def test_matches_respect_half_window(self, left, right):
        window = 4.0
        op = FnWindowJoin(
            "j", window=window,
            left_key=lambda d: 0, right_key=lambda d: 0,
            merge=lambda l, r: {"lt": l["t"], "rt": r["t"]},
        )
        merged = sorted(
            [(t, 0) for t in left] + [(t, 1) for t in right]
        )
        outs = []
        for t, port in merged:
            outs.extend(op.accept(port, Record(t, {"v": 0, "t": t})))
        for o in outs:
            assert abs(o["lt"] - o["rt"]) <= window / 2.0 + 1e-9


class TestPipelineInvariants:
    @given(
        st.lists(st.integers(-100, 100), min_size=0, max_size=60),
        st.integers(-100, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_filter_map_equals_python(self, values, threshold):
        """The interpreter agrees with plain Python comprehension."""
        p = StreamProgram()
        src = p.add_input("src")
        kept = p.add(
            FnFilter("keep", lambda d: d["v"] > threshold), [src]
        )
        p.add(FnMap("neg", lambda d: {"v": -d["v"]}), [kept])
        records = [
            Record(i * 0.1, {"v": v}) for i, v in enumerate(values)
        ]
        result = Interpreter(p).run({"src": records})
        outs = [r["v"] for r in result.sink_records["neg.out"]]
        assert outs == [-v for v in values if v > threshold]

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_selectivity_counts_consistent(self, values):
        p = StreamProgram()
        src = p.add_input("src")
        p.add(FnFilter("even", lambda d: d["v"] % 2 == 0), [src])
        records = [
            Record(i * 0.1, {"v": v}) for i, v in enumerate(values)
        ]
        result = Interpreter(p).run({"src": records})
        expected = sum(1 for v in values if v % 2 == 0) / len(values)
        assert result.selectivities()["even"] == pytest.approx(expected)
