"""Unit tests for per-node scheduling policies."""

from dataclasses import dataclass

import pytest

from repro import build_load_model, placement_from_mapping
from repro.graphs import Delay, QueryGraph
from repro.simulator import Simulator
from repro.simulator.scheduling import POLICIES, SchedulerQueue, Stall


@dataclass(frozen=True)
class FakeBatch:
    operator: str
    count: int


class TestSchedulerQueue:
    def test_fifo_order(self):
        q = SchedulerQueue("fifo")
        q.push(FakeBatch("a", 1))
        q.push(FakeBatch("b", 1))
        q.push(FakeBatch("a", 2))
        assert [q.pop().operator for _ in range(3)] == ["a", "b", "a"]

    def test_round_robin_rotates(self):
        q = SchedulerQueue("round_robin")
        for _ in range(2):
            q.push(FakeBatch("a", 1))
            q.push(FakeBatch("b", 1))
        served = [q.pop().operator for _ in range(4)]
        assert served == ["a", "b", "a", "b"]

    def test_round_robin_fifo_within_operator(self):
        q = SchedulerQueue("round_robin")
        q.push(FakeBatch("a", 1))
        q.push(FakeBatch("a", 2))
        first, second = q.pop(), q.pop()
        assert (first.count, second.count) == (1, 2)

    def test_longest_queue_picks_biggest_backlog(self):
        q = SchedulerQueue("longest_queue")
        q.push(FakeBatch("small", 1))
        q.push(FakeBatch("big", 10))
        assert q.pop().operator == "big"
        assert q.pop().operator == "small"

    def test_stalls_served_first(self):
        q = SchedulerQueue("fifo")
        q.push(FakeBatch("a", 1))
        q.push_stall(0.5)
        entry = q.pop()
        assert isinstance(entry, Stall)
        assert entry.duration == 0.5
        assert q.pop().operator == "a"

    def test_len_and_empty(self):
        q = SchedulerQueue("round_robin")
        assert q.is_empty
        q.push(FakeBatch("a", 1))
        q.push_stall(0.1)
        assert len(q) == 2

    def test_queued_tuples(self):
        q = SchedulerQueue("longest_queue")
        q.push(FakeBatch("a", 3))
        q.push(FakeBatch("a", 2))
        q.push(FakeBatch("b", 1))
        assert q.queued_tuples("a") == 5
        assert q.queued_tuples() == 6

    def test_queued_tuples_fifo(self):
        q = SchedulerQueue("fifo")
        q.push(FakeBatch("a", 3))
        q.push(FakeBatch("b", 1))
        assert q.queued_tuples("a") == 3
        assert q.queued_tuples() == 4

    def test_take_operator(self):
        for policy in POLICIES:
            q = SchedulerQueue(policy)
            q.push(FakeBatch("a", 1))
            q.push(FakeBatch("b", 2))
            q.push(FakeBatch("a", 3))
            taken = q.take_operator("a")
            assert [b.count for b in taken] == [1, 3]
            assert len(q) == 1
            assert q.pop().operator == "b"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            SchedulerQueue("fifo").pop()

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SchedulerQueue("lottery")

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            SchedulerQueue("fifo").push_stall(-1.0)


class TestSchedulerQueueProperties:
    """Hypothesis: conservation and consistency under any push/pop mix."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    operations = st.lists(
        st.one_of(
            st.tuples(st.just("push"),
                      st.sampled_from("abc"),
                      st.integers(1, 5)),
            st.tuples(st.just("stall"), st.just(""),
                      st.integers(0, 3)),
            st.tuples(st.just("pop"), st.just(""), st.just(0)),
        ),
        max_size=40,
    )

    @given(st.sampled_from(POLICIES), operations)
    @settings(max_examples=60, deadline=None)
    def test_everything_pushed_is_popped_exactly_once(self, policy, ops):
        from repro.simulator.scheduling import Stall as StallEntry

        queue = SchedulerQueue(policy)
        pushed, popped, stalls_in, stalls_out = [], [], 0, 0
        for kind, operator, value in ops:
            if kind == "push":
                batch = FakeBatch(operator, value)
                queue.push(batch)
                pushed.append(batch)
            elif kind == "stall":
                queue.push_stall(float(value))
                stalls_in += 1
            elif not queue.is_empty:
                entry = queue.pop()
                if isinstance(entry, StallEntry):
                    stalls_out += 1
                else:
                    popped.append(entry)
        while not queue.is_empty:
            entry = queue.pop()
            if isinstance(entry, StallEntry):
                stalls_out += 1
            else:
                popped.append(entry)
        assert sorted(b.count for b in popped) == sorted(
            b.count for b in pushed
        )
        assert stalls_out == stalls_in

    @given(st.sampled_from(POLICIES),
           st.lists(st.tuples(st.sampled_from("ab"), st.integers(1, 5)),
                    max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_per_operator_order_is_fifo_under_every_policy(self, policy,
                                                           pushes):
        queue = SchedulerQueue(policy)
        expected = {"a": [], "b": []}
        for index, (operator, count) in enumerate(pushes):
            queue.push(FakeBatch(operator, count))
            expected[operator].append(count)
        seen = {"a": [], "b": []}
        while not queue.is_empty:
            batch = queue.pop()
            seen[batch.operator].append(batch.count)
        assert seen == expected


class TestEngineScheduling:
    def make_plan(self):
        """Two operators sharing one node: a heavy one and a light one."""
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("heavy", cost=0.009, selectivity=1.0), [i])
        g.add_operator(Delay("light", cost=0.001, selectivity=1.0), [i])
        model = build_load_model(g)
        return placement_from_mapping(model, [1.0], {"heavy": 0, "light": 0})

    @pytest.mark.parametrize("policy", POLICIES)
    def test_total_work_is_policy_independent(self, policy):
        plan = self.make_plan()
        result = Simulator(
            plan, step_seconds=0.1, scheduling=policy
        ).run(rates=[80.0], duration=10.0)
        assert result.tuples_out == 1600
        assert result.max_utilization == pytest.approx(0.8, abs=0.01)

    def test_round_robin_protects_light_operator(self):
        """Under pressure, RR keeps the light operator's latency below
        FIFO's, which makes it wait behind heavy batches."""
        plan = self.make_plan()
        fifo = Simulator(plan, step_seconds=0.1, scheduling="fifo").run(
            rates=[95.0], duration=20.0
        )
        rr = Simulator(
            plan, step_seconds=0.1, scheduling="round_robin"
        ).run(rates=[95.0], duration=20.0)
        assert (
            rr.sink_latency["light.out"].mean()
            <= fifo.sink_latency["light.out"].mean() + 1e-9
        )

    def test_unknown_policy_rejected_eagerly(self):
        with pytest.raises(ValueError, match="policy"):
            Simulator(self.make_plan(), scheduling="priority")
