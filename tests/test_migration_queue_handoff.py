"""Migration with queued work: the hand-off path in the engine."""

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping
from repro.dynamics import Migration, MigrationController
from repro.graphs import Delay, QueryGraph
from repro.simulator import Simulator


class ForcedMove(MigrationController):
    """Moves one named operator at the first poll, then stays quiet."""

    def __init__(self, operator: str, source: int, target: int,
                 period: float = 1.0, pause: float = 0.2) -> None:
        super().__init__(period)
        self.move = Migration(operator, source, target, pause)
        self.fired = False

    def decide(self, now, utilizations, assignment, model, capacities,
               operator_loads=None):
        if self.fired:
            return []
        self.fired = True
        return [self.move]


@pytest.fixture
def overloaded_plan():
    """One hot node: 'heavy' demands 1.5x a node alone."""
    g = QueryGraph()
    i = g.add_input("I")
    g.add_operator(Delay("heavy", cost=0.015, selectivity=1.0), [i])
    g.add_operator(Delay("light", cost=0.001, selectivity=1.0), [i])
    model = build_load_model(g)
    return placement_from_mapping(
        model, [1.0, 1.0], {"heavy": 0, "light": 0}
    )


class TestQueuedWorkFollowsOperator:
    def test_tuples_conserved_across_forced_move(self, overloaded_plan):
        controller = ForcedMove("heavy", source=0, target=1)
        result = Simulator(
            overloaded_plan, step_seconds=0.1, controller=controller
        ).run(rates=[100.0], duration=10.0)
        assert result.migration_count == 1
        # Every injected tuple is processed by both operators despite the
        # mid-run move of a backlogged operator.
        assert result.operator_stats["heavy"].tuples_in == result.tuples_in
        assert result.operator_stats["light"].tuples_in == result.tuples_in

    def test_move_relieves_the_hot_node(self, overloaded_plan):
        static = Simulator(overloaded_plan, step_seconds=0.1).run(
            rates=[100.0], duration=10.0
        )
        controller = ForcedMove("heavy", source=0, target=1)
        moved = Simulator(
            overloaded_plan, step_seconds=0.1, controller=controller
        ).run(rates=[100.0], duration=10.0)
        # Statically node 0 is overloaded (1.6x); after the early move
        # node 1 absorbs the heavy operator and the peak drops.
        assert static.max_utilization > 1.2
        assert moved.max_utilization < static.max_utilization

    def test_stale_move_ignored(self, overloaded_plan):
        """A decision naming the wrong source node must be dropped."""
        controller = ForcedMove("heavy", source=1, target=0)  # wrong source
        result = Simulator(
            overloaded_plan, step_seconds=0.1, controller=controller
        ).run(rates=[50.0], duration=5.0)
        assert result.migration_count == 0


class TestGeometryInfEdges:
    def test_point_distance_with_zero_norm_row(self):
        from repro.core import geometry

        weights = np.array([[0.0, 0.0], [1.0, 1.0]])
        distances = geometry.plane_distance_from_point(
            weights, np.array([0.2, 0.2])
        )
        assert np.isinf(distances[0])
        assert distances[1] == pytest.approx(0.6 / np.sqrt(2))

    def test_ideal_rate_points_zero_coefficient_variable(self):
        """A variable no operator consumes gets rate 0, not infinity."""
        from repro.core.load_model import build_load_model
        from repro.workload.rates import ideal_rate_points

        g = QueryGraph()
        g.add_input("used")
        g.add_input("unused")
        i = g.stream("used")
        g.add_operator(Delay("d", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        points = ideal_rate_points(model, [1.0], 16, seed=1)
        assert np.all(points[:, 1] == 0.0)
        assert np.all(np.isfinite(points))
