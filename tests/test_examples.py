"""Smoke-run every example script — examples must never rot.

Each script runs in a subprocess with the repo's interpreter; we assert
a zero exit code and that something was printed.  These are the slowest
unit tests in the suite (~1 minute total), which is the price of
guaranteeing the README's examples table stays true.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[s.stem for s in SCRIPTS]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example printed nothing"


def test_every_example_is_documented():
    readme = (EXAMPLES_DIR / "README.md").read_text()
    for script in SCRIPTS:
        assert script.name in readme, (
            f"{script.name} missing from examples/README.md"
        )
