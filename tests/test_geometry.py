"""Unit tests for the hyperplane geometry (Sections 3-4)."""

import math

import numpy as np
import pytest

from repro.core import geometry


class TestWeightMatrix:
    def test_ideal_plan_has_unit_weights(self):
        # Theorem 1: l*_ik = l_k C_i / C_T  ->  w_ik = 1 everywhere.
        totals = np.array([10.0, 11.0])
        caps = np.array([1.0, 3.0])
        ln = np.outer(caps / caps.sum(), totals)
        w = geometry.weight_matrix(ln, caps, totals)
        assert np.allclose(w, 1.0)

    def test_weights_scale_with_capacity_share(self):
        ln = np.array([[5.0], [5.0]])
        w = geometry.weight_matrix(ln, [1.0, 4.0], np.array([10.0]))
        # Node 0 holds half the load with 1/5 of the capacity.
        assert w[0, 0] == pytest.approx(2.5)
        assert w[1, 0] == pytest.approx(0.625)

    def test_column_sums_for_homogeneous_nodes(self):
        rng = np.random.default_rng(0)
        ln = rng.random((4, 3))
        w = geometry.weight_matrix(ln, [1.0] * 4)
        # sum_i w_ik = sum_i (l_ik/l_k) / (1/n) = n for every loaded column.
        assert np.allclose(w.sum(axis=0), 4.0)

    def test_zero_total_column_gets_zero_weight(self):
        ln = np.array([[1.0, 0.0], [1.0, 0.0]])
        w = geometry.weight_matrix(ln, [1.0, 1.0])
        assert np.all(w[:, 1] == 0.0)

    def test_explicit_totals_differ_from_column_sums(self):
        # Partial placements: totals come from the whole model.
        ln = np.array([[5.0]])
        w = geometry.weight_matrix(ln, [1.0], np.array([10.0]))
        assert w[0, 0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            geometry.weight_matrix(np.zeros(3), [1.0])
        with pytest.raises(ValueError, match="rows"):
            geometry.weight_matrix(np.zeros((2, 2)), [1.0])
        with pytest.raises(ValueError, match="totals"):
            geometry.weight_matrix(np.zeros((2, 2)), [1.0, 1.0],
                                   np.array([1.0]))


class TestDistances:
    def test_axis_distances_are_reciprocal_weights(self):
        w = np.array([[0.5, 2.0]])
        assert np.allclose(geometry.axis_distances(w), [[2.0, 0.5]])

    def test_axis_distance_infinite_for_zero_weight(self):
        w = np.array([[0.0, 1.0]])
        d = geometry.axis_distances(w)
        assert math.isinf(d[0, 0])

    def test_plane_distance_formula(self):
        w = np.array([[3.0, 4.0]])
        assert geometry.plane_distances(w)[0] == pytest.approx(0.2)

    def test_min_plane_distance(self):
        w = np.array([[1.0, 0.0], [3.0, 4.0]])
        assert geometry.min_plane_distance(w) == pytest.approx(0.2)

    def test_plane_distance_from_origin_equals_plane_distances(self):
        rng = np.random.default_rng(1)
        w = rng.random((3, 4)) + 0.1
        from_origin = geometry.plane_distance_from_point(w, np.zeros(4))
        assert np.allclose(from_origin, geometry.plane_distances(w))

    def test_plane_distance_from_point_signed(self):
        w = np.array([[1.0, 1.0]])
        inside = geometry.plane_distance_from_point(w, [0.25, 0.25])[0]
        outside = geometry.plane_distance_from_point(w, [1.0, 1.0])[0]
        assert inside == pytest.approx(0.5 / math.sqrt(2))
        assert outside < 0

    def test_point_shape_checked(self):
        with pytest.raises(ValueError, match="point shape"):
            geometry.plane_distance_from_point(np.ones((2, 3)), [0.0, 0.0])

    def test_ideal_plane_distance(self):
        assert geometry.ideal_plane_distance(4) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            geometry.ideal_plane_distance(0)


class TestIdealVolume:
    def test_closed_form(self):
        # C_T^d / (d! prod l_k) with C_T = 2, l = (10, 11).
        v = geometry.ideal_volume([1.0, 1.0], [10.0, 11.0])
        assert v == pytest.approx(4.0 / (2 * 110))

    def test_infinite_when_variable_unloaded(self):
        assert math.isinf(geometry.ideal_volume([1.0], [10.0, 0.0]))

    def test_rejects_negative_totals(self):
        with pytest.raises(ValueError):
            geometry.ideal_volume([1.0], [-1.0])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            geometry.validate_capacities([1.0, 0.0])
        with pytest.raises(ValueError):
            geometry.validate_capacities([])
        with pytest.raises(ValueError):
            geometry.validate_capacities([math.inf])


class TestLowerBoundNormalization:
    def test_maps_to_load_share(self):
        b_hat = geometry.normalize_lower_bound([2.0, 0.0], [10.0, 11.0], 4.0)
        assert np.allclose(b_hat, [5.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            geometry.normalize_lower_bound([1.0], [1.0, 1.0], 1.0)
        with pytest.raises(ValueError, match=">= 0"):
            geometry.normalize_lower_bound([-1.0], [1.0], 1.0)
        with pytest.raises(ValueError, match="capacity"):
            geometry.normalize_lower_bound([1.0], [1.0], 0.0)


class TestHypersphereBound:
    def test_zero_radius_is_zero(self):
        assert geometry.hypersphere_volume_fraction(0.0, 3) == 0.0

    def test_monotone_in_radius(self):
        values = [
            geometry.hypersphere_volume_fraction(r, 3)
            for r in (0.2, 0.4, 0.6, 0.8)
        ]
        assert values == sorted(values)

    def test_full_radius_2d(self):
        # Quarter disc of radius 1/sqrt(2) over the unit triangle (1/2):
        # (pi/4 * 1/2) / (1/2) = pi/4.
        assert geometry.hypersphere_volume_fraction(1.0, 2) == pytest.approx(
            math.pi / 4
        )

    def test_capped_at_one(self):
        assert geometry.hypersphere_volume_fraction(10.0, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            geometry.hypersphere_volume_fraction(-0.1, 2)
        with pytest.raises(ValueError):
            geometry.hypersphere_volume_fraction(0.5, 0)
