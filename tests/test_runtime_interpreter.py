"""Tests for stream programs and the interpreter."""

import numpy as np
import pytest

from repro import build_load_model, rod_place
from repro.runtime import (
    FnAggregate,
    FnFilter,
    FnMap,
    FnUnion,
    FnWindowJoin,
    Interpreter,
    Record,
    StreamProgram,
    records_from_trace,
)


@pytest.fixture
def pipeline():
    p = StreamProgram("pipeline")
    src = p.add_input("src")
    kept = p.add(FnFilter("keep", lambda d: d["v"] % 2 == 0), [src])
    p.add(FnMap("double", lambda d: {"v": d["v"] * 2}), [kept])
    return p


class TestStreamProgram:
    def test_structure(self, pipeline):
        assert pipeline.input_names == ("src",)
        assert pipeline.operator_names == ("keep", "double")
        assert pipeline.inputs_of("double") == ("keep.out",)
        assert pipeline.sink_streams() == ("double.out",)

    def test_consumers(self, pipeline):
        assert pipeline.consumers_of("src") == (("keep", 0),)
        assert pipeline.consumers_of("double.out") == ()

    def test_duplicate_names_rejected(self, pipeline):
        with pytest.raises(ValueError, match="duplicate operator"):
            pipeline.add(FnMap("keep", lambda d: d), ["src"])
        with pytest.raises(ValueError, match="duplicate stream"):
            pipeline.add_input("src")

    def test_arity_checked(self):
        p = StreamProgram()
        p.add_input("a")
        with pytest.raises(ValueError, match="arity"):
            p.add(FnUnion("u", arity=2), ["a"])

    def test_unknown_stream_rejected(self, pipeline):
        with pytest.raises(KeyError):
            pipeline.add(FnMap("m", lambda d: d), ["nope"])

    def test_lowering_produces_equivalent_graph(self, pipeline):
        graph = pipeline.to_query_graph({"keep": 0.5})
        assert graph.operator_names == ("keep", "double")
        assert graph.operator("keep").selectivities == (0.5,)
        model = build_load_model(graph)
        assert model.num_variables == 1


class TestInterpreter:
    def test_end_to_end_values(self, pipeline):
        records = [Record(t * 0.1, {"v": t}) for t in range(10)]
        result = Interpreter(pipeline).run({"src": records})
        outs = [r["v"] for r in result.sink_records["double.out"]]
        assert outs == [0, 4, 8, 12, 16]
        assert result.tuples_in == {"src": 10}

    def test_measured_selectivities(self, pipeline):
        records = [Record(t * 0.1, {"v": t}) for t in range(10)]
        result = Interpreter(pipeline).run({"src": records})
        sel = result.selectivities()
        assert sel["keep"] == pytest.approx(0.5)
        assert sel["double"] == pytest.approx(1.0)

    def test_merges_inputs_by_time(self):
        p = StreamProgram()
        a, b = p.add_input("a"), p.add_input("b")
        u = p.add(FnUnion("u", arity=2), [a, b])
        p.add(FnMap("stamp", lambda d: d), [u])
        result = Interpreter(p).run(
            {
                "a": [Record(0.0, {"v": "a0"}), Record(2.0, {"v": "a1"})],
                "b": [Record(1.0, {"v": "b0"})],
            }
        )
        outs = [r["v"] for r in result.sink_records["stamp.out"]]
        assert outs == ["a0", "b0", "a1"]

    def test_windows_flush_at_end(self):
        p = StreamProgram()
        src = p.add_input("src")
        p.add(
            FnAggregate("count", window=10.0,
                        reducer=lambda rs: {"n": len(rs)}),
            [src],
        )
        result = Interpreter(p).run(
            {"src": [Record(0.1, {}), Record(0.2, {})]}
        )
        (out,) = result.sink_records["count.out"]
        assert out["n"] == 2

    def test_watermarks_release_before_end(self):
        p = StreamProgram()
        a, b = p.add_input("a"), p.add_input("b")
        agg = p.add(
            FnAggregate("count", window=1.0,
                        reducer=lambda rs: {"n": len(rs)}),
            [a],
        )
        p.add(
            FnWindowJoin(
                "j", window=4.0,
                left_key=lambda d: 0, right_key=lambda d: 0,
                merge=lambda l, r: {"n": l["n"], "mark": r["m"]},
            ),
            [agg, b],
        )
        # The aggregate's first window closes at t=1; a 'b' record at
        # t=1.5 must see the released aggregate (watermark-driven).
        result = Interpreter(p).run(
            {
                "a": [Record(0.4, {}), Record(0.6, {}), Record(1.2, {})],
                "b": [Record(1.5, {"m": "x"})],
            }
        )
        outs = result.sink_records["j.out"]
        assert any(o["n"] == 2 and o["mark"] == "x" for o in outs)

    def test_unknown_input_rejected(self, pipeline):
        with pytest.raises(ValueError, match="unknown input"):
            Interpreter(pipeline).run({"bogus": []})

    def test_empty_run(self, pipeline):
        result = Interpreter(pipeline).run({"src": []})
        assert result.total_output == 0


class TestRecordsFromTrace:
    def test_count_matches_trace_volume(self):
        records = records_from_trace(
            [10.0, 10.0, 0.0, 5.0], 1.0, lambda i: {"i": i}
        )
        assert len(records) == 25
        times = [r.time for r in records]
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    def test_payload_builder_gets_sequence_numbers(self):
        records = records_from_trace([3.0], 1.0, lambda i: {"i": i})
        assert [r["i"] for r in records] == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            records_from_trace([1.0], 0.0, lambda i: {})


class TestPlanFromMeasuredRun:
    def test_measure_lower_place(self):
        """The full workflow: run the real query, feed measured
        selectivities to the load model, place with ROD."""
        p = StreamProgram("workflow")
        src = p.add_input("src")
        kept = p.add(
            FnFilter("rare", lambda d: d["v"] % 10 == 0, cost=1e-4), [src]
        )
        p.add(
            FnAggregate("summary", window=1.0,
                        reducer=lambda rs: {"n": len(rs)}, cost=2e-4),
            [kept],
        )
        records = [Record(t * 0.01, {"v": t}) for t in range(1000)]
        result = Interpreter(p).run({"src": records})
        graph = p.to_query_graph(result.selectivities())
        assert graph.operator("rare").selectivities[0] == pytest.approx(0.1)
        model = build_load_model(graph)
        plan = rod_place(model, [1.0, 1.0])
        assert len(plan.assignment) == 2
        assert np.isclose(
            plan.node_coefficients().sum(axis=0), model.column_totals()
        ).all()
