"""Unit tests for exact polytope volumes."""

import math

import numpy as np
import pytest

from repro.core.volume import polytope


class TestVertices:
    def test_box_vertices(self):
        # x <= 1, y <= 2 with x, y >= 0: a rectangle.
        ln = np.array([[1.0, 0.0], [0.0, 1.0]])
        v = polytope.polytope_vertices(ln, [1.0, 2.0])
        expected = {(0, 0), (1, 0), (0, 2), (1, 2)}
        assert {tuple(p) for p in np.round(v, 6)} == expected

    def test_unbounded_raises(self):
        ln = np.array([[1.0, 0.0]])  # nothing constrains axis 1
        with pytest.raises(ValueError, match="unbounded"):
            polytope.polytope_vertices(ln, [1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            polytope.polytope_vertices(np.ones(2), [1.0])
        with pytest.raises(ValueError, match="capacity"):
            polytope.polytope_vertices(np.ones((2, 2)), [1.0])


class TestVolume:
    def test_rectangle(self):
        ln = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert polytope.polytope_volume(ln, [2.0, 3.0]) == pytest.approx(6.0)

    def test_simplex(self):
        # x + y <= 1 in the positive quadrant: area 1/2.
        ln = np.array([[1.0, 1.0]])
        assert polytope.polytope_volume(ln, [1.0]) == pytest.approx(0.5)

    def test_3d_simplex(self):
        ln = np.array([[2.0, 1.0, 4.0]])
        # intercepts 1/2, 1, 1/4 -> volume = prod / 3!
        expected = (0.5 * 1.0 * 0.25) / 6
        assert polytope.polytope_volume(ln, [1.0]) == pytest.approx(expected)

    def test_1d_segment(self):
        ln = np.array([[2.0], [4.0]])
        assert polytope.polytope_volume(ln, [1.0, 1.0]) == pytest.approx(0.25)

    def test_degenerate_zero_capacity_direction(self):
        # Two constraints forcing a lower-dimensional set.
        ln = np.array([[1.0, 0.0], [1.0, 1.0]])
        vol = polytope.polytope_volume(ln, [0.0001, 1.0])
        assert vol < 0.001

    def test_intersection_of_planes(self):
        # Two crossing constraints; volume computable by decomposition.
        ln = np.array([[2.0, 1.0], [1.0, 2.0]])
        vol = polytope.polytope_volume(ln, [1.0, 1.0])
        # Quadrilateral (0,0), (1/2,0), (1/3,1/3), (0,1/2): shoelace 1/6.
        assert vol == pytest.approx(1 / 6, rel=1e-6)

    def test_simplex_volume_helper(self):
        assert polytope.simplex_volume([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            polytope.simplex_volume([1.0, 0.0])


class TestFeasibleVolumeWithLowerBound:
    def test_translation(self):
        ln = np.array([[1.0, 1.0]])
        full = polytope.feasible_volume(ln, [1.0])
        above = polytope.feasible_volume(
            ln, [1.0], lower_bound=np.array([0.5, 0.0])
        )
        # Remaining region is the simplex scaled by 1/2: quarter the area.
        assert above == pytest.approx(full / 4)

    def test_floor_overloading_node_gives_zero(self):
        ln = np.array([[1.0, 1.0]])
        assert polytope.feasible_volume(
            ln, [1.0], lower_bound=np.array([2.0, 0.0])
        ) == 0.0

    def test_validation(self):
        ln = np.array([[1.0, 1.0]])
        with pytest.raises(ValueError, match="shape"):
            polytope.feasible_volume(ln, [1.0], lower_bound=np.array([1.0]))
        with pytest.raises(ValueError, match=">= 0"):
            polytope.feasible_volume(
                ln, [1.0], lower_bound=np.array([-1.0, 0.0])
            )


class TestAgreementWithQMC:
    def test_exact_matches_estimate(self):
        from repro.core import geometry
        from repro.core.volume import qmc

        rng = np.random.default_rng(3)
        for _ in range(5):
            ln = rng.uniform(0.2, 2.0, size=(3, 2))
            caps = np.array([1.0, 1.0, 1.0])
            exact = polytope.polytope_volume(ln, caps)
            totals = ln.sum(axis=0)
            ideal = geometry.ideal_volume(caps, totals)
            w = geometry.weight_matrix(ln, caps, totals)
            estimate = qmc.feasible_fraction(w, samples=1 << 14) * ideal
            assert estimate == pytest.approx(exact, rel=0.03)
