"""The paper's formal claims, as executable assertions.

Each test pins one statement from Sections 3-5 — not a reproduction of
an experiment's numbers, but the mathematical claim itself, checked on
randomized instances:

* Theorem 1: the ideal feasible set is a superset of every plan's
  (volume bound) and is achieved exactly by the ideal coefficient
  matrix.
* §4.1: if every axis distance is at least ``a_k``, the simplex with
  intercepts ``a_k`` fits inside the feasible set —
  ``V(F) >= V(F*) * prod_k min_i (1/w_ik)`` (MMAD's lower bound).
* §4.2: the feasible set contains the orthant part of the radius-``r``
  hypersphere, ``r = min_i 1/||W_i||`` (MMPD's lower bound).
* §5: ROD's plan is optimal on the worked example, near-optimal on
  small random instances (the 0.82 floor reported in §7.3.1).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_load_model, placement_from_mapping
from repro.core import geometry
from repro.core.rod import rod_place
from repro.core.volume import polytope
from repro.graphs import random_tree_graph
from repro.graphs.generator import RandomGraphConfig
from repro.placement import OptimalPlacer

seeds = st.integers(0, 100_000)


def random_plan_weights(seed: int, n: int = 3, d: int = 2):
    rng = np.random.default_rng(seed)
    ln = rng.uniform(0.1, 2.0, size=(n, d))
    caps = np.ones(n)
    totals = ln.sum(axis=0)
    weights = geometry.weight_matrix(ln, caps, totals)
    volume = polytope.polytope_volume(ln, caps)
    ideal = geometry.ideal_volume(caps, totals)
    return weights, volume, ideal


class TestTheorem1:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_ideal_set_bounds_every_plan(self, seed):
        _, volume, ideal = random_plan_weights(seed)
        assert volume <= ideal * (1 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(2, 4), st.integers(1, 3))
    def test_ideal_matrix_achieves_the_bound(self, seed, n, d):
        """l*_ik = l_k C_i / C_T collapses all hyperplanes onto the
        ideal one, reaching the bound exactly."""
        rng = np.random.default_rng(seed)
        totals = rng.uniform(0.5, 5.0, size=d)
        caps = rng.uniform(0.5, 2.0, size=n)
        ideal_ln = np.outer(caps / caps.sum(), totals)
        volume = polytope.polytope_volume(ideal_ln, caps)
        assert volume == pytest.approx(
            geometry.ideal_volume(caps, totals), rel=1e-6
        )


class TestSection41AxisDistanceBound:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_volume_at_least_axis_distance_product(self, seed):
        weights, volume, ideal = random_plan_weights(seed)
        min_axis = geometry.axis_distances(weights).min(axis=0)
        lower_bound = ideal * float(np.prod(min_axis))
        assert volume >= lower_bound * (1 - 1e-9)


class TestSection42PlaneDistanceBound:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_volume_at_least_hypersphere(self, seed):
        weights, volume, ideal = random_plan_weights(seed)
        d = weights.shape[1]
        r = geometry.min_plane_distance(weights)
        rho = r / geometry.ideal_plane_distance(d)
        lower_bound = ideal * geometry.hypersphere_volume_fraction(rho, d)
        assert volume >= lower_bound * (1 - 1e-6)

    def test_figure9_envelope_uses_this_bound(self):
        """The bound is tight enough to be informative: for a plan at
        plane distance equal to the ideal's, it certifies a substantial
        fraction of the ideal volume."""
        assert geometry.hypersphere_volume_fraction(1.0, 2) > 0.7
        assert geometry.hypersphere_volume_fraction(1.0, 3) > 0.4


class TestSection5RodQuality:
    def test_rod_optimal_on_worked_example(self, example_model, two_nodes):
        import itertools

        best = max(
            placement_from_mapping(
                example_model, two_nodes,
                dict(zip(example_model.operator_names, assignment)),
            ).feasible_set().exact_volume()
            for assignment in itertools.product((0, 1), repeat=4)
        )
        rod_volume = rod_place(
            example_model, two_nodes
        ).feasible_set().exact_volume()
        assert rod_volume == pytest.approx(best)

    @pytest.mark.parametrize("seed", [11, 22, 33, 44])
    def test_rod_within_paper_floor_of_optimal(self, seed, two_nodes):
        """§7.3.1 reports ROD/optimal >= 0.82; hold a slightly looser
        floor across random small instances."""
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=4)
        model = build_load_model(random_tree_graph(config, seed=seed))
        rod_volume = rod_place(
            model, two_nodes
        ).feasible_set().exact_volume()
        optimal_volume = OptimalPlacer(objective="exact").place(
            model, two_nodes
        ).feasible_set().exact_volume()
        assert rod_volume >= 0.75 * optimal_volume

    def test_class_one_choices_cannot_shrink_the_bound(self, two_nodes):
        """§5.2's claim: while Class I nodes exist, the maximum
        achievable feasible set is untouched — all candidate hyperplanes
        stay above the ideal hyperplane."""
        from repro.graphs import Delay, QueryGraph

        g = QueryGraph()
        i = g.add_input("I")
        for k in range(8):
            g.add_operator(Delay(f"d{k}", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        steps = []
        rod_place(model, two_nodes, steps=steps)
        for step in steps:
            if step.chosen_from_class_one:
                # Candidate distance of the chosen node is at least the
                # ideal hyperplane's distance from the origin.
                chosen = step.candidate_distances[step.node]
                assert chosen >= geometry.ideal_plane_distance(
                    model.num_variables
                ) - 1e-9
