"""Unit tests for synthetic trace generation (the Figure 2 substitute)."""

import numpy as np
import pytest

from repro.workload import traces


class TestParetoOnOff:
    def test_mean_rate_matched(self):
        t = traces.pareto_on_off_trace(2048, mean_rate=50.0, seed=1)
        assert t.mean() == pytest.approx(50.0)

    def test_nonnegative(self):
        assert np.all(traces.pareto_on_off_trace(512, seed=2) >= 0)

    def test_self_similar(self):
        t = traces.pareto_on_off_trace(4096, alpha=1.3, seed=3)
        assert traces.hurst_exponent(t) > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            traces.pareto_on_off_trace(0)
        with pytest.raises(ValueError):
            traces.pareto_on_off_trace(10, sources=0)
        with pytest.raises(ValueError):
            traces.pareto_on_off_trace(10, alpha=2.5)
        with pytest.raises(ValueError):
            traces.pareto_on_off_trace(10, mean_rate=0.0)

    def test_deterministic(self):
        a = traces.pareto_on_off_trace(256, seed=4)
        b = traces.pareto_on_off_trace(256, seed=4)
        assert np.array_equal(a, b)


class TestBModel:
    def test_mean_rate_matched(self):
        t = traces.b_model_trace(1000, mean_rate=20.0, seed=1)
        assert t.mean() == pytest.approx(20.0)

    def test_unbiased_cascade_is_flat(self):
        t = traces.b_model_trace(64, bias=0.5, seed=1)
        assert np.allclose(t, t[0])

    def test_higher_bias_is_burstier(self):
        mild = traces.b_model_trace(1024, bias=0.6, seed=2)
        wild = traces.b_model_trace(1024, bias=0.9, seed=2)
        assert wild.std() > mild.std()

    def test_handles_non_power_of_two(self):
        assert traces.b_model_trace(1000, seed=3).shape == (1000,)

    def test_validation(self):
        with pytest.raises(ValueError):
            traces.b_model_trace(10, bias=0.4)
        with pytest.raises(ValueError):
            traces.b_model_trace(10, bias=1.0)


class TestFlashCrowd:
    def test_mean_rate_matched(self):
        t = traces.flash_crowd_trace(2048, mean_rate=75.0, seed=1)
        assert t.mean() == pytest.approx(75.0)

    def test_flash_events_create_spikes(self):
        calm = traces.flash_crowd_trace(
            2048, flash_probability=0.0, noise=0.05, seed=2
        )
        spiky = traces.flash_crowd_trace(
            2048, flash_probability=0.02, noise=0.05, seed=2
        )
        assert spiky.max() / spiky.mean() > calm.max() / calm.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            traces.flash_crowd_trace(10, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            traces.flash_crowd_trace(10, flash_decay=1.0)
        with pytest.raises(ValueError):
            traces.flash_crowd_trace(10, flash_probability=2.0)


class TestDispatchAndStats:
    def test_make_trace_kinds(self):
        for kind in traces.TRACE_KINDS:
            t = traces.make_trace(kind, 256, seed=1)
            assert t.shape == (256,)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            traces.make_trace("dns", 256)

    def test_normalize(self):
        t = traces.make_trace("pkt", 512, mean_rate=123.0, seed=1)
        n = traces.normalize_trace(t)
        assert n.mean() == pytest.approx(1.0)

    def test_normalize_validation(self):
        with pytest.raises(ValueError):
            traces.normalize_trace([])
        with pytest.raises(ValueError):
            traces.normalize_trace([0.0, 0.0])

    def test_statistics_keys(self):
        stats = traces.trace_statistics(traces.make_trace("tcp", 512, seed=1))
        assert set(stats) == {"mean", "normalized_std", "peak_to_mean",
                              "hurst"}
        assert stats["peak_to_mean"] >= 1.0

    def test_all_kinds_bursty(self):
        """The point of Figure 2: significant variation over time."""
        for kind in traces.TRACE_KINDS:
            stats = traces.trace_statistics(
                traces.make_trace(kind, 4096, seed=5)
            )
            assert stats["normalized_std"] > 0.1, kind


class TestHurst:
    def test_iid_noise_near_half(self):
        rng = np.random.default_rng(0)
        h = traces.hurst_exponent(rng.random(8192))
        assert 0.3 < h < 0.65

    def test_trend_near_one(self):
        h = traces.hurst_exponent(np.linspace(0, 1, 4096) ** 2 + 1)
        assert h > 0.9

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            traces.hurst_exponent(np.ones(10))

    def test_result_clamped(self):
        rng = np.random.default_rng(1)
        h = traces.hurst_exponent(rng.random(512))
        assert 0.0 <= h <= 1.0
