"""Tests for the double-run determinism harness and its guarantees.

Three layers: :func:`repro.check.determinism.compare_runs` unit tests on
synthetic run directories, an actual two-subprocess PYTHONHASHSEED
stability check on the simulator, and the jobs-invariance guarantee of
the fault-tolerance experiment.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.check.determinism import (
    DEFAULT_HASH_SEEDS,
    compare_runs,
    run_digest,
)
from repro.experiments import fault_tolerance
from repro.obs import JsonlSink, Tracer

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _write_run(root, name, events, result):
    run_dir = root / name
    run_dir.mkdir(parents=True)
    sink = JsonlSink(str(run_dir / "trace.jsonl"))
    tracer = Tracer(sink)
    for type_, t, fields in events:
        tracer.emit(type_, t=t, **fields)
    sink.close()
    (run_dir / "result.json").write_text(json.dumps(result))
    return str(run_dir)


EVENTS = [
    ("sim.start", 0.0, {"duration": 2.0, "num_nodes": 1}),
    ("node.busy", 1.0, {"node": 0}),
    ("sim.end", 2.0, {"tuples_out": 7}),
]
RESULT = {"tuples_out": 7, "duration": 2.0}


class TestCompareRuns:
    def test_identical_runs_have_no_mismatches(self, tmp_path):
        a = _write_run(tmp_path, "a", EVENTS, RESULT)
        b = _write_run(tmp_path, "b", EVENTS, RESULT)
        assert compare_runs(a, b) == []

    def test_result_value_difference_is_reported_by_key(self, tmp_path):
        a = _write_run(tmp_path, "a", EVENTS, RESULT)
        b = _write_run(tmp_path, "b", EVENTS, {**RESULT, "tuples_out": 8})
        mismatches = compare_runs(a, b)
        assert len(mismatches) == 1
        assert "tuples_out" in mismatches[0]

    def test_missing_result_key_is_reported(self, tmp_path):
        a = _write_run(tmp_path, "a", EVENTS, RESULT)
        short = {k: v for k, v in RESULT.items() if k != "duration"}
        b = _write_run(tmp_path, "b", EVENTS, short)
        assert any("duration" in m for m in compare_runs(a, b))

    def test_trace_difference_changes_the_digest(self, tmp_path):
        a = _write_run(tmp_path, "a", EVENTS, RESULT)
        tampered = EVENTS[:-1] + [("sim.end", 2.0, {"tuples_out": 8})]
        b = _write_run(tmp_path, "b", tampered, RESULT)
        mismatches = compare_runs(a, b)
        assert any("trace_digest" in m for m in mismatches)

    def test_run_digest_is_stable_for_one_directory(self, tmp_path):
        a = _write_run(tmp_path, "a", EVENTS, RESULT)
        assert run_digest(a) == run_digest(a)


_PROBE = """
import sys
from repro.core.rod import rod_place
from repro.experiments.common import make_model
from repro.faults import chaos_schedule
from repro.obs import MemorySink, Tracer
from repro.obs.trace import trace_digest
from repro.simulator.engine import Simulator

model = make_model(2, 6, seed=5)
plan = rod_place(model, [1.0, 1.0, 1.0])
sink = MemorySink()
result = Simulator(
    plan,
    step_seconds=0.1,
    faults=chaos_schedule(num_nodes=3, horizon=4.0, seed=9),
    tracer=Tracer(sink),
).run(rates=[30.0, 30.0], duration=4.0)
sys.stdout.write(trace_digest(sink.events))
sys.stdout.write("|%d" % result.tuples_out)
"""


def _probe_digest(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_ROOT, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True, text=True, env=env, check=False,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedStability:
    def test_trace_digest_is_hash_seed_invariant(self):
        first, second = (
            _probe_digest(seed) for seed in DEFAULT_HASH_SEEDS
        )
        assert first == second
        digest, tuples_out = first.split("|")
        assert len(digest) == 64
        assert int(tuples_out) > 0


class TestJobsInvariance:
    def test_fault_tolerance_rows_identical_across_jobs(self):
        kwargs = dict(
            duration=4.0, samples=64, operators_per_tree=6, seed=11,
        )
        serial = fault_tolerance.run(jobs=1, **kwargs)
        fanned = fault_tolerance.run(jobs=4, **kwargs)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            fanned, sort_keys=True
        )
        assert len(serial) == 12
