"""Unit tests for latency statistics and simulation results."""

import numpy as np
import pytest

from repro.simulator.metrics import LatencyStats, OperatorStats, SimulationResult


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.is_empty
        assert stats.mean() == 0.0
        assert stats.percentile(95) == 0.0
        assert stats.maximum() == 0.0
        assert stats.total_tuples == 0

    def test_weighted_mean(self):
        stats = LatencyStats()
        stats.record(1.0, count=1)
        stats.record(3.0, count=3)
        assert stats.mean() == pytest.approx(2.5)
        assert stats.total_tuples == 4

    def test_percentiles_weighted(self):
        stats = LatencyStats()
        stats.record(1.0, count=90)
        stats.record(10.0, count=10)
        assert stats.percentile(50) == 1.0
        assert stats.percentile(99) == 10.0

    def test_percentile_monotone(self):
        rng = np.random.default_rng(0)
        stats = LatencyStats()
        for value in rng.random(100):
            stats.record(float(value))
        values = [stats.percentile(q) for q in (10, 50, 90, 100)]
        assert values == sorted(values)

    def test_maximum(self):
        stats = LatencyStats()
        stats.record(0.5)
        stats.record(2.5)
        assert stats.maximum() == 2.5

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1.0, 2)
        b.record(3.0, 2)
        a.merge(b)
        assert a.mean() == pytest.approx(2.0)

    def test_validation(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record(-1.0)
        with pytest.raises(ValueError):
            stats.record(1.0, count=0)
        with pytest.raises(ValueError):
            stats.percentile(101)


class TestOperatorStats:
    def test_measured_quantities(self):
        stats = OperatorStats(tuples_in=100, tuples_out=25, work_seconds=0.5)
        assert stats.measured_cost == pytest.approx(0.005)
        assert stats.measured_selectivity == pytest.approx(0.25)

    def test_zero_input_safe(self):
        stats = OperatorStats()
        assert stats.measured_cost == 0.0
        assert stats.measured_selectivity == 0.0


class TestSimulationResult:
    def make(self, utilization, backlog):
        return SimulationResult(
            duration=10.0,
            node_busy=np.array([utilization * 10.0]),
            node_utilization=np.array([utilization]),
            backlog_seconds=np.array([backlog]),
            latency=LatencyStats(),
        )

    def test_feasible_when_under_threshold(self):
        assert self.make(0.8, 0.0).is_feasible()

    def test_infeasible_when_saturated(self):
        assert not self.make(1.05, 0.0).is_feasible()

    def test_infeasible_when_backlogged(self):
        assert not self.make(0.8, 1.0).is_feasible()

    def test_threshold_configurable(self):
        assert self.make(0.95, 0.0).is_feasible(utilization_threshold=0.99)
        assert not self.make(0.95, 0.0).is_feasible(
            utilization_threshold=0.9
        )

    def test_summary_mentions_key_figures(self):
        text = self.make(0.5, 0.0).summary()
        assert "max_util=0.500" in text
        assert "duration=10s" in text


class TestPercentilesContract:
    def test_percentiles_dict(self):
        stats = LatencyStats()
        stats.record(1.0, count=90)
        stats.record(10.0, count=10)
        quantiles = stats.percentiles()
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] == 1.0
        assert quantiles["p99"] == 10.0

    def test_empty_contract_is_zero_never_raise(self):
        # The documented empty-sample contract: every aggregate returns
        # 0.0; callers distinguish "no data" via is_empty.
        stats = LatencyStats()
        assert stats.is_empty
        assert stats.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert stats.mean() == 0.0
        assert stats.maximum() == 0.0

    def test_summary_exposes_quantiles(self):
        latency = LatencyStats()
        latency.record(0.002, count=90)
        latency.record(0.050, count=10)
        result = SimulationResult(
            duration=10.0,
            node_busy=np.array([5.0]),
            node_utilization=np.array([0.5]),
            backlog_seconds=np.array([0.0]),
            latency=latency,
        )
        text = result.summary()
        assert "p50=2.00ms" in text
        assert "p95=50.00ms" in text
        assert "p99=50.00ms" in text
