"""Unit tests for latency statistics and simulation results."""

import numpy as np
import pytest

from repro.simulator.metrics import LatencyStats, OperatorStats, SimulationResult


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.is_empty
        assert stats.mean() == 0.0
        assert stats.percentile(95) == 0.0
        assert stats.maximum() == 0.0
        assert stats.total_tuples == 0

    def test_weighted_mean(self):
        stats = LatencyStats()
        stats.record(1.0, count=1)
        stats.record(3.0, count=3)
        assert stats.mean() == pytest.approx(2.5)
        assert stats.total_tuples == 4

    def test_percentiles_weighted(self):
        stats = LatencyStats()
        stats.record(1.0, count=90)
        stats.record(10.0, count=10)
        assert stats.percentile(50) == 1.0
        assert stats.percentile(99) == 10.0

    def test_percentile_monotone(self):
        rng = np.random.default_rng(0)
        stats = LatencyStats()
        for value in rng.random(100):
            stats.record(float(value))
        values = [stats.percentile(q) for q in (10, 50, 90, 100)]
        assert values == sorted(values)

    def test_maximum(self):
        stats = LatencyStats()
        stats.record(0.5)
        stats.record(2.5)
        assert stats.maximum() == 2.5

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1.0, 2)
        b.record(3.0, 2)
        a.merge(b)
        assert a.mean() == pytest.approx(2.0)

    def test_validation(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record(-1.0)
        with pytest.raises(ValueError):
            stats.record(1.0, count=0)
        with pytest.raises(ValueError):
            stats.percentile(101)


class TestOperatorStats:
    def test_measured_quantities(self):
        stats = OperatorStats(tuples_in=100, tuples_out=25, work_seconds=0.5)
        assert stats.measured_cost == pytest.approx(0.005)
        assert stats.measured_selectivity == pytest.approx(0.25)

    def test_zero_input_safe(self):
        stats = OperatorStats()
        assert stats.measured_cost == 0.0
        assert stats.measured_selectivity == 0.0


class TestSimulationResult:
    def make(self, utilization, backlog):
        return SimulationResult(
            duration=10.0,
            node_busy=np.array([utilization * 10.0]),
            node_utilization=np.array([utilization]),
            backlog_seconds=np.array([backlog]),
            latency=LatencyStats(),
        )

    def test_feasible_when_under_threshold(self):
        assert self.make(0.8, 0.0).is_feasible()

    def test_infeasible_when_saturated(self):
        assert not self.make(1.05, 0.0).is_feasible()

    def test_infeasible_when_backlogged(self):
        assert not self.make(0.8, 1.0).is_feasible()

    def test_threshold_configurable(self):
        assert self.make(0.95, 0.0).is_feasible(utilization_threshold=0.99)
        assert not self.make(0.95, 0.0).is_feasible(
            utilization_threshold=0.9
        )

    def test_summary_mentions_key_figures(self):
        text = self.make(0.5, 0.0).summary()
        assert "max_util=0.500" in text
        assert "duration=10s" in text
