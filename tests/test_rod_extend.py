"""Unit tests for incremental placement (rod_extend)."""

import numpy as np
import pytest

from repro import build_load_model
from repro.core.rod import rod_extend, rod_place
from repro.graphs import Delay, QueryGraph


def base_graph():
    g = QueryGraph("grow")
    i = g.add_input("I")
    for k in range(4):
        g.add_operator(Delay(f"old{k}", cost=1.0, selectivity=1.0), [i])
    return g


def grown_graph():
    g = base_graph()
    i2 = g.add_input("J")
    for k in range(4):
        g.add_operator(Delay(f"new{k}", cost=2.0, selectivity=1.0), [i2])
    return g


class TestRodExtend:
    def test_existing_operators_never_move(self, two_nodes):
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        new_model = build_load_model(grown_graph())
        extended = rod_extend(placement, new_model)
        for name in old_model.operator_names:
            assert extended.node_of(name) == placement.node_of(name)

    def test_new_operators_all_placed(self, two_nodes):
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        new_model = build_load_model(grown_graph())
        extended = rod_extend(placement, new_model)
        assert len(extended.assignment) == new_model.num_operators
        assert np.allclose(
            extended.node_coefficients().sum(axis=0),
            new_model.column_totals(),
        )

    def test_new_stream_balanced_across_nodes(self, two_nodes):
        """The four equal new operators should split evenly."""
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        extended = rod_extend(placement, build_load_model(grown_graph()))
        new_nodes = [extended.node_of(f"new{k}") for k in range(4)]
        assert sorted(new_nodes).count(0) == 2

    def test_matches_full_rod_quality_when_growth_is_balanced(
        self, two_nodes
    ):
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        new_model = build_load_model(grown_graph())
        extended = rod_extend(placement, new_model)
        fresh = rod_place(new_model, two_nodes)
        assert extended.volume_ratio(samples=2048) >= (
            fresh.volume_ratio(samples=2048) - 0.05
        )

    def test_rejects_dropped_operators(self, two_nodes):
        old_model = build_load_model(grown_graph())
        placement = rod_place(old_model, two_nodes)
        smaller = build_load_model(base_graph())
        with pytest.raises(ValueError, match="dropped"):
            rod_extend(placement, smaller)

    def test_rejects_unknown_policy(self, two_nodes):
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        with pytest.raises(ValueError, match="policy"):
            rod_extend(placement, build_load_model(grown_graph()),
                       class_one_policy="bogus")

    def test_noop_growth_returns_same_assignment(self, two_nodes):
        model = build_load_model(base_graph())
        placement = rod_place(model, two_nodes)
        extended = rod_extend(placement, model)
        assert extended.assignment == placement.assignment

    def test_lower_bound_carried(self, two_nodes):
        old_model = build_load_model(base_graph())
        placement = rod_place(old_model, two_nodes)
        new_model = build_load_model(grown_graph())
        floor = np.array([0.05, 0.0])
        extended = rod_extend(placement, new_model, lower_bound=floor)
        assert extended.lower_bound is not None

    def test_connections_policy_prefers_colocated_neighbors(self, two_nodes):
        g = QueryGraph("chainy")
        i = g.add_input("I")
        mid = g.add_operator(Delay("a", cost=1.0, selectivity=1.0), [i])
        g.add_operator(Delay("b", cost=1.0, selectivity=1.0), [mid])
        old_model = build_load_model(g)
        placement = rod_place(old_model, two_nodes)

        g2 = QueryGraph("chainy")
        i = g2.add_input("I")
        mid = g2.add_operator(Delay("a", cost=1.0, selectivity=1.0), [i])
        g2.add_operator(Delay("b", cost=1.0, selectivity=1.0), [mid])
        g2.add_operator(Delay("c", cost=0.1, selectivity=1.0), [mid])
        new_model = build_load_model(g2)
        extended = rod_extend(
            placement, new_model, class_one_policy="connections"
        )
        # c is tiny: with the connections policy it sits with its producer.
        assert extended.node_of("c") == extended.node_of("a")
