"""Unit tests for operator runtimes inside the simulator."""

import pytest

from repro.graphs import (
    Filter,
    LinearOperator,
    Map,
    Union,
    VariableSelectivityOp,
    WindowJoin,
)
from repro.simulator.runtime import (
    LinearRuntime,
    VariableSelectivityRuntime,
    WindowJoinRuntime,
    make_runtime,
)


class TestMakeRuntime:
    def test_dispatch(self):
        assert isinstance(make_runtime(Map("m", 1.0)), LinearRuntime)
        assert isinstance(
            make_runtime(VariableSelectivityOp("v", cost=1.0)),
            VariableSelectivityRuntime,
        )
        assert isinstance(
            make_runtime(WindowJoin("j", window=1.0)), WindowJoinRuntime
        )

    def test_unknown_operator_rejected(self):
        from repro.graphs.operators import Operator

        class Strange(Operator):
            @property
            def arity(self):
                return 1

            @property
            def is_linear(self):
                return False

        with pytest.raises(TypeError, match="runtime"):
            make_runtime(Strange("s"))


class TestLinearRuntime:
    def test_work_is_cost_times_count(self):
        rt = make_runtime(Map("m", cost=0.5))
        work, out = rt.process(0.0, 0, 10)
        assert work == pytest.approx(5.0)
        assert out == 10

    def test_selectivity_with_carry_is_exact_longrun(self):
        rt = make_runtime(Filter("f", cost=1.0, selectivity=0.3))
        total_out = sum(rt.process(t, 0, 1)[1] for t in range(1000))
        assert total_out == 300

    def test_union_ports_have_independent_carries(self):
        op = Union("u", costs=[1.0, 2.0])
        rt = make_runtime(op)
        work0, out0 = rt.process(0.0, 0, 4)
        work1, out1 = rt.process(0.0, 1, 4)
        assert (work0, out0) == (4.0, 4)
        assert (work1, out1) == (8.0, 4)


class TestVariableSelectivityRuntime:
    def test_uses_nominal_selectivity(self):
        rt = make_runtime(
            VariableSelectivityOp("v", cost=2.0, nominal_selectivity=0.5)
        )
        work, out = rt.process(0.0, 0, 8)
        assert work == pytest.approx(16.0)
        assert out == 4


class TestWindowJoinRuntime:
    def make(self, window=2.0, cost=1.0, selectivity=1.0):
        return make_runtime(
            WindowJoin("j", cost_per_pair=cost, selectivity=selectivity,
                       window=window)
        )

    def test_empty_window_no_pairs(self):
        rt = self.make()
        work, out = rt.process(0.0, 0, 5)
        assert work == 0.0 and out == 0

    def test_pairs_with_opposite_window(self):
        rt = self.make(window=2.0)
        rt.process(0.0, 0, 3)          # 3 left tuples at t=0
        work, out = rt.process(0.5, 1, 4)  # 4 right tuples at t=0.5
        assert work == pytest.approx(12.0)
        assert out == 12

    def test_expiry_uses_half_window(self):
        rt = self.make(window=2.0)
        rt.process(0.0, 0, 3)
        # At t=1.5 the left batch is 1.5 > window/2 = 1.0 old: expired.
        work, out = rt.process(1.5, 1, 4)
        assert work == 0.0 and out == 0

    def test_same_side_batches_do_not_pair(self):
        rt = self.make()
        rt.process(0.0, 0, 3)
        work, _ = rt.process(0.1, 0, 3)
        assert work == 0.0

    def test_selectivity_applied_per_pair(self):
        rt = self.make(selectivity=0.5)
        rt.process(0.0, 0, 2)
        _, out = rt.process(0.1, 1, 3)
        assert out == 3  # 6 pairs * 0.5

    def test_bad_port_rejected(self):
        with pytest.raises(IndexError):
            self.make().process(0.0, 2, 1)

    def test_window_population(self):
        rt = self.make(window=4.0)
        rt.process(0.0, 0, 3)
        rt.process(1.0, 0, 2)
        assert rt.window_population(1.5, 0) == 5
        assert rt.window_population(2.5, 0) == 2  # first batch expired
