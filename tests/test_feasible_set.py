"""Unit tests for FeasibleSet (Section 2.3 / Figure 5)."""

import math

import numpy as np
import pytest

from repro import placement_from_mapping
from repro.core.feasible_set import FeasibleSet


@pytest.fixture
def example_plan_a(example_model, two_nodes):
    """Table 2 Plan (a): the two chains on separate nodes."""
    return placement_from_mapping(
        example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
    )


class TestConstruction:
    def test_dimensions(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.num_nodes == 2
        assert fs.dimension == 2
        assert fs.total_capacity == 2.0

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError, match=">= 0"):
            FeasibleSet(np.array([[-1.0]]), np.array([1.0]))

    def test_rejects_shape_mismatches(self):
        with pytest.raises(ValueError, match="rows"):
            FeasibleSet(np.ones((2, 2)), np.array([1.0]))
        with pytest.raises(ValueError, match="totals"):
            FeasibleSet(np.ones((1, 2)), np.array([1.0]),
                        column_totals=np.ones(3))
        with pytest.raises(ValueError, match="lower bound"):
            FeasibleSet(np.ones((1, 2)), np.array([1.0]),
                        lower_bound=np.ones(3))

    def test_totals_default_to_column_sums(self):
        fs = FeasibleSet(np.array([[1.0, 2.0], [3.0, 4.0]]),
                         np.array([1.0, 1.0]))
        assert np.allclose(fs.column_totals, [4.0, 6.0])


class TestFeasibility:
    def test_node_loads_and_utilizations(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        # L^n = [[10, 0], [0, 11]].
        assert np.allclose(fs.node_loads([0.05, 0.05]), [0.5, 0.55])
        assert np.allclose(fs.utilizations([0.05, 0.05]), [0.5, 0.55])

    def test_is_feasible(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.is_feasible([0.09, 0.09])
        assert not fs.is_feasible([0.11, 0.0])

    def test_bottleneck(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.bottleneck([0.05, 0.01]) == 0
        assert fs.bottleneck([0.01, 0.05]) == 1

    def test_lower_bound_domain_check(self, example_plan_a):
        fs = FeasibleSet(
            example_plan_a.node_coefficients(),
            example_plan_a.capacities,
            lower_bound=np.array([0.02, 0.0]),
        )
        assert not fs.is_feasible([0.01, 0.01])  # below the floor
        assert fs.is_feasible([0.05, 0.05])

    def test_rate_shape_checked(self, example_plan_a):
        with pytest.raises(ValueError):
            example_plan_a.feasible_set().node_loads([1.0])


class TestGeometryAccessors:
    def test_plan_a_weights(self, example_plan_a):
        # Chain 1 (total 10) all on node 0, chain 2 (total 11) on node 1.
        w = example_plan_a.feasible_set().weights()
        assert np.allclose(w, [[2.0, 0.0], [0.0, 2.0]])

    def test_plan_a_plane_distance(self, example_plan_a):
        assert example_plan_a.plane_distance() == pytest.approx(0.5)

    def test_axis_distances(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert np.allclose(fs.min_axis_distances(), [0.5, 0.5])

    def test_normalized_lower_bound_default_origin(self, example_plan_a):
        assert np.allclose(
            example_plan_a.feasible_set().normalized_lower_bound(), 0.0
        )


class TestVolumes:
    def test_plan_a_exact_ratio_is_half(self, example_plan_a):
        # Rectangle vs triangle with the same intercepts.
        fs = example_plan_a.feasible_set()
        assert fs.exact_volume_ratio() == pytest.approx(0.5, abs=1e-6)

    def test_qmc_matches_exact(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.volume_ratio(samples=1 << 14) == pytest.approx(0.5, abs=0.01)

    def test_ideal_volume_closed_form(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.ideal_volume() == pytest.approx(2.0 ** 2 / (2 * 10 * 11))

    def test_absolute_volume(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        assert fs.volume(samples=1 << 14) == pytest.approx(
            fs.exact_volume(), rel=0.02
        )

    def test_unbounded_ideal_rejected(self):
        fs = FeasibleSet(
            np.array([[1.0, 0.0]]),
            np.array([1.0]),
            column_totals=np.array([1.0, 0.0]),
        )
        assert math.isinf(fs.ideal_volume())
        with pytest.raises(ValueError, match="unbounded"):
            fs.volume()

    def test_lower_bound_shrinks_ideal_volume(self, example_plan_a):
        base = example_plan_a.feasible_set()
        floored = FeasibleSet(
            example_plan_a.node_coefficients(),
            example_plan_a.capacities,
            column_totals=example_plan_a.model.column_totals(),
            lower_bound=np.array([0.05, 0.0]),
        )
        assert floored.ideal_volume() < base.ideal_volume()

    def test_floor_beyond_capacity_zero_ideal(self, example_plan_a):
        floored = FeasibleSet(
            example_plan_a.node_coefficients(),
            example_plan_a.capacities,
            column_totals=example_plan_a.model.column_totals(),
            lower_bound=np.array([0.5, 0.0]),  # 0.5*10 = 5 > C_T = 2
        )
        assert floored.ideal_volume() == 0.0
        assert floored.volume_ratio(samples=64) == 0.0


class TestVertices:
    def test_plan_a_rectangle_corners(self, example_plan_a):
        vertices = example_plan_a.feasible_set().vertices()
        expected = {(0.0, 0.0), (0.1, 0.0), (0.0, 1 / 11), (0.1, 1 / 11)}
        got = {tuple(np.round(v, 9)) for v in vertices}
        assert got == {tuple(np.round(e, 9)) for e in expected}

    def test_vertices_span_the_exact_volume(self, example_plan_a):
        fs = example_plan_a.feasible_set()
        from scipy.spatial import ConvexHull

        hull = ConvexHull(fs.vertices())
        assert hull.volume == pytest.approx(fs.exact_volume())


class TestAllPlansOfExample2:
    def test_enumerated_ratios_bounded_by_ideal(self, example_model,
                                                two_nodes):
        """Every 2-node plan of the example has ratio in (0, 1]."""
        import itertools

        for assignment in itertools.product((0, 1), repeat=4):
            plan = placement_from_mapping(
                example_model,
                two_nodes,
                dict(zip(example_model.operator_names, assignment)),
            )
            ratio = plan.feasible_set().exact_volume_ratio()
            assert 0.0 < ratio <= 1.0 + 1e-9

    def test_no_plan_achieves_ideal(self, example_model, two_nodes):
        """Example 2's text: no distribution achieves the ideal set."""
        import itertools

        best = max(
            placement_from_mapping(
                example_model,
                two_nodes,
                dict(zip(example_model.operator_names, assignment)),
            ).feasible_set().exact_volume_ratio()
            for assignment in itertools.product((0, 1), repeat=4)
        )
        assert best < 1.0 - 1e-6
