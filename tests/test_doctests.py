"""Docstring examples in the public entry points must stay runnable."""

import doctest

import repro
import repro.deploy


def _run(module) -> None:
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__}: no doctests found"
    assert results.failed == 0, f"{module.__name__}: doctest failures"


def test_package_quickstart_doctest():
    _run(repro)


def test_deploy_doctest():
    _run(repro.deploy)
