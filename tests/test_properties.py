"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import geometry
from repro.core.volume import polytope, qmc
from repro.workload.arrivals import deterministic_arrivals

finite_floats = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def weight_matrices(draw, max_nodes=5, max_dims=4):
    n = draw(st.integers(1, max_nodes))
    d = draw(st.integers(1, max_dims))
    return draw(
        hnp.arrays(
            float,
            (n, d),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        )
    )


@st.composite
def coefficient_matrices(draw, max_nodes=4, max_dims=3):
    n = draw(st.integers(1, max_nodes))
    d = draw(st.integers(1, max_dims))
    ln = draw(
        hnp.arrays(float, (n, d), elements=st.floats(0.05, 5.0,
                                                     allow_nan=False))
    )
    return ln


class TestSimplexSampling:
    @given(
        hnp.arrays(
            float,
            st.tuples(st.integers(1, 20), st.integers(1, 6)),
            elements=st.floats(0.0, 1.0, exclude_max=True, allow_nan=False),
        )
    )
    def test_simplex_from_cube_always_in_simplex(self, cube):
        pts = qmc.simplex_from_cube(cube)
        assert np.all(pts >= -1e-12)
        assert np.all(pts.sum(axis=1) <= 1.0 + 1e-9)

    @given(st.integers(1, 200), st.integers(1, 6))
    def test_halton_points_in_unit_cube(self, count, dim):
        pts = qmc.halton(count, dim)
        assert pts.shape == (count, dim)
        assert np.all((pts >= 0) & (pts < 1))

    @given(st.integers(2, 50), st.integers(2, 16))
    def test_van_der_corput_distinct(self, count, base):
        seq = qmc.van_der_corput(count, base)
        assert len(np.unique(seq)) == count


class TestGeometryInvariants:
    @given(weight_matrices())
    def test_plane_distance_from_origin_matches(self, weights):
        from_point = geometry.plane_distance_from_point(
            weights, np.zeros(weights.shape[1])
        )
        direct = geometry.plane_distances(weights)
        mask = np.isfinite(direct)
        assert np.allclose(from_point[mask], direct[mask])

    @given(coefficient_matrices())
    def test_homogeneous_weight_columns_sum_to_n(self, ln):
        n = ln.shape[0]
        w = geometry.weight_matrix(ln, np.ones(n))
        assert np.allclose(w.sum(axis=0), n, atol=1e-9)

    @given(coefficient_matrices(), st.floats(0.5, 4.0, allow_nan=False))
    def test_weights_invariant_to_uniform_capacity_scaling(self, ln, scale):
        n = ln.shape[0]
        base = geometry.weight_matrix(ln, np.ones(n))
        scaled = geometry.weight_matrix(ln, np.full(n, scale))
        assert np.allclose(base, scaled)

    @given(
        st.lists(positive_floats, min_size=1, max_size=5),
        st.lists(positive_floats, min_size=1, max_size=5),
    )
    def test_ideal_volume_positive_and_finite(self, caps, totals):
        v = geometry.ideal_volume(caps, totals)
        assert v > 0
        assert math.isfinite(v)

    @given(st.integers(1, 10), st.floats(0.0, 1.0, allow_nan=False))
    def test_hypersphere_fraction_in_unit_interval(self, d, rho):
        f = geometry.hypersphere_volume_fraction(rho, d)
        assert 0.0 <= f <= 1.0


class TestVolumeInvariants:
    @settings(max_examples=25, deadline=None)
    @given(coefficient_matrices())
    def test_exact_volume_never_exceeds_ideal(self, ln):
        caps = np.ones(ln.shape[0])
        exact = polytope.polytope_volume(ln, caps)
        ideal = geometry.ideal_volume(caps, ln.sum(axis=0))
        assert exact <= ideal * (1 + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(coefficient_matrices())
    def test_adding_a_constraint_never_grows_volume(self, ln):
        assume(ln.shape[0] >= 2)
        caps = np.ones(ln.shape[0])
        full = polytope.polytope_volume(ln, caps)
        subset = polytope.polytope_volume(ln[:-1], caps[:-1])
        assert full <= subset * (1 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(weight_matrices(max_nodes=4, max_dims=3),
           st.floats(1.1, 3.0, allow_nan=False))
    def test_feasible_fraction_monotone_in_weights(self, weights, factor):
        assume(np.all(weights.sum(axis=1) > 0))
        base = qmc.feasible_fraction(weights, samples=512)
        heavier = qmc.feasible_fraction(weights * factor, samples=512)
        assert heavier <= base + 1e-12


class TestRodInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(2, 10))
    def test_rod_always_places_everything(self, seed, nodes, ops):
        from repro import build_load_model
        from repro.core.rod import rod_place
        from repro.graphs import random_tree_graph
        from repro.graphs.generator import RandomGraphConfig

        config = RandomGraphConfig(num_inputs=2, operators_per_tree=ops)
        model = build_load_model(random_tree_graph(config, seed=seed))
        plan = rod_place(model, [1.0] * nodes)
        assert len(plan.assignment) == model.num_operators
        assert set(plan.assignment) <= set(range(nodes))
        # Placed coefficients account for the whole model.
        assert np.allclose(
            plan.node_coefficients().sum(axis=0), model.column_totals()
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_plane_distance_bounded_by_ideal(self, seed):
        from repro import build_load_model
        from repro.core.rod import rod_place
        from repro.graphs import random_tree_graph
        from repro.graphs.generator import RandomGraphConfig

        config = RandomGraphConfig(num_inputs=3, operators_per_tree=6)
        model = build_load_model(random_tree_graph(config, seed=seed))
        plan = rod_place(model, [1.0, 1.0, 1.0])
        ideal = geometry.ideal_plane_distance(model.num_variables)
        assert plan.plane_distance() <= ideal + 1e-9


class TestArrivalInvariants:
    @given(
        st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1,
                 max_size=100),
        st.floats(0.01, 2.0, allow_nan=False),
    )
    def test_deterministic_arrivals_conserve_volume(self, rates, dt):
        counts = deterministic_arrivals(rates, dt)
        total = sum(rates) * dt
        assert abs(counts.sum() - total) <= 1.0 + 1e-6
        assert np.all(counts >= 0)

    @given(
        st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1,
                 max_size=100)
    )
    def test_prefix_sums_never_exceed_cumulative_rate(self, rates):
        counts = deterministic_arrivals(rates, 1.0)
        prefix = np.cumsum(counts)
        cumulative = np.cumsum(rates)
        assert np.all(prefix <= cumulative + 1e-6)


class TestLatencyStatsInvariants:
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0, allow_nan=False),
                      st.integers(1, 10)),
            min_size=1,
            max_size=50,
        )
    )
    def test_mean_between_min_and_max(self, samples):
        from repro.simulator.metrics import LatencyStats

        stats = LatencyStats()
        for value, count in samples:
            stats.record(value, count)
        values = [v for v, _ in samples]
        assert min(values) - 1e-9 <= stats.mean() <= max(values) + 1e-9
        assert stats.percentile(0) <= stats.percentile(50)
        assert stats.percentile(50) <= stats.percentile(100)
        assert stats.percentile(100) == pytest.approx(stats.maximum())
