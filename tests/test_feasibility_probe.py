"""Unit tests for empirical feasibility probing (Section 7.1 protocol)."""

import numpy as np
import pytest

from repro.core.rod import rod_place
from repro.simulator import FeasibilityProbe, empirical_feasible_fraction
from repro.workload.rates import ideal_rate_points


@pytest.fixture
def plan(small_tree_model, four_nodes):
    return rod_place(small_tree_model, four_nodes)


class TestProbe:
    def test_clearly_feasible_point(self, plan, small_tree_model,
                                    four_nodes):
        point = ideal_rate_points(small_tree_model, four_nodes, 1, seed=1)[0]
        probe = FeasibilityProbe(duration=5.0)
        assert probe.is_feasible(plan, point * 0.3)

    def test_clearly_infeasible_point(self, plan, small_tree_model,
                                      four_nodes):
        point = ideal_rate_points(small_tree_model, four_nodes, 1, seed=1)[0]
        probe = FeasibilityProbe(duration=5.0)
        assert not probe.is_feasible(plan, point * 10.0)

    def test_matches_analytic_predicate(self, plan, small_tree_model,
                                        four_nodes):
        probe = FeasibilityProbe(duration=8.0)
        feasible_set = plan.feasible_set()
        points = ideal_rate_points(
            small_tree_model, four_nodes, 6, seed=2, method="random"
        )
        for point in points:
            predicted = feasible_set.utilizations(point).max()
            if abs(predicted - 1.0) > 0.05:  # skip the boundary band
                assert probe.is_feasible(plan, point) == (predicted <= 1.0)


class TestEmpiricalFraction:
    def test_fraction_between_zero_and_one(self, plan, small_tree_model,
                                           four_nodes):
        points = ideal_rate_points(
            small_tree_model, four_nodes, 8, seed=3, method="random"
        )
        probe = FeasibilityProbe(duration=4.0)
        fraction = empirical_feasible_fraction(plan, points, probe)
        assert 0.0 <= fraction <= 1.0

    def test_tracks_qmc_ratio(self, plan, small_tree_model, four_nodes):
        """The Borealis protocol and the QMC volume agree."""
        points = ideal_rate_points(
            small_tree_model, four_nodes, 30, seed=4, method="random"
        )
        probe = FeasibilityProbe(duration=4.0)
        empirical = empirical_feasible_fraction(plan, points, probe)
        analytic = plan.volume_ratio(samples=4096)
        assert empirical == pytest.approx(analytic, abs=0.2)

    def test_validation(self, plan):
        with pytest.raises(ValueError, match="2-D"):
            empirical_feasible_fraction(plan, np.ones(3))
        with pytest.raises(ValueError, match="at least one"):
            empirical_feasible_fraction(plan, np.ones((0, 3)))
