"""Unit tests for the baseline placers (Section 7.2)."""

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import Delay, QueryGraph, random_tree_graph
from repro.graphs.generator import RandomGraphConfig
from repro.placement import (
    ConnectedPlacer,
    CorrelationPlacer,
    LLFPlacer,
    OptimalPlacer,
    RODPlacer,
    RandomPlacer,
    correlation_coefficient,
    enumerate_assignments,
)


class TestRandomPlacer:
    def test_equal_counts(self, small_tree_model, four_nodes):
        plan = RandomPlacer(seed=1).place(small_tree_model, four_nodes)
        counts = plan.operator_counts()
        assert counts.max() - counts.min() <= 1

    def test_seed_determinism(self, small_tree_model, four_nodes):
        a = RandomPlacer(seed=2).place(small_tree_model, four_nodes)
        b = RandomPlacer(seed=2).place(small_tree_model, four_nodes)
        assert a.assignment == b.assignment

    def test_seeds_differ(self, small_tree_model, four_nodes):
        a = RandomPlacer(seed=2).place(small_tree_model, four_nodes)
        b = RandomPlacer(seed=3).place(small_tree_model, four_nodes)
        assert a.assignment != b.assignment

    def test_empty_model_rejected(self, two_nodes):
        g = QueryGraph()
        g.add_input("I")
        with pytest.raises(ValueError, match="empty"):
            RandomPlacer().place(build_load_model(g), two_nodes)


class TestLLFPlacer:
    def test_balances_load_at_rate_point(self, four_nodes):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=30)
        model = build_load_model(random_tree_graph(config, seed=4))
        rates = np.ones(2)
        plan = LLFPlacer(rates=rates).place(model, four_nodes)
        loads = plan.node_coefficients() @ rates
        assert loads.max() / loads.min() < 1.3

    def test_largest_operator_goes_first_to_least_loaded(self, example_model,
                                                         two_nodes):
        plan = LLFPlacer(rates=[1.0, 1.0]).place(example_model, two_nodes)
        # o3 (load 9) and o2 (load 6) must land on different nodes.
        assert plan.node_of("o3") != plan.node_of("o2")

    def test_respects_heterogeneous_capacity(self):
        g = QueryGraph()
        i = g.add_input("I")
        for k in range(8):
            g.add_operator(Delay(f"d{k}", cost=1.0, selectivity=1.0), [i])
        model = build_load_model(g)
        plan = LLFPlacer(rates=[1.0]).place(model, np.array([3.0, 1.0]))
        counts = plan.operator_counts()
        assert counts[0] == 6 and counts[1] == 2

    def test_default_rates_all_ones(self, small_tree_model, four_nodes):
        LLFPlacer().place(small_tree_model, four_nodes)  # must not raise

    def test_rate_validation(self, small_tree_model, four_nodes):
        with pytest.raises(ValueError):
            LLFPlacer(rates=[1.0]).place(small_tree_model, four_nodes)
        with pytest.raises(ValueError):
            LLFPlacer(rates=[-1.0, 1.0, 1.0]).place(
                small_tree_model, four_nodes
            )


class TestConnectedPlacer:
    def test_keeps_more_arcs_local_than_random(self, four_nodes):
        config = RandomGraphConfig(num_inputs=3, operators_per_tree=15)
        model = build_load_model(random_tree_graph(config, seed=6))
        connected = ConnectedPlacer().place(model, four_nodes)
        rand = RandomPlacer(seed=1).place(model, four_nodes)
        assert connected.inter_node_arcs() < rand.inter_node_arcs()

    def test_all_operators_assigned(self, monitoring_model, four_nodes):
        plan = ConnectedPlacer().place(monitoring_model, four_nodes)
        assert len(plan.assignment) == monitoring_model.num_operators

    def test_load_roughly_balanced(self, four_nodes):
        config = RandomGraphConfig(num_inputs=4, operators_per_tree=20)
        model = build_load_model(random_tree_graph(config, seed=8))
        rates = np.ones(4)
        plan = ConnectedPlacer(rates=rates).place(model, four_nodes)
        loads = plan.node_coefficients() @ rates
        assert loads.max() <= 2.0 * loads.mean()


class TestCorrelationPlacer:
    def test_separates_correlated_operators(self, two_nodes):
        """Two heavy operators fed by the same input stream spike
        together; the correlation scheme must split them."""
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("h1", cost=5.0, selectivity=1.0), [i])
        g.add_operator(Delay("h2", cost=5.0, selectivity=1.0), [i])
        model = build_load_model(g)
        rng = np.random.default_rng(0)
        series = rng.uniform(0.1, 2.0, size=(64, 1))
        plan = CorrelationPlacer(series).place(model, two_nodes)
        assert plan.node_of("h1") != plan.node_of("h2")

    def test_series_validation(self):
        with pytest.raises(ValueError, match="time steps"):
            CorrelationPlacer(np.ones((1, 3)))
        with pytest.raises(ValueError, match=">= 0"):
            CorrelationPlacer(-np.ones((4, 3)))
        with pytest.raises(ValueError, match="slack"):
            CorrelationPlacer(np.ones((4, 3)), balance_slack=-0.1)

    def test_series_width_must_match_model(self, small_tree_model,
                                           four_nodes):
        placer = CorrelationPlacer(np.ones((16, 2)))
        with pytest.raises(ValueError, match="variables"):
            placer.place(small_tree_model, four_nodes)

    def test_correlation_coefficient(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation_coefficient(a, a) == pytest.approx(1.0)
        assert correlation_coefficient(a, -a) == pytest.approx(-1.0)
        assert correlation_coefficient(a, np.zeros(3)) == 0.0
        with pytest.raises(ValueError):
            correlation_coefficient(a, np.ones(4))


class TestOptimalPlacer:
    def test_enumeration_counts_homogeneous(self):
        # Restricted growth strings for m=3 ops, n=2 nodes: B(3 into <=2)=4.
        plans = list(enumerate_assignments(3, 2, homogeneous=True))
        assert len(plans) == 4
        assert all(p[0] == 0 for p in plans)

    def test_enumeration_counts_heterogeneous(self):
        plans = list(enumerate_assignments(2, 3, homogeneous=False))
        assert len(plans) == 9

    def test_enumeration_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_assignments(0, 2, True))
        with pytest.raises(ValueError):
            list(enumerate_assignments(2, 0, True))

    def test_optimal_at_least_rod_on_example(self, example_model, two_nodes):
        optimal = OptimalPlacer(objective="exact").place(
            example_model, two_nodes
        )
        rod = RODPlacer().place(example_model, two_nodes)
        assert (
            optimal.feasible_set().exact_volume()
            >= rod.feasible_set().exact_volume() - 1e-9
        )

    def test_qmc_objective_agrees_with_exact(self, example_model, two_nodes):
        exact = OptimalPlacer(objective="exact").place(
            example_model, two_nodes
        )
        qmc = OptimalPlacer(objective="qmc", samples=4096).place(
            example_model, two_nodes
        )
        assert (
            qmc.feasible_set().exact_volume()
            >= 0.95 * exact.feasible_set().exact_volume()
        )

    def test_refuses_large_instances(self, two_nodes):
        config = RandomGraphConfig(num_inputs=2, operators_per_tree=12)
        model = build_load_model(random_tree_graph(config, seed=9))
        placer = OptimalPlacer(max_operators=10)
        with pytest.raises(ValueError, match="refusing"):
            placer.place(model, two_nodes)

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="objective"):
            OptimalPlacer(objective="magic")


class TestRODPlacerAdapter:
    def test_adapter_matches_rod_place(self, small_tree_model, four_nodes):
        from repro.core.rod import rod_place

        adapter = RODPlacer().place(small_tree_model, four_nodes)
        direct = rod_place(small_tree_model, four_nodes)
        assert adapter.assignment == direct.assignment

    def test_repr(self):
        assert "rod" in repr(RODPlacer())
