"""Control-plane decision telemetry and drift detection.

Covers the PR's acceptance criteria end to end:

* every ``migration.applied`` event in a traced run maps to exactly one
  ``decision.evaluated`` record carrying the candidate set (with
  scores) and the observed load snapshot;
* no-op controller periods carry a structured reason from the closed
  :data:`repro.obs.decisions.NOOP_REASONS` vocabulary;
* a rate-spiked workload produces a ``drift.detected`` event whose
  timestamp strictly precedes the corrective migration;
* reconfiguration pauses (``node.stall``) link back to the decision
  that caused them;
* the failover controller's fault/recover hooks are recorded as
  decision triggers, with residual-volume candidate scores;
* the ``repro-rod why`` rendering and the diffable snapshots stay
  consistent with the trace.
"""

import numpy as np
import pytest

from repro.core.load_model import build_load_model
from repro.core.plans import placement_from_mapping
from repro.dynamics.controller import LoadBalancingController
from repro.dynamics.failover import FailoverController
from repro.faults import FaultEvent, FaultSchedule
from repro.graphs.generator import (
    RandomGraphConfig,
    monitoring_graph,
    random_tree_graph,
)
from repro.obs import MemorySink, Tracer
from repro.obs.decisions import (
    NOOP_REASONS,
    DecisionTelemetry,
    decision_snapshot,
    decisions_from_trace,
    explain_migrations,
    render_why_report,
    why_json_obj,
)
from repro.obs.drift import DriftMonitor, PageHinkley, drift_snapshot
from repro.simulator.engine import Simulator


def _skewed_placement(num_nodes=2):
    """Everything from input 0's chain on node 0, the rest on node 1.

    ``Deployment.plan`` spreads each chain across nodes (a spike then
    raises all nodes nearly equally), so migration tests need this
    deliberately lopsided mapping for the balancer to have work.
    """
    graph = monitoring_graph(2, seed=7)
    model = build_load_model(graph)
    mapping = {
        name: 0 if name.endswith("0") else 1
        for name in graph.operator_names
    }
    return placement_from_mapping(model, [1.0] * num_nodes, mapping)


def _spiked_series(steps=300, inputs=2, base=200.0):
    series = np.full((steps, inputs), base)
    series[100:250, 0] *= 6.0  # input 0 surges 6x from t=10s to t=25s
    return series


@pytest.fixture(scope="module")
def balance_run():
    """Skewed placement + rate spike under a traced balance controller."""
    placement = _skewed_placement()
    controller = LoadBalancingController(period=1.0)
    sink = MemorySink()
    simulator = Simulator(
        placement,
        step_seconds=0.1,
        tracer=Tracer(sink, validate=True),
        controller=controller,
    )
    result = simulator.run(rate_series=_spiked_series())
    return result, sink.events, controller


class TestPageHinkley:
    def test_step_up_detected_once(self):
        detector = PageHinkley()
        directions = [detector.update(100.0) for _ in range(10)]
        directions += [detector.update(600.0) for _ in range(10)]
        assert directions.count("up") == 1
        assert directions.count("down") == 0
        # Re-anchored at the new level: statistic reset below threshold.
        assert detector.statistic < detector.threshold

    def test_step_down_detected(self):
        detector = PageHinkley()
        for _ in range(10):
            detector.update(100.0)
        directions = [detector.update(20.0) for _ in range(10)]
        assert "down" in directions
        assert "up" not in directions

    def test_constant_signal_never_fires(self):
        detector = PageHinkley()
        assert all(
            detector.update(50.0) is None for _ in range(200)
        )

    def test_reversion_fires_opposite_direction(self):
        detector = PageHinkley()
        fired = []
        for value in [100.0] * 10 + [600.0] * 10 + [100.0] * 10:
            direction = detector.update(value)
            if direction:
                fired.append(direction)
        assert fired == ["up", "down"]

    def test_min_samples_suppresses_early_fire(self):
        detector = PageHinkley(min_samples=50)
        directions = [detector.update(100.0) for _ in range(10)]
        directions += [detector.update(600.0) for _ in range(10)]
        assert directions == [None] * 20

    def test_detection_captures_statistic_and_baseline(self):
        detector = PageHinkley()
        for _ in range(10):
            detector.update(100.0)
        while detector.update(600.0) is None:
            pass
        assert detector.last_statistic > detector.threshold
        # Baseline is the pre-crossing EWMA: between old and new level.
        assert 100.0 <= detector.last_baseline < 600.0

    def test_relative_deviation_is_scale_free(self):
        small, large = PageHinkley(), PageHinkley()
        fired_small, fired_large = [], []
        for value in [10.0] * 8 + [60.0] * 8:
            fired_small.append(small.update(value))
            fired_large.append(large.update(value * 1000.0))
        assert fired_small == fired_large

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(alpha=0.0)


class TestDriftMonitor:
    def test_scan_rate_series_finds_spike_at_step_start(self):
        monitor = DriftMonitor()
        found = monitor.scan_rate_series(_spiked_series(), 0.1)
        ups = [d for d in found if d.direction == "up"]
        assert ups and ups[0].signal == "arrival_rate"
        assert ups[0].input == 0
        # The surge starts at step 100 -> t=10.0s; causal detection
        # cannot precede it.
        assert ups[0].t == pytest.approx(10.0)

    def test_per_input_detectors_are_independent(self):
        monitor = DriftMonitor()
        monitor.scan_rate_series(_spiked_series(), 0.1)
        summary = monitor.summary()
        assert set(summary) == {"arrival_rate[0]", "arrival_rate[1]"}

    def test_observe_returns_detection_object(self):
        monitor = DriftMonitor()
        detection = None
        for step in range(20):
            value = 100.0 if step < 10 else 900.0
            got = monitor.observe("feasible_volume", step * 1.0, value)
            detection = detection or got
        assert detection is not None
        assert detection.signal == "feasible_volume"
        assert detection.input is None
        assert monitor.detections


class TestBalanceDecisionAudit:
    def test_every_poll_yields_one_decision(self, balance_run):
        _, events, _ = balance_run
        decisions = decisions_from_trace(events)
        # One control poll per period over the 30s horizon, one record
        # each, with unique monotonically-assigned ids.
        assert len(decisions) == 30
        assert len({d.decision for d in decisions}) == 30
        assert [d.decision for d in decisions] == sorted(
            d.decision for d in decisions
        )

    def test_migrations_map_one_to_one_to_decisions(self, balance_run):
        result, events, _ = balance_run
        assert result.migration_count >= 1
        explanations = explain_migrations(events)
        assert len(explanations) == result.migration_count
        for explanation in explanations:
            view = explanation.decision
            assert view is not None
            assert view.actions >= 1
            assert view.reason in ("migrate", "max-moves-exhausted")
            # The decision saw real per-node loads and weighed at least
            # the chosen candidate, with a numeric score.
            assert len(view.loads) == 2
            chosen = view.chosen
            assert len(chosen) == 1
            assert chosen[0]["operator"] == explanation.operator
            assert isinstance(chosen[0]["score"], float)

    def test_drift_detected_before_corrective_migration(self, balance_run):
        _, events, _ = balance_run
        drift = [e for e in events if e.type == "drift.detected"]
        applied = [e for e in events if e.type == "migration.applied"]
        assert drift and applied
        first_drift = min(e.t for e in drift)
        first_move = min(e.t for e in applied)
        assert first_drift < first_move
        fields = drift[0].fields
        assert fields["signal"] == "arrival_rate"
        assert fields["direction"] == "up"
        assert fields["observed"] > fields["baseline"]

    def test_noop_periods_carry_structured_reasons(self, balance_run):
        _, events, _ = balance_run
        no_ops = [
            d for d in decisions_from_trace(events) if d.actions == 0
        ]
        assert no_ops
        assert all(d.reason in NOOP_REASONS for d in no_ops)

    def test_stalls_link_back_to_their_decision(self, balance_run):
        _, events, _ = balance_run
        decision_ids = {
            d.decision for d in decisions_from_trace(events)
            if d.actions > 0
        }
        stalls = [e for e in events if e.type == "node.stall"]
        assert stalls
        for stall in stalls:
            assert int(stall.fields["decision"]) in decision_ids

    def test_pause_attribution_sums_stall_work(self, balance_run):
        _, events, _ = balance_run
        served = sum(
            e.pause_served for e in explain_migrations(events)
        )
        stalled = sum(
            float(e.fields.get("work", 0.0))
            for e in events
            if e.type == "node.stall" and "decision" in e.fields
        )
        assert served == pytest.approx(stalled)

    def test_decision_carries_volume_before_and_after(self, balance_run):
        _, events, _ = balance_run
        for view in decisions_from_trace(events):
            # Every periodic poll samples the current feasible volume;
            # the projected post-move volume exists only when the
            # decision actually issued moves.
            assert 0.0 <= view.volume_before <= 1.0
            if view.actions > 0:
                assert 0.0 <= view.volume_after <= 1.0
            else:
                assert view.volume_after is None

    def test_snapshot_is_consistent_with_trace(self, balance_run):
        result, events, _ = balance_run
        snapshot = decision_snapshot(events)
        assert snapshot["migrations"] == result.migration_count
        assert snapshot["linked_migrations"] == result.migration_count
        assert snapshot["evaluated"] == len(decisions_from_trace(events))
        assert sum(snapshot["triggers"].values()) == snapshot["evaluated"]
        assert set(snapshot["no_op"]) <= set(NOOP_REASONS)
        assert snapshot["rejected_candidates"] >= 0

    def test_drift_snapshot(self, balance_run):
        _, events, _ = balance_run
        snapshot = drift_snapshot(events)
        assert snapshot["detected"] >= 1
        assert "arrival_rate" in snapshot["by_signal"]
        assert snapshot["first_t"] == pytest.approx(10.0)

    def test_why_json_and_report_render(self, balance_run):
        result, events, _ = balance_run
        obj = why_json_obj(events)
        assert len(obj["migrations"]) == result.migration_count
        assert obj["migrations"][0]["decision"] is not None
        assert obj["summary"]["evaluated"] > 0
        report = render_why_report(events)
        assert "decisions evaluated" in report
        assert "drift detections" in report
        assert "migrations (" in report
        assert "no-op periods" in report

    def test_telemetry_detached_after_run(self, balance_run):
        _, _, controller = balance_run
        assert controller.telemetry is None


class TestFailoverDecisionAudit:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        graph = random_tree_graph(
            RandomGraphConfig(num_inputs=2, operators_per_tree=8),
            seed=11,
        )
        model = build_load_model(graph)
        mapping = {
            name: index % 3
            for index, name in enumerate(sorted(graph.operator_names))
        }
        placement = placement_from_mapping(model, [1.0] * 3, mapping)
        faults = FaultSchedule([
            FaultEvent(time=5.0, kind="node.crash", node=1),
            FaultEvent(time=12.0, kind="node.recover", node=1),
        ])
        controller = FailoverController(
            policy="volume", samples=64, failback=True
        )
        sink = MemorySink()
        simulator = Simulator(
            placement,
            step_seconds=0.1,
            tracer=Tracer(sink, validate=True),
            controller=controller,
            faults=faults,
        )
        result = simulator.run(rates=[40.0, 40.0], duration=20.0)
        return result, sink.events

    def test_fault_and_recover_triggers_recorded(self, chaos_run):
        _, events = chaos_run
        triggers = {
            d.trigger for d in decisions_from_trace(events)
        }
        assert {"periodic", "fault", "recover"} <= triggers

    def test_fault_decision_scores_survivors_by_volume(self, chaos_run):
        _, events = chaos_run
        fault_decisions = [
            d for d in decisions_from_trace(events) if d.trigger == "fault"
        ]
        assert len(fault_decisions) == 1
        decision = fault_decisions[0]
        assert decision.node == 1
        assert decision.reason == "migrate"
        assert decision.actions >= 1
        # Every displaced operator was scored against both survivors,
        # residual-volume ratios in [0, 1].
        assert len(decision.candidates) == 2 * decision.actions
        for candidate in decision.candidates:
            assert 0.0 <= candidate["score"] <= 1.0
            assert candidate["target"] in (0, 2)

    def test_every_failover_migration_links_to_a_decision(self, chaos_run):
        result, events = chaos_run
        explanations = explain_migrations(events)
        assert len(explanations) == result.migration_count
        assert all(e.decision is not None for e in explanations)
        fault_linked = [
            e for e in explanations if e.decision.trigger == "fault"
        ]
        recover_linked = [
            e for e in explanations if e.decision.trigger == "recover"
        ]
        assert fault_linked and recover_linked
        # Evacuation precedes failback.
        assert max(e.t for e in fault_linked) <= min(
            e.t for e in recover_linked
        )

    def test_periodic_polls_record_event_driven_idle(self, chaos_run):
        _, events = chaos_run
        periodic = [
            d for d in decisions_from_trace(events)
            if d.trigger == "periodic"
        ]
        assert periodic
        assert all(d.reason == "event-driven-idle" for d in periodic)
        assert all(d.actions == 0 for d in periodic)


class _BurningWatcher:
    """SloWatcher stub: always burning (duck-typed interface)."""

    burning = True
    last_burn_rate = 2.5

    def observe(self, t, latency, count):
        pass


class TestSloBurnTrigger:
    def test_burning_watcher_labels_decisions(self):
        placement = _skewed_placement()
        controller = LoadBalancingController(
            period=1.0, slo_watcher=_BurningWatcher()
        )
        sink = MemorySink()
        Simulator(
            placement,
            step_seconds=0.1,
            tracer=Tracer(sink, validate=True),
            controller=controller,
        ).run(rates=[100.0, 100.0], duration=5.0)
        decisions = decisions_from_trace(sink.events)
        assert decisions
        assert all(d.trigger == "slo-burn" for d in decisions)
        assert all(
            d.burn_rate == pytest.approx(2.5) for d in decisions
        )

    def test_labelling_does_not_change_behavior(self):
        """Same run with/without a burning watcher: identical result."""
        kwargs = dict(rates=[100.0, 100.0], duration=5.0)
        plain = Simulator(
            _skewed_placement(), step_seconds=0.1,
            controller=LoadBalancingController(period=1.0),
        ).run(**kwargs)
        watched = Simulator(
            _skewed_placement(), step_seconds=0.1,
            controller=LoadBalancingController(
                period=1.0, slo_watcher=_BurningWatcher()
            ),
        ).run(**kwargs)
        assert plain.tuples_out == watched.tuples_out
        assert plain.migration_count == watched.migration_count
        np.testing.assert_allclose(plain.node_busy, watched.node_busy)


class TestDisabledTracingPath:
    def test_untraced_run_attaches_no_telemetry(self):
        placement = _skewed_placement()
        controller = LoadBalancingController(period=1.0)
        result = Simulator(
            placement, step_seconds=0.1, controller=controller,
        ).run(rate_series=_spiked_series(steps=150))
        assert controller.telemetry is None
        assert result.tuples_out > 0

    def test_untraced_run_matches_traced_run(self):
        """Decision/drift telemetry must not change the simulation."""
        def run(tracer=None):
            return Simulator(
                _skewed_placement(), step_seconds=0.1, tracer=tracer,
                controller=LoadBalancingController(period=1.0),
            ).run(rate_series=_spiked_series(steps=150))

        plain = run()
        traced = run(Tracer(MemorySink(), validate=True))
        assert plain.tuples_out == traced.tuples_out
        assert plain.migration_count == traced.migration_count
        np.testing.assert_allclose(plain.node_busy, traced.node_busy)
        np.testing.assert_allclose(
            plain.latency.mean(), traced.latency.mean()
        )


class TestControllerWithoutTelemetryAttribute:
    def test_engine_synthesizes_minimal_records(self):
        """Third-party controllers (no ``telemetry`` attribute) still
        yield one ``decision.evaluated`` per poll, reason
        ``unobserved``/``migrate``."""

        class BareController:
            period = 1.0

            def decide(self, now, utilizations, assignment, model,
                       capacities, operator_loads=None):
                return []

        sink = MemorySink()
        Simulator(
            _skewed_placement(), step_seconds=0.1,
            tracer=Tracer(sink, validate=True),
            controller=BareController(),
        ).run(rates=[50.0, 50.0], duration=3.0)
        decisions = decisions_from_trace(sink.events)
        assert decisions
        assert all(d.reason == "unobserved" for d in decisions)
        assert all(d.controller == "BareController" for d in decisions)
        # Synthesized records still carry the observed load snapshot.
        assert all(len(d.loads) == 2 for d in decisions)


class TestDecisionMetrics:
    def test_counters_recorded_per_trigger_and_signal(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sink = MemorySink()
        Simulator(
            _skewed_placement(), step_seconds=0.1,
            tracer=Tracer(sink, validate=True), metrics=registry,
            controller=LoadBalancingController(period=1.0),
        ).run(rate_series=_spiked_series())
        doc = registry.to_json()
        decisions = doc["rod_decisions_total"]["samples"]
        assert sum(s["value"] for s in decisions) == len(
            decisions_from_trace(sink.events)
        )
        assert {"signal": "arrival_rate[0]"} in [
            s["labels"] for s in doc["rod_drift_statistic"]["samples"]
        ]
        drift_events = [
            e for e in sink.events if e.type == "drift.detected"
        ]
        counted = sum(
            s["value"]
            for s in doc["rod_drift_events_total"]["samples"]
        )
        assert counted == len(drift_events)


class TestTelemetryCollector:
    def test_drain_empties_pending(self):
        telemetry = DecisionTelemetry()
        record = telemetry.begin("periodic", "balance", [0.1, 0.2])
        record.add_candidate("op", 0, 1, -0.5, "chosen")
        drained = telemetry.drain()
        assert drained == [record]
        assert telemetry.drain() == []
        assert telemetry.records_created == 1
