"""Unit tests for the MILP balance placer."""

import numpy as np
import pytest

from repro import build_load_model
from repro.core.rod import rod_place
from repro.graphs import Delay, QueryGraph
from repro.placement import MilpBalancePlacer


def chain_free_model(costs_by_stream):
    """Independent single operators per input stream (no chains)."""
    g = QueryGraph()
    counter = 0
    for k, costs in enumerate(costs_by_stream):
        stream = g.add_input(f"I{k}")
        for cost in costs:
            g.add_operator(
                Delay(f"d{counter}", cost=cost, selectivity=1.0), [stream]
            )
            counter += 1
    return build_load_model(g)


class TestMilpBalancePlacer:
    def test_perfectly_splittable_load_reaches_weight_one(self):
        # Four equal operators per stream over two nodes: perfect balance.
        model = chain_free_model([(1.0, 1.0, 1.0, 1.0)])
        plan = MilpBalancePlacer().place(model, [1.0, 1.0])
        assert plan.weights().max() == pytest.approx(1.0)

    def test_optimal_on_indivisible_loads(self):
        # Loads 3,3,2 on two nodes: best max weight is (3+2)/8 normalized.
        model = chain_free_model([(3.0, 3.0, 2.0)])
        plan = MilpBalancePlacer().place(model, [1.0, 1.0])
        assert plan.weights().max() == pytest.approx(2 * 5.0 / 8.0)

    def test_never_worse_than_rod_on_max_weight(self, small_tree_model,
                                                four_nodes):
        milp_plan = MilpBalancePlacer().place(small_tree_model, four_nodes)
        rod_plan = rod_place(small_tree_model, four_nodes)
        assert (
            milp_plan.weights().max() <= rod_plan.weights().max() + 1e-6
        )

    def test_balance_is_not_volume(self, example_model, two_nodes):
        """The MILP optimizes MMAD only; ROD may still win on volume."""
        milp_plan = MilpBalancePlacer().place(example_model, two_nodes)
        rod_plan = rod_place(example_model, two_nodes)
        assert (
            rod_plan.feasible_set().exact_volume()
            >= 0.99 * milp_plan.feasible_set().exact_volume()
        )

    def test_heterogeneous_capacities(self):
        model = chain_free_model([(1.0, 1.0, 1.0, 1.0)])
        plan = MilpBalancePlacer().place(model, [3.0, 1.0])
        counts = plan.operator_counts()
        assert counts[0] == 3 and counts[1] == 1

    def test_size_guard(self):
        model = chain_free_model([(1.0,) * 30])
        placer = MilpBalancePlacer(max_variables=50)
        with pytest.raises(ValueError, match="exceeds"):
            placer.place(model, [1.0, 1.0])

    def test_every_operator_assigned_once(self, small_tree_model,
                                          four_nodes):
        plan = MilpBalancePlacer().place(small_tree_model, four_nodes)
        assert len(plan.assignment) == small_tree_model.num_operators
        assert np.allclose(
            plan.node_coefficients().sum(axis=0),
            small_tree_model.column_totals(),
        )
