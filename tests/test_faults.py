"""Tests for ``repro.faults``: schedules, chaos mode, engine injection,
failover, and the determinism guarantee the CI smoke job relies on."""

import json

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping
from repro.dynamics import (
    FailoverController,
    residual_volume_ratio,
)
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    chaos_schedule,
    load_fault_schedule,
)
from repro.graphs import Delay, QueryGraph
from repro.obs import MemorySink, Tracer, trace_digest
from repro.obs.runs import snapshot_from_result
from repro.simulator import Simulator


def make_plan(num_nodes=2, cost=0.004, capacities=None):
    g = QueryGraph()
    i = g.add_input("I")
    g.add_operator(Delay("a", cost=cost, selectivity=1.0), [i])
    g.add_operator(Delay("b", cost=cost, selectivity=1.0), [i])
    model = build_load_model(g)
    mapping = {"a": 0, "b": min(1, num_nodes - 1)}
    return placement_from_mapping(
        model, capacities or [1.0] * num_nodes, mapping
    )


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=1.0, kind="node.explode", node=0)
        with pytest.raises(ValueError, match="time must be >= 0"):
            FaultEvent(time=-1.0, kind="node.crash", node=0)
        with pytest.raises(ValueError, match="node index"):
            FaultEvent(time=1.0, kind="node.crash")
        with pytest.raises(ValueError, match="operator name"):
            FaultEvent(time=1.0, kind="operator.slowdown", factor=2.0)
        with pytest.raises(ValueError, match="factor > 0"):
            FaultEvent(time=1.0, kind="node.degrade", node=0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(time=1.0, kind="rate.spike", factor=2.0,
                       duration=0.0)

    def test_json_round_trip(self):
        event = FaultEvent(time=2.5, kind="node.degrade", node=1,
                           factor=0.5, duration=3.0)
        assert FaultEvent.from_json_obj(event.to_json_obj()) == event
        # None-valued fields are omitted on the wire.
        crash = FaultEvent(time=1.0, kind="node.crash", node=0)
        assert set(crash.to_json_obj()) == {"time", "kind", "node"}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultEvent.from_json_obj(
                {"time": 1.0, "kind": "node.crash", "node": 0, "boom": 1}
            )
        with pytest.raises(ValueError, match="'time' and 'kind'"):
            FaultEvent.from_json_obj({"kind": "node.crash", "node": 0})

    def test_describe(self):
        text = FaultEvent(time=1.0, kind="operator.slowdown",
                          operator="agg", factor=2.0,
                          duration=1.5).describe()
        assert "operator.slowdown" in text
        assert "operator=agg" in text and "factor=2" in text


class TestFaultSchedule:
    def test_orders_by_time_then_kind(self):
        schedule = FaultSchedule([
            FaultEvent(time=5.0, kind="node.recover", node=0),
            FaultEvent(time=1.0, kind="rate.spike", factor=2.0),
            FaultEvent(time=1.0, kind="node.crash", node=0),
        ])
        kinds = [e.kind for e in schedule]
        assert kinds == ["node.crash", "rate.spike", "node.recover"]

    def test_validate_rejects_bad_schedules(self):
        with pytest.raises(ValueError, match="out of range"):
            FaultSchedule([
                FaultEvent(time=1.0, kind="node.crash", node=5)
            ]).validate(2)
        with pytest.raises(ValueError, match="unknown operator"):
            FaultSchedule([
                FaultEvent(time=1.0, kind="operator.slowdown",
                           operator="ghost", factor=2.0)
            ]).validate(2, operator_names=("a", "b"))
        with pytest.raises(ValueError, match="not down"):
            FaultSchedule([
                FaultEvent(time=1.0, kind="node.recover", node=0)
            ]).validate(2)
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule([
                FaultEvent(time=1.0, kind="node.crash", node=0),
                FaultEvent(time=2.0, kind="node.crash", node=0),
            ]).validate(3)
        with pytest.raises(ValueError, match="every node"):
            FaultSchedule([
                FaultEvent(time=1.0, kind="node.crash", node=0),
                FaultEvent(time=2.0, kind="node.crash", node=1),
            ]).validate(2)

    def test_apply_rate_events(self):
        series = np.ones((10, 2))
        schedule = FaultSchedule([
            FaultEvent(time=0.2, kind="rate.spike", factor=3.0,
                       duration=0.3),
        ])
        out = schedule.apply_rate_events(series, step_seconds=0.1)
        assert out is not series  # copy-on-write
        np.testing.assert_array_equal(series, np.ones((10, 2)))
        np.testing.assert_array_equal(out[2:5], 3.0 * np.ones((3, 2)))
        np.testing.assert_array_equal(out[:2], np.ones((2, 2)))
        np.testing.assert_array_equal(out[5:], np.ones((5, 2)))

    def test_apply_rate_events_no_spikes_is_identity(self):
        series = np.ones((4, 1))
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind="node.crash", node=0)
        ])
        assert schedule.apply_rate_events(series, 0.1) is series

    def test_json_round_trip_and_loader(self, tmp_path):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind="node.crash", node=0),
            FaultEvent(time=4.0, kind="node.recover", node=0),
        ])
        path = tmp_path / "faults.json"
        path.write_text(schedule.to_json())
        loaded = load_fault_schedule(str(path))
        assert loaded.to_json_obj() == schedule.to_json_obj()
        # The documented wrapper form works too.
        wrapped = FaultSchedule.from_json_obj(
            {"faults": schedule.to_json_obj()}
        )
        assert wrapped.to_json_obj() == schedule.to_json_obj()
        with pytest.raises(ValueError, match="list of events"):
            FaultSchedule.from_json_obj({"nope": []})


class TestChaosSchedule:
    def test_deterministic_in_seed(self):
        a = chaos_schedule(3, horizon=20.0, seed=11,
                           operator_names=("x", "y"))
        b = chaos_schedule(3, horizon=20.0, seed=11,
                           operator_names=("x", "y"))
        assert a.to_json_obj() == b.to_json_obj()
        c = chaos_schedule(3, horizon=20.0, seed=12,
                           operator_names=("x", "y"))
        assert a.to_json_obj() != c.to_json_obj()

    def test_generates_every_category(self):
        schedule = chaos_schedule(3, horizon=20.0, seed=5,
                                  operator_names=("x",))
        kinds = {e.kind for e in schedule}
        assert {"node.crash", "node.recover", "node.degrade",
                "operator.slowdown", "rate.spike"} <= kinds
        assert kinds <= set(FAULT_KINDS)

    def test_single_node_cluster_never_crashes(self):
        schedule = chaos_schedule(1, horizon=20.0, seed=5)
        assert all(e.kind != "node.crash" for e in schedule)

    def test_validation(self):
        with pytest.raises(ValueError):
            chaos_schedule(0, horizon=10.0, seed=1)
        with pytest.raises(ValueError):
            chaos_schedule(2, horizon=0.0, seed=1)
        with pytest.raises(ValueError):
            chaos_schedule(2, horizon=10.0, seed=1, intensity=0.0)

    @staticmethod
    def _max_simultaneous_down(schedule):
        """Walk crash/recover events in time order; peak downed count."""
        down = set()
        peak = 0
        for event in sorted(schedule, key=lambda e: e.time):
            if event.kind == "node.crash":
                down.add(event.node)
            elif event.kind == "node.recover":
                down.discard(event.node)
            peak = max(peak, len(down))
        return peak

    def test_high_intensity_two_node_cluster_keeps_a_survivor(self):
        """Regression: staggered crash cycles never take down both
        nodes of a two-node cluster at once, even at intensity far
        above the node count."""
        for seed in range(12):
            schedule = chaos_schedule(
                2, horizon=30.0, seed=seed, intensity=8.0
            )
            assert self._max_simultaneous_down(schedule) <= 1
            crashes = [e for e in schedule if e.kind == "node.crash"]
            assert len(crashes) == 8

    def test_high_intensity_eventually_exercises_every_node(self):
        victims = set()
        for seed in range(8):
            schedule = chaos_schedule(
                2, horizon=30.0, seed=seed, intensity=8.0
            )
            victims |= {
                e.node for e in schedule if e.kind == "node.crash"
            }
        assert victims == {0, 1}

    def test_single_node_no_crash_even_at_extreme_intensity(self):
        schedule = chaos_schedule(
            1, horizon=20.0, seed=3, intensity=50.0
        )
        assert all(e.kind != "node.crash" for e in schedule)

    def test_tiny_horizon_durations_stay_positive(self):
        """Regression: sub-5ms horizons used to round fault durations
        to zero and fail schedule validation."""
        for seed in range(6):
            schedule = chaos_schedule(
                3, horizon=0.004, seed=seed, intensity=4.0
            )
            for event in schedule:
                if event.duration is not None:
                    assert event.duration > 0.0
                assert event.time >= 0.0

    def test_crash_and_recover_counts_match(self):
        schedule = chaos_schedule(4, horizon=25.0, seed=7, intensity=5.0)
        crashes = sum(1 for e in schedule if e.kind == "node.crash")
        recovers = sum(1 for e in schedule if e.kind == "node.recover")
        assert crashes == recovers == 5


class TestEngineFaultInjection:
    RATES = [100.0]
    DURATION = 8.0

    def run_plan(self, faults=None, controller=None, tracer=None,
                 num_nodes=2):
        plan = make_plan(num_nodes=num_nodes)
        sim = Simulator(plan, step_seconds=0.1, faults=faults,
                        controller=controller, tracer=tracer)
        return sim.run(rates=self.RATES, duration=self.DURATION)

    def test_eager_validation(self):
        bad = FaultSchedule([
            FaultEvent(time=1.0, kind="node.crash", node=9)
        ])
        with pytest.raises(ValueError, match="out of range"):
            self.run_plan(faults=bad)

    def test_crash_strands_work_without_failover(self):
        base = self.run_plan()
        crash = FaultSchedule([
            FaultEvent(time=2.0, kind="node.crash", node=1)
        ])
        crashed = self.run_plan(faults=crash)
        assert crashed.tuples_out < base.tuples_out
        assert crashed.stranded_tuples > 0
        assert crashed.fault_count == 1
        assert "faults=1" in crashed.summary()
        assert "stranded" in crashed.summary()

    def test_failover_restores_throughput(self):
        """The headline acceptance criterion: with a FailoverController
        the crashed node's operators keep producing; without one the
        pipeline stalls."""
        base = self.run_plan()
        crash = FaultSchedule([
            FaultEvent(time=2.0, kind="node.crash", node=1)
        ])
        rescued = self.run_plan(
            faults=crash, controller=FailoverController(samples=128)
        )
        assert rescued.tuples_out == base.tuples_out
        assert rescued.stranded_tuples == 0
        assert rescued.migration_count >= 1
        stalled = self.run_plan(faults=crash)
        assert stalled.tuples_out < rescued.tuples_out

    def test_recovery_resumes_queued_work(self):
        base = self.run_plan()
        cycle = FaultSchedule([
            FaultEvent(time=2.0, kind="node.crash", node=1),
            FaultEvent(time=4.0, kind="node.recover", node=1),
        ])
        recovered = self.run_plan(faults=cycle)
        assert recovered.stranded_tuples == 0
        assert recovered.tuples_out == base.tuples_out

    def test_degrade_raises_latency(self):
        base = self.run_plan()
        brownout = FaultSchedule([
            FaultEvent(time=1.0, kind="node.degrade", node=0,
                       factor=0.25, duration=4.0)
        ])
        degraded = self.run_plan(faults=brownout)
        assert degraded.latency.mean() > base.latency.mean()
        # Windowed: capacity is restored, so the run still drains.
        assert degraded.stranded_tuples == 0

    def test_operator_slowdown_inflates_work(self):
        base = self.run_plan()
        slow = FaultSchedule([
            FaultEvent(time=1.0, kind="operator.slowdown", operator="a",
                       factor=3.0, duration=4.0)
        ])
        slowed = self.run_plan(faults=slow)
        assert (
            slowed.operator_stats["a"].work_seconds
            > base.operator_stats["a"].work_seconds
        )
        assert slowed.operator_stats["b"].work_seconds == pytest.approx(
            base.operator_stats["b"].work_seconds
        )

    def test_rate_spike_adds_arrivals(self):
        base = self.run_plan()
        spike = FaultSchedule([
            FaultEvent(time=2.0, kind="rate.spike", factor=2.0,
                       duration=2.0)
        ])
        spiked = self.run_plan(faults=spike)
        assert spiked.tuples_in > base.tuples_in

    def test_fault_events_traced(self):
        sink = MemorySink()
        schedule = FaultSchedule([
            FaultEvent(time=2.0, kind="node.degrade", node=0,
                       factor=0.5, duration=1.0),
            FaultEvent(time=3.0, kind="node.crash", node=1),
        ])
        self.run_plan(faults=schedule, tracer=Tracer(sink),
                      controller=FailoverController(samples=64))
        by_type = {}
        for event in sink.events:
            by_type.setdefault(event.type, []).append(event)
        assert len(by_type["fault.injected"]) == 2
        assert len(by_type["fault.reverted"]) == 1  # the brownout window
        crash = [e for e in by_type["fault.injected"]
                 if e.fields["kind"] == "node.crash"][0]
        assert crash.fields["node"] == 1
        # Failover shows up as a migration with the failover reason.
        applied = by_type["migration.applied"]
        assert any(e.fields.get("reason") == "failover" for e in applied)
        end = by_type["sim.end"][0]
        assert end.fields["faults"] == 2
        assert end.fields["stranded_tuples"] == 0

    def test_fault_free_trace_has_no_fault_fields(self):
        sink = MemorySink()
        self.run_plan(tracer=Tracer(sink))
        end = [e for e in sink.events if e.type == "sim.end"][0]
        assert "faults" not in end.fields
        assert "stranded_tuples" not in end.fields


class TestDeterminism:
    def chaos_run(self, seed=9):
        plan = make_plan(num_nodes=3)
        names = plan.model.graph.operator_names
        schedule = chaos_schedule(3, horizon=8.0, seed=seed,
                                  operator_names=names)
        sink = MemorySink()
        result = Simulator(
            plan, step_seconds=0.1, faults=schedule,
            controller=FailoverController(samples=64),
            tracer=Tracer(sink),
        ).run(rates=[100.0], duration=8.0)
        return result, sink.events

    def test_same_seed_is_bit_identical(self):
        """Same chaos seed => same trace digest and same snapshot —
        the CI determinism gate in miniature."""
        first, events_a = self.chaos_run()
        second, events_b = self.chaos_run()
        assert trace_digest(events_a) == trace_digest(events_b)
        assert snapshot_from_result(first) == snapshot_from_result(second)
        # Wall clocks differ between repeats; the digest must not see
        # them, and the raw event streams must agree on everything else.
        assert [e.type for e in events_a] == [e.type for e in events_b]

    def test_snapshot_fault_keys_are_conditional(self):
        plan = make_plan()
        clean = Simulator(plan, step_seconds=0.1).run(
            rates=[100.0], duration=4.0
        )
        snapshot = snapshot_from_result(clean)
        assert "faults" not in snapshot
        assert "stranded_tuples" not in snapshot
        faulty, _ = self.chaos_run()
        faulty_snapshot = snapshot_from_result(faulty)
        assert faulty_snapshot["faults"]
        assert "stranded_tuples" in faulty_snapshot


class TestFailoverController:
    def make_model(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("a", cost=0.3, selectivity=1.0), [i])
        g.add_operator(Delay("b", cost=0.2, selectivity=1.0), [i])
        g.add_operator(Delay("c", cost=0.1, selectivity=1.0), [i])
        return build_load_model(g)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="unknown failover policy"):
            FailoverController(policy="hope")
        with pytest.raises(ValueError):
            FailoverController(samples=0)

    def test_decide_never_moves(self):
        model = self.make_model()
        controller = FailoverController()
        moves = controller.decide(
            1.0, np.array([0.9, 0.1]), {"a": 0, "b": 1, "c": 1},
            model, np.ones(2),
        )
        assert moves == []

    def test_failed_node_evacuated_to_survivors(self):
        model = self.make_model()
        assignment = {"a": 0, "b": 1, "c": 0}
        for policy in ("volume", "least_loaded"):
            controller = FailoverController(policy=policy, samples=64)
            moves = controller.on_node_failed(
                2.0, 0, assignment, model, np.ones(3), failed_nodes=[0]
            )
            assert sorted(m.operator for m in moves) == ["a", "c"]
            assert all(m.source == 0 for m in moves)
            assert all(m.target in (1, 2) for m in moves)

    def test_no_survivors_is_a_noop(self):
        model = self.make_model()
        controller = FailoverController()
        moves = controller.on_node_failed(
            2.0, 0, {"a": 0, "b": 0, "c": 0}, model, np.ones(1),
            failed_nodes=[0],
        )
        assert moves == []

    def test_failback_returns_operators_home(self):
        model = self.make_model()
        home = {"a": 0, "b": 1, "c": 0}
        controller = FailoverController(failback=True, samples=64)
        controller.decide(0.0, np.zeros(2), home, model, np.ones(2))
        displaced = {"a": 1, "b": 1, "c": 1}
        back = controller.on_node_recovered(
            5.0, 0, displaced, model, np.ones(2), failed_nodes=[]
        )
        assert sorted(m.operator for m in back) == ["a", "c"]
        assert all(m.target == 0 for m in back)
        # Without failback, recovery changes nothing.
        lazy = FailoverController(samples=64)
        lazy.decide(0.0, np.zeros(2), home, model, np.ones(2))
        assert lazy.on_node_recovered(
            5.0, 0, displaced, model, np.ones(2), failed_nodes=[]
        ) == []


class TestResidualVolume:
    def make_model(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("a", cost=0.4, selectivity=1.0), [i])
        g.add_operator(Delay("b", cost=0.4, selectivity=1.0), [i])
        return build_load_model(g)

    def test_stranded_operator_collapses_ratio(self):
        model = self.make_model()
        assignment = {"a": 0, "b": 1}
        stranded = residual_volume_ratio(
            model, [1.0, 1.0], assignment, failed_nodes=[1], samples=128
        )
        assert stranded == 0.0
        ignored = residual_volume_ratio(
            model, [1.0, 1.0], assignment, failed_nodes=[1], samples=128,
            ignore_stranded=True,
        )
        assert ignored > 0.0

    def test_failed_over_assignment_scores_positive(self):
        model = self.make_model()
        rescued = residual_volume_ratio(
            model, [1.0, 1.0], {"a": 0, "b": 0}, failed_nodes=[1],
            samples=128,
        )
        assert 0.0 < rescued <= 1.0

    def test_all_nodes_failed_is_zero(self):
        model = self.make_model()
        assert residual_volume_ratio(
            model, [1.0], {"a": 0, "b": 0}, failed_nodes=[0]
        ) == 0.0

    def test_no_failures_matches_intact_cluster(self):
        model = self.make_model()
        ratio = residual_volume_ratio(
            model, [1.0, 1.0], {"a": 0, "b": 1}, samples=256
        )
        assert 0.0 < ratio <= 1.0


class TestFaultToleranceExperiment:
    def test_failover_restores_throughput_baseline_stalls(self):
        from repro.experiments import fault_tolerance

        rows = fault_tolerance.run(
            operators_per_tree=6, duration=10.0, samples=128, seed=23
        )
        by_key = {
            (row["algorithm"], row["variant"]): row for row in rows
        }
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"rod", "llf", "correlation"}
        for algorithm in algorithms:
            crash = by_key[(algorithm, "crash")]
            rescued = by_key[(algorithm, "crash_failover_volume")]
            # No-controller baseline stalls: it strands queued work and
            # loses throughput...
            assert crash["stranded_tuples"] > 0
            assert crash["throughput_ratio"] < 0.9
            assert crash["residual_volume_ratio"] == 0.0
            assert crash["recovery_latency_s"] is None
            # ...while failover restores the pipeline.
            assert rescued["throughput_ratio"] > 0.95
            assert rescued["stranded_tuples"] == 0
            assert rescued["failover_moves"] >= 1
            assert rescued["recovery_latency_s"] is not None
            assert rescued["residual_volume_ratio"] > 0.0
