"""Unit tests for the 2-D feasible-set renderer."""

import numpy as np
import pytest

from repro import placement_from_mapping
from repro.core.feasible_set import FeasibleSet
from repro.core.viz import compare_feasible_sets, render_feasible_set


@pytest.fixture
def plan(example_model, two_nodes):
    return placement_from_mapping(
        example_model, two_nodes, {"o1": 0, "o2": 0, "o3": 1, "o4": 1}
    )


class TestRender:
    def test_contains_feasible_and_wasted_cells(self, plan):
        text = render_feasible_set(plan.feasible_set())
        assert "#" in text
        assert "." in text
        assert "> r1" in text

    def test_feasible_fraction_roughly_half_for_plan_a(self, plan):
        text = render_feasible_set(plan.feasible_set(), width=80, height=40)
        hashes = text.count("#")
        dots = text.count(".")
        # Plan (a) wastes half the ideal set (Figure 5): the grid ratio
        # should land near 0.5 (the legend line adds a few stray dots).
        assert 0.35 <= hashes / (hashes + dots) <= 0.6

    def test_title_included(self, plan):
        text = render_feasible_set(plan.feasible_set(), title="Plan (a)")
        assert text.splitlines()[0] == "Plan (a)"

    def test_ideal_plan_fills_everything(self):
        # L^n proportional to totals on one node: hyperplane == ideal.
        fs = FeasibleSet(np.array([[10.0, 11.0]]), np.array([1.0]))
        text = render_feasible_set(fs)
        body = "\n".join(text.splitlines()[:-2])
        assert "." not in body

    def test_lower_bound_marked(self):
        fs = FeasibleSet(
            np.array([[10.0, 11.0]]),
            np.array([1.0]),
            lower_bound=np.array([0.03, 0.0]),
        )
        assert "*" in render_feasible_set(fs)

    def test_rejects_other_dimensions(self):
        fs = FeasibleSet(np.ones((1, 3)), np.array([1.0]))
        with pytest.raises(ValueError, match="2-D"):
            render_feasible_set(fs)

    def test_rejects_tiny_canvas(self, plan):
        with pytest.raises(ValueError, match="at least"):
            render_feasible_set(plan.feasible_set(), width=4, height=2)

    def test_rejects_unloaded_variable(self):
        fs = FeasibleSet(
            np.array([[1.0, 0.0]]),
            np.array([1.0]),
            column_totals=np.array([1.0, 0.0]),
        )
        with pytest.raises(ValueError, match="carry load"):
            render_feasible_set(fs)


class TestCompare:
    def test_two_plots_with_labels(self, plan, example_model, two_nodes):
        other = placement_from_mapping(
            example_model, two_nodes, {"o1": 0, "o2": 1, "o3": 0, "o4": 1}
        )
        text = compare_feasible_sets(
            plan.feasible_set(),
            other.feasible_set(),
            labels=("chains apart", "chains split"),
        )
        assert "chains apart" in text
        assert "chains split" in text
        assert text.count("> r1") == 2
