"""Soft performance guards on the hot paths.

These protect the property the paper leans on — ROD plans in effectively
no time even at the largest evaluated scale — plus the estimation paths
every experiment hammers.  Bounds are deliberately loose (10x typical)
so they only catch real regressions, not machine noise.
"""

import time

import pytest

from repro import build_load_model, rod_place
from repro.graphs import random_tree_graph
from repro.graphs.generator import RandomGraphConfig


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def paper_scale_model():
    """The paper's largest workload: 200 operators over 5 inputs."""
    config = RandomGraphConfig(num_inputs=5, operators_per_tree=40)
    return build_load_model(random_tree_graph(config, seed=99))


class TestPlanningSpeed:
    def test_rod_paper_scale_under_a_second(self, paper_scale_model):
        _, seconds = timed(rod_place, paper_scale_model, [1.0] * 10)
        assert seconds < 1.0

    def test_model_build_is_fast(self):
        config = RandomGraphConfig(num_inputs=5, operators_per_tree=40)
        graph = random_tree_graph(config, seed=100)
        _, seconds = timed(build_load_model, graph)
        assert seconds < 0.5


class TestEstimationSpeed:
    def test_volume_ratio_4096_samples_fast(self, paper_scale_model):
        plan = rod_place(paper_scale_model, [1.0] * 10)
        fs = plan.feasible_set()
        fs.volume_ratio(samples=256)  # warm any caches
        _, seconds = timed(fs.volume_ratio, samples=4096)
        assert seconds < 0.5

    def test_simulation_throughput(self, paper_scale_model):
        """~10 simulated seconds of a 200-operator graph in bounded time."""
        from repro.simulator import Simulator
        from repro.workload import steady_trace_series

        plan = rod_place(paper_scale_model, [1.0] * 10)
        series = steady_trace_series(
            paper_scale_model, [1.0] * 10, 100, 0.5, seed=1
        )
        _, seconds = timed(
            Simulator(plan, step_seconds=0.1).run, rate_series=series
        )
        assert seconds < 10.0
