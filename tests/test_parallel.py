"""Tests for the deterministic experiment fan-out (``repro.parallel``)."""

import math

import numpy as np
import pytest

from repro import parallel
from repro.experiments.common import make_model, volume_ratio_runs
from repro.obs.metrics import MetricsRegistry


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert parallel.resolve_jobs(3) == 3
        assert parallel.resolve_jobs(1) == 1

    def test_zero_and_none_mean_all_cores(self):
        assert parallel.resolve_jobs(0) >= 1
        assert parallel.resolve_jobs(None) == parallel.resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parallel.resolve_jobs(-1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert parallel.derive_seed(42, 3) == parallel.derive_seed(42, 3)

    def test_distinct_across_indices_and_bases(self):
        seeds = {parallel.derive_seed(base, index)
                 for base in range(10) for index in range(100)}
        assert len(seeds) == 1000

    def test_neighbouring_bases_do_not_alias(self):
        # base_seed + index collides trivially (e.g. (7, 1) vs (8, 0));
        # the mixed derivation must not.
        assert parallel.derive_seed(7, 1) != parallel.derive_seed(8, 0)

    def test_derive_seeds_matches_elementwise(self):
        assert parallel.derive_seeds(5, 4) == [
            parallel.derive_seed(5, i) for i in range(4)
        ]
        with pytest.raises(ValueError):
            parallel.derive_seeds(5, -1)


class TestParallelMap:
    def test_inline_results_in_order(self):
        assert parallel.parallel_map(str, range(10), jobs=1) == [
            str(i) for i in range(10)
        ]

    def test_process_results_in_order(self):
        assert parallel.parallel_map(str, range(20), jobs=4) == [
            str(i) for i in range(20)
        ]

    def test_process_equals_inline(self):
        tasks = [float(i) for i in range(16)]
        assert parallel.parallel_map(math.sqrt, tasks, jobs=3) == (
            parallel.parallel_map(math.sqrt, tasks, jobs=1)
        )

    def test_single_task_stays_inline(self):
        before = parallel.parallel_stats()["pools"]
        assert parallel.parallel_map(str, [7], jobs=8) == ["7"]
        assert parallel.parallel_stats()["pools"] == before

    def test_empty_tasks(self):
        assert parallel.parallel_map(str, [], jobs=4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel.parallel_map(str, [1], chunksize=0)

    def test_registry_records_tasks(self):
        registry = MetricsRegistry()
        parallel.parallel_map(str, range(5), jobs=1, registry=registry)
        rendered = registry.render_prometheus()
        assert 'repro_parallel_tasks{mode="inline"} 5' in rendered


class TestExperimentEquivalence:
    def test_volume_ratio_runs_identical_for_any_jobs(self):
        # The acceptance bar: fanning runs out to worker processes
        # changes nothing, bit for bit.
        model = make_model(3, 6, seed=11)
        capacities = [1.0] * 4
        sequential = volume_ratio_runs(
            "random", model, capacities, repeats=6, samples=512,
            base_seed=3, jobs=1,
        )
        fanned = volume_ratio_runs(
            "random", model, capacities, repeats=6, samples=512,
            base_seed=3, jobs=4,
        )
        np.testing.assert_array_equal(sequential, fanned)

    def test_rate_independent_algorithm_identical_too(self):
        model = make_model(2, 5, seed=2)
        capacities = [1.0] * 3
        np.testing.assert_array_equal(
            volume_ratio_runs("rod", model, capacities, repeats=4,
                              samples=256, base_seed=1, jobs=1),
            volume_ratio_runs("rod", model, capacities, repeats=4,
                              samples=256, base_seed=1, jobs=2),
        )


class TestMetricsSnapshot:
    def test_publish_metrics_exports_counters(self):
        parallel.parallel_map(str, range(3), jobs=1)
        registry = MetricsRegistry()
        parallel.publish_metrics(registry)
        rendered = registry.render_prometheus()
        assert 'repro_parallel_tasks{mode="inline"}' in rendered
        assert "repro_parallel_pools" in rendered
