"""Tests for the deterministic experiment fan-out (``repro.parallel``)."""

import math
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro import parallel
from repro.experiments.common import make_model, volume_ratio_runs
from repro.obs.metrics import MetricsRegistry


def _boom(task):
    raise ValueError(f"task {task} failed")


def _die_if_negative(task):
    if task < 0:
        os._exit(1)
    return task * 2


def _reseed_abs(task, seed):
    assert isinstance(seed, int)
    return abs(task)


def _die_in_worker(task):
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return task + 1


def _sleep_for(task):
    time.sleep(task)
    return task


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert parallel.resolve_jobs(3) == 3
        assert parallel.resolve_jobs(1) == 1

    def test_zero_and_none_mean_all_cores(self):
        assert parallel.resolve_jobs(0) >= 1
        assert parallel.resolve_jobs(None) == parallel.resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parallel.resolve_jobs(-1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert parallel.derive_seed(42, 3) == parallel.derive_seed(42, 3)

    def test_distinct_across_indices_and_bases(self):
        seeds = {parallel.derive_seed(base, index)
                 for base in range(10) for index in range(100)}
        assert len(seeds) == 1000

    def test_neighbouring_bases_do_not_alias(self):
        # base_seed + index collides trivially (e.g. (7, 1) vs (8, 0));
        # the mixed derivation must not.
        assert parallel.derive_seed(7, 1) != parallel.derive_seed(8, 0)

    def test_derive_seeds_matches_elementwise(self):
        assert parallel.derive_seeds(5, 4) == [
            parallel.derive_seed(5, i) for i in range(4)
        ]
        with pytest.raises(ValueError):
            parallel.derive_seeds(5, -1)


class TestParallelMap:
    def test_inline_results_in_order(self):
        assert parallel.parallel_map(str, range(10), jobs=1) == [
            str(i) for i in range(10)
        ]

    def test_process_results_in_order(self):
        assert parallel.parallel_map(str, range(20), jobs=4) == [
            str(i) for i in range(20)
        ]

    def test_process_equals_inline(self):
        tasks = [float(i) for i in range(16)]
        assert parallel.parallel_map(math.sqrt, tasks, jobs=3) == (
            parallel.parallel_map(math.sqrt, tasks, jobs=1)
        )

    def test_single_task_stays_inline(self):
        before = parallel.parallel_stats()["pools"]
        assert parallel.parallel_map(str, [7], jobs=8) == ["7"]
        assert parallel.parallel_stats()["pools"] == before

    def test_empty_tasks(self):
        assert parallel.parallel_map(str, [], jobs=4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel.parallel_map(str, [1], chunksize=0)
        with pytest.raises(ValueError):
            parallel.parallel_map(str, [1], timeout=0.0)
        with pytest.raises(ValueError):
            parallel.parallel_map(str, [1], pool_retries=-1)

    def test_registry_records_tasks(self):
        registry = MetricsRegistry()
        parallel.parallel_map(str, range(5), jobs=1, registry=registry)
        rendered = registry.render_prometheus()
        assert 'repro_parallel_tasks{mode="inline"} 5' in rendered


class TestFailureHandling:
    def test_inline_raise_propagates_and_records(self):
        """Regression: a raising task must not skip the bookkeeping."""
        before = parallel.parallel_stats()
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="task 2 failed"):
            parallel.parallel_map(
                _boom, [2], jobs=1, registry=registry
            )
        after = parallel.parallel_stats()
        assert after["failures_inline"] == before["failures_inline"] + 1
        assert after["inline"] == before["inline"] + 1
        rendered = registry.render_prometheus()
        assert 'repro_parallel_failures{mode="inline"} 1' in rendered

    def test_process_raise_propagates_and_records(self):
        before = parallel.parallel_stats()
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="failed"):
            parallel.parallel_map(
                _boom, [1, 2, 3], jobs=2, registry=registry
            )
        after = parallel.parallel_stats()
        assert (
            after["failures_process"] == before["failures_process"] + 1
        )
        assert 'repro_parallel_failures{mode="process"} 1' in (
            registry.render_prometheus()
        )

    def test_broken_pool_keeps_completed_results_and_retries(self):
        """A dying worker loses neither the finished results nor the
        batch: unfinished tasks retry in a fresh pool, optionally
        re-parameterized through ``reseed``."""
        before = parallel.parallel_stats()
        results = parallel.parallel_map(
            _die_if_negative, [1, 2, -3, 4], jobs=2,
            pool_retries=2, reseed=_reseed_abs,
        )
        assert results == [2, 4, 6, 8]
        after = parallel.parallel_stats()
        assert after["pool_retries"] > before["pool_retries"]

    def test_inline_fallback_when_pool_keeps_breaking(self):
        """If every pool attempt dies, survivors run inline rather than
        losing the batch."""
        results = parallel.parallel_map(
            _die_in_worker, [10, 20, 30], jobs=2, pool_retries=1,
        )
        assert results == [11, 21, 31]

    def test_per_task_timeout(self):
        before = parallel.parallel_stats()
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="did not finish"):
            parallel.parallel_map(
                _sleep_for, [0.01, 30.0], jobs=2, timeout=0.5,
            )
        assert time.monotonic() - start < 10.0
        after = parallel.parallel_stats()
        assert after["timeouts"] == before["timeouts"] + 1


class TestExperimentEquivalence:
    def test_volume_ratio_runs_identical_for_any_jobs(self):
        # The acceptance bar: fanning runs out to worker processes
        # changes nothing, bit for bit.
        model = make_model(3, 6, seed=11)
        capacities = [1.0] * 4
        sequential = volume_ratio_runs(
            "random", model, capacities, repeats=6, samples=512,
            base_seed=3, jobs=1,
        )
        fanned = volume_ratio_runs(
            "random", model, capacities, repeats=6, samples=512,
            base_seed=3, jobs=4,
        )
        np.testing.assert_array_equal(sequential, fanned)

    def test_rate_independent_algorithm_identical_too(self):
        model = make_model(2, 5, seed=2)
        capacities = [1.0] * 3
        np.testing.assert_array_equal(
            volume_ratio_runs("rod", model, capacities, repeats=4,
                              samples=256, base_seed=1, jobs=1),
            volume_ratio_runs("rod", model, capacities, repeats=4,
                              samples=256, base_seed=1, jobs=2),
        )


class TestMetricsSnapshot:
    def test_publish_metrics_exports_counters(self):
        parallel.parallel_map(str, range(3), jobs=1)
        registry = MetricsRegistry()
        parallel.publish_metrics(registry)
        rendered = registry.render_prometheus()
        assert 'repro_parallel_tasks{mode="inline"}' in rendered
        assert "repro_parallel_pools" in rendered
