"""Tests for trace file I/O, rebinning and terminal plots."""

import numpy as np
import pytest

from repro.workload import (
    area_chart,
    hurst_exponent,
    load_trace_csv,
    make_trace,
    rebin_trace,
    save_trace_csv,
    sparkline,
)


class TestTraceCsv:
    def test_roundtrip(self, tmp_path):
        trace = make_trace("tcp", 256, seed=1)
        path = str(tmp_path / "trace.csv")
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert np.allclose(loaded, trace)

    def test_column_selection(self, tmp_path):
        path = str(tmp_path / "multi.csv")
        with open(path, "w") as handle:
            handle.write("1,10\n2,20\n3,30\n")
        assert np.allclose(load_trace_csv(path, column=1), [10, 20, 30])

    def test_skip_header(self, tmp_path):
        path = str(tmp_path / "hdr.csv")
        with open(path, "w") as handle:
            handle.write("# rate\n5\n6\n")
        assert np.allclose(
            load_trace_csv(path, skip_header=1), [5.0, 6.0]
        )

    def test_validation(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as handle:
            handle.write("1,-2\n3,-4\n")
        with pytest.raises(ValueError, match=">= 0"):
            load_trace_csv(path, column=1)
        with pytest.raises(ValueError, match="column"):
            load_trace_csv(path, column=7)

    def test_single_row_is_one_series(self, tmp_path):
        """A one-line file parses as a (short) single-column trace."""
        path = str(tmp_path / "one.csv")
        with open(path, "w") as handle:
            handle.write("7\n")
        assert np.allclose(load_trace_csv(path), [7.0])


class TestRebin:
    def test_averages_bins(self):
        assert np.allclose(
            rebin_trace([1.0, 3.0, 5.0, 7.0], 2), [2.0, 6.0]
        )

    def test_drops_trailing_partial_bin(self):
        assert rebin_trace([1.0, 2.0, 3.0], 2).shape == (1,)

    def test_identity_factor(self):
        trace = np.array([1.0, 2.0])
        assert np.array_equal(rebin_trace(trace, 1), trace)

    def test_self_similarity_survives_rebinning(self):
        """Figure 2's multi-time-scale claim, made quantitative."""
        trace = make_trace("tcp", 8192, seed=3)
        coarse = rebin_trace(trace, 8)
        assert hurst_exponent(coarse) > 0.6
        # Burstiness (normalized std) persists at the coarser scale.
        assert coarse.std() / coarse.mean() > 0.5

    def test_poisson_noise_smooths_out(self):
        rng = np.random.default_rng(0)
        iid = rng.poisson(100, size=8192).astype(float)
        coarse = rebin_trace(iid, 8)
        assert coarse.std() / coarse.mean() < 0.5 * (iid.std() / iid.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            rebin_trace([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            rebin_trace([1.0], 2)


class TestSparkline:
    def test_length_matches_width(self):
        line = sparkline(np.arange(100), width=20)
        assert len(line) == 20

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([float("nan")])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestAreaChart:
    def test_shape(self):
        chart = area_chart(np.arange(200), width=40, height=6, label="ramp")
        lines = chart.splitlines()
        assert len(lines) == 8  # 6 rows + axis + stats
        assert all(len(line) == 41 for line in lines[:6])
        assert "ramp" in lines[-1]

    def test_peak_reaches_top_row(self):
        chart = area_chart([0, 0, 10, 0], width=4, height=5)
        assert "#" in chart.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            area_chart([])
        with pytest.raises(ValueError):
            area_chart([1.0], width=0)
