"""Unit tests for operator state and dynamic migration."""

import numpy as np
import pytest

from repro import build_load_model, placement_from_mapping
from repro.dynamics import (
    LoadBalancingController,
    Migration,
    MigrationCostModel,
    graph_state_tuples,
    operator_state_tuples,
)
from repro.graphs import (
    Aggregate,
    Delay,
    Map,
    QueryGraph,
    WindowJoin,
)
from repro.simulator import Simulator


class TestStateModel:
    def test_stateless_operators(self):
        assert operator_state_tuples(Map("m", 1.0), [100.0]) == 0.0
        assert operator_state_tuples(
            Delay("d", cost=1.0, selectivity=0.5), [100.0]
        ) == 0.0

    def test_aggregate_state_is_window(self):
        op = Aggregate("a", cost=1.0, selectivity=0.1)
        assert operator_state_tuples(op, [100.0]) == pytest.approx(10.0)

    def test_join_state_is_both_windows(self):
        op = WindowJoin("j", window=0.5)
        assert operator_state_tuples(op, [100.0, 60.0]) == pytest.approx(80.0)

    def test_graph_state_uses_propagated_rates(self):
        g = QueryGraph()
        i = g.add_input("I")
        f = g.add_operator(Delay("f", cost=1.0, selectivity=0.5), [i])
        g.add_operator(Aggregate("a", cost=1.0, selectivity=0.2), [f])
        state = graph_state_tuples(g, [100.0])
        assert state["f"] == 0.0
        assert state["a"] == pytest.approx(5.0)

    def test_cost_model(self):
        model = MigrationCostModel(base_overhead=0.3,
                                   per_tuple_transfer=1e-3)
        assert model.pause_seconds(0.0) == pytest.approx(0.3)
        assert model.pause_seconds(100.0) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            model.pause_seconds(-1.0)
        with pytest.raises(ValueError):
            MigrationCostModel(base_overhead=-1.0)


class TestControllerDecisions:
    def make_model(self, loads=(5.0, 1.0, 1.0, 1.0)):
        g = QueryGraph()
        i = g.add_input("I")
        for index, cost in enumerate(loads):
            g.add_operator(
                Delay(f"d{index}", cost=cost, selectivity=1.0), [i]
            )
        return build_load_model(g)

    def test_no_move_when_balanced(self):
        model = self.make_model()
        controller = LoadBalancingController(period=1.0)
        moves = controller.decide(
            1.0,
            np.array([0.5, 0.5]),
            {"d0": 0, "d1": 1, "d2": 0, "d3": 1},
            model,
            np.ones(2),
        )
        assert moves == []

    def test_moves_from_busiest_to_calmest(self):
        model = self.make_model()
        controller = LoadBalancingController(period=1.0)
        assignment = {"d0": 0, "d1": 0, "d2": 0, "d3": 1}
        moves = controller.decide(
            1.0,
            np.array([0.9, 0.1]),
            assignment,
            model,
            np.ones(2),
            operator_loads={"d0": 0.5, "d1": 0.2, "d2": 0.2, "d3": 0.1},
        )
        assert len(moves) == 1
        move = moves[0]
        assert move.source == 0 and move.target == 1
        # Target transfer is gap/2 = 0.4: d0 (0.5) is the closest match.
        assert move.operator == "d0"

    def test_cooldown_pins_recently_moved(self):
        model = self.make_model()
        controller = LoadBalancingController(period=1.0, cooldown=10.0)
        assignment = {"d0": 0, "d1": 0, "d2": 1, "d3": 1}
        loads = {"d0": 0.4, "d1": 0.4, "d2": 0.05, "d3": 0.05}
        first = controller.decide(
            1.0, np.array([0.8, 0.1]), assignment, model, np.ones(2),
            operator_loads=loads,
        )
        assert len(first) == 1
        moved = first[0].operator
        assignment[moved] = 1
        # Immediately after, the same operator may not bounce back.
        second = controller.decide(
            2.0, np.array([0.1, 0.8]), assignment, model, np.ones(2),
            operator_loads=loads,
        )
        assert all(m.operator != moved for m in second)

    def test_never_flips_imbalance(self):
        """A move bigger than the gap would just swap roles: refuse."""
        model = self.make_model(loads=(5.0,))
        controller = LoadBalancingController(period=1.0)
        moves = controller.decide(
            1.0,
            np.array([0.5, 0.2]),
            {"d0": 0},
            model,
            np.ones(2),
            operator_loads={"d0": 0.5},
        )
        assert moves == []

    def test_second_best_migrates_when_best_fit_is_immovable(self):
        """Regression: a zero-demand tie must not abandon the period.

        ``a_zero`` (measured load 0) ties ``b_heavy`` (load 0.8) on
        distance to the gap/2 target; the old code picked the tie winner
        first, saw an invalid transfer, and ``break``-ed without moving
        anything.  Candidates must be filtered for validity *before*
        choosing, so the movable second-best operator migrates.
        """
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("a_zero", cost=0.0, selectivity=1.0), [i])
        g.add_operator(Delay("b_heavy", cost=0.8, selectivity=1.0), [i])
        model = build_load_model(g)
        controller = LoadBalancingController(period=1.0)
        moves = controller.decide(
            1.0,
            np.array([0.8, 0.0]),
            {"a_zero": 0, "b_heavy": 0},
            model,
            np.ones(2),
            operator_loads={"a_zero": 0.0, "b_heavy": 0.8},
        )
        assert len(moves) == 1
        assert moves[0].operator == "b_heavy"
        assert moves[0].source == 0 and moves[0].target == 1

    def test_load_fallback_is_per_operator(self):
        """Regression: an operator missing from the measured statistics
        must fall through to its model estimate, not report 0.0 just
        because *some other* operator has measurements."""
        model = self.make_model(loads=(0.05, 0.4))
        controller = LoadBalancingController(period=1.0)
        # Only d0 is measured; d1's demand (0.4 by coefficient mass) is
        # the perfect gap/2 match and must win.  With the old
        # all-or-nothing fallback d1 looked idle (0.0) and d0 moved.
        moves = controller.decide(
            1.0,
            np.array([0.8, 0.0]),
            {"d0": 0, "d1": 0},
            model,
            np.ones(2),
            operator_loads={"d0": 0.05},
        )
        assert len(moves) == 1
        assert moves[0].operator == "d1"

    def test_smoothing_resets_on_node_count_change(self):
        """EWMA state from a 2-node cluster must not leak into a 3-node
        one: on shape change the smoother restarts from the fresh raw."""
        model = self.make_model(loads=(1.0, 1.0))
        controller = LoadBalancingController(period=1.0)
        for t in (1.0, 2.0, 3.0):
            controller.decide(
                t, np.array([1.0, 0.0]), {"d0": 0, "d1": 1},
                model, np.ones(2),
                operator_loads={"d0": 1.0, "d1": 0.0},
            )
        raw = np.array([0.5, 0.5, 0.5])
        moves = controller.decide(
            4.0, raw, {"d0": 0, "d1": 1}, model, np.ones(3),
            operator_loads={"d0": 0.5, "d1": 0.5},
        )
        assert moves == []
        assert np.allclose(controller._smoothed, raw)

    def test_max_moves_per_period_exhaustion(self):
        """The per-period cap bounds the migration storm, not the gap."""
        model = self.make_model(loads=(0.2, 0.2, 0.2, 0.2))
        assignment = {"d0": 0, "d1": 0, "d2": 0, "d3": 0}
        loads = {"d0": 0.2, "d1": 0.2, "d2": 0.2, "d3": 0.2}
        capped = LoadBalancingController(period=1.0, max_moves_per_period=2)
        moves = capped.decide(
            1.0, np.array([0.8, 0.0, 0.0]), dict(assignment),
            model, np.ones(3), operator_loads=loads,
        )
        assert len(moves) == 2
        roomy = LoadBalancingController(period=1.0, max_moves_per_period=4)
        more = roomy.decide(
            1.0, np.array([0.8, 0.0, 0.0]), dict(assignment),
            model, np.ones(3), operator_loads=loads,
        )
        assert len(more) > 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadBalancingController(period=0.0)
        with pytest.raises(ValueError):
            LoadBalancingController(imbalance_threshold=-1.0)
        with pytest.raises(ValueError):
            LoadBalancingController(max_moves_per_period=0)
        with pytest.raises(ValueError):
            LoadBalancingController(cooldown=-1.0)

    def test_history_accumulates(self):
        model = self.make_model()
        controller = LoadBalancingController(period=1.0)
        controller.decide(
            1.0, np.array([0.9, 0.1]),
            {"d0": 0, "d1": 0, "d2": 0, "d3": 0},
            model, np.ones(2),
            operator_loads={"d0": 0.4, "d1": 0.2, "d2": 0.2, "d3": 0.1},
        )
        assert len(controller.history) == 1
        assert isinstance(controller.history[0], Migration)


class TestEngineIntegration:
    def make_plan(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("heavy", cost=0.008, selectivity=1.0), [i])
        g.add_operator(Delay("light", cost=0.002, selectivity=1.0), [i])
        model = build_load_model(g)
        # Both operators on node 0: node 1 idles.
        return placement_from_mapping(
            model, [1.0, 1.0], {"heavy": 0, "light": 0}
        )

    def test_controller_rebalances_lopsided_start(self):
        plan = self.make_plan()
        controller = LoadBalancingController(period=1.0, cooldown=2.0)
        result = Simulator(plan, step_seconds=0.1,
                           controller=controller).run(
            rates=[80.0], duration=20.0
        )
        assert result.migration_count >= 1
        # After rebalancing, node 1 carries real work.
        assert result.node_utilization[1] > 0.05

    def test_static_run_reports_no_migrations(self):
        plan = self.make_plan()
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[80.0], duration=5.0
        )
        assert result.migration_count == 0
        assert result.total_migration_pause == 0.0

    def test_migration_pause_stalls_nodes(self):
        plan = self.make_plan()
        quiet = Simulator(plan, step_seconds=0.1).run(
            rates=[80.0], duration=20.0
        )
        controller = LoadBalancingController(period=1.0, cooldown=50.0)
        moved = Simulator(plan, step_seconds=0.1,
                          controller=controller).run(
            rates=[80.0], duration=20.0
        )
        if moved.migration_count:
            pause = moved.total_migration_pause
            assert pause > 0
            # Stall time shows up as extra accounted work.
            assert moved.node_busy.sum() >= quiet.node_busy.sum()
