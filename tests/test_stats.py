"""Unit tests for trial-run statistics gathering (Section 7.1)."""

import numpy as np
import pytest

from repro import build_load_model
from repro.graphs import (
    Delay,
    QueryGraph,
    graph_from_statistics,
    measure_statistics,
)
from repro.graphs import measure_statistics_stable
from repro.graphs.stats import MeasuredStatistics


@pytest.fixture
def measured(small_tree_model):
    graph = small_tree_model.graph
    return measure_statistics(
        graph, rates=[30.0, 30.0, 30.0], duration=20.0, seed=1
    )


class TestMeasureStatistics:
    def test_costs_close_to_declared(self, small_tree_model, measured):
        graph = small_tree_model.graph
        for op in graph.operators():
            if measured.tuples_processed[op.name] > 50:
                assert measured.costs[op.name] == pytest.approx(
                    op.costs[0], rel=0.05
                )

    def test_selectivities_close_to_declared(self, small_tree_model,
                                             measured):
        graph = small_tree_model.graph
        for op in graph.operators():
            if measured.tuples_processed[op.name] > 200:
                assert measured.selectivities[op.name] == pytest.approx(
                    op.selectivities[0], abs=0.05
                )

    def test_coverage_full_on_active_workload(self, measured):
        assert measured.coverage() == 1.0

    def test_coverage_zero_when_no_traffic(self, small_tree_model):
        stats = measure_statistics(
            small_tree_model.graph, rates=[0.0, 0.0, 0.0], duration=1.0
        )
        assert stats.coverage() == 0.0


class TestMeasureStatisticsStable:
    def test_converges_to_declared_statistics(self, small_tree_model):
        graph = small_tree_model.graph
        stats = measure_statistics_stable(
            graph, rates=[40.0, 40.0, 40.0], tolerance=0.05,
            chunk_duration=10.0, max_duration=60.0, seed=2,
        )
        assert stats.coverage() == 1.0
        for op in graph.operators():
            if stats.tuples_processed[op.name] > 100:
                assert stats.selectivities[op.name] == pytest.approx(
                    op.selectivities[0], abs=0.1
                )

    def test_rejects_starved_operators(self, small_tree_model):
        with pytest.raises(RuntimeError, match="no traffic"):
            measure_statistics_stable(
                small_tree_model.graph,
                rates=[0.0, 0.0, 0.0],
                chunk_duration=1.0,
                max_duration=2.0,
            )

    def test_parameter_validation(self, small_tree_model):
        graph = small_tree_model.graph
        with pytest.raises(ValueError):
            measure_statistics_stable(graph, [1.0, 1.0, 1.0], tolerance=0.0)
        with pytest.raises(ValueError):
            measure_statistics_stable(
                graph, [1.0, 1.0, 1.0], chunk_duration=10.0,
                max_duration=5.0,
            )


class TestGraphFromStatistics:
    def test_structure_preserved(self, small_tree_model, measured):
        graph = small_tree_model.graph
        rebuilt = graph_from_statistics(graph, measured)
        assert rebuilt.operator_names == graph.operator_names
        assert rebuilt.input_names == graph.input_names
        for name in graph.operator_names:
            assert rebuilt.inputs_of(name) == graph.inputs_of(name)

    def test_measured_model_close_to_true_model(self, small_tree_model,
                                                measured):
        graph = small_tree_model.graph
        rebuilt = build_load_model(graph_from_statistics(graph, measured))
        true = small_tree_model.coefficients
        est = rebuilt.coefficients
        # Coefficients compound cost and upstream selectivities; allow a
        # modest relative error on the dominant entries.
        mask = true > true.max() * 0.05
        assert np.allclose(est[mask], true[mask], rtol=0.25)

    def test_unseen_operators_keep_declared_stats(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Delay("d", cost=0.5, selectivity=0.5), [i])
        stats = MeasuredStatistics(
            costs={"d": 0.0},
            selectivities={"d": 0.0},
            tuples_processed={"d": 0},
        )
        rebuilt = graph_from_statistics(g, stats)
        op = rebuilt.operator("d")
        assert op.costs[0] == 0.5
        assert op.selectivities[0] == 0.5

    def test_planning_on_measured_graph_works_end_to_end(
        self, small_tree_model, measured
    ):
        from repro.core.rod import rod_place

        rebuilt = build_load_model(
            graph_from_statistics(small_tree_model.graph, measured)
        )
        plan = rod_place(rebuilt, [1.0] * 4)
        assert 0.0 < plan.volume_ratio(samples=1024) <= 1.0
