"""Unit tests for query-graph construction and evaluation."""

import pytest

from repro.graphs import Delay, Filter, Map, QueryGraph, Union, WindowJoin
from repro.graphs.query_graph import subgraph_operator_count


@pytest.fixture
def diamond():
    """I -> a -> (b, c) -> union -> sink (a classic fan-out/fan-in)."""
    g = QueryGraph("diamond")
    i = g.add_input("I")
    a = g.add_operator(Map("a", cost=1.0), [i])
    b = g.add_operator(Filter("b", cost=1.0, selectivity=0.5), [a])
    c = g.add_operator(Filter("c", cost=1.0, selectivity=0.25), [a])
    g.add_operator(Union("u", costs=[1.0, 1.0]), [b, c])
    return g


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_inputs == 1
        assert diamond.num_operators == 4
        assert len(diamond) == 4

    def test_input_order_is_k_index(self):
        g = QueryGraph()
        g.add_input("X")
        s = g.add_input("Y")
        assert s.input_index == 1
        assert g.input_names == ("X", "Y")

    def test_duplicate_stream_name_rejected(self):
        g = QueryGraph()
        g.add_input("I")
        with pytest.raises(ValueError, match="duplicate stream"):
            g.add_input("I")

    def test_duplicate_operator_name_rejected(self, diamond):
        with pytest.raises(ValueError, match="duplicate operator"):
            diamond.add_operator(Map("a", cost=1.0), ["I"])

    def test_arity_mismatch_rejected(self):
        g = QueryGraph()
        i = g.add_input("I")
        with pytest.raises(ValueError, match="arity"):
            g.add_operator(Union("u", costs=[1.0, 1.0]), [i])

    def test_unknown_input_stream_rejected(self):
        g = QueryGraph()
        g.add_input("I")
        with pytest.raises(KeyError, match="unknown stream"):
            g.add_operator(Map("m", cost=1.0), ["nope"])

    def test_inputs_by_name_or_stream_object(self):
        g = QueryGraph()
        i = g.add_input("I")
        g.add_operator(Map("m1", cost=1.0), [i])
        g.add_operator(Map("m2", cost=1.0), ["I"])
        assert g.num_operators == 2

    def test_custom_output_name(self):
        g = QueryGraph()
        i = g.add_input("I")
        out = g.add_operator(Map("m", cost=1.0), [i], output_name="renamed")
        assert out.name == "renamed"
        assert g.output_of("m").name == "renamed"

    def test_operator_insertion_order_is_topological(self, diamond):
        names = diamond.operator_names
        assert names.index("a") < names.index("b")
        assert names.index("b") < names.index("u")

    def test_validate_passes(self, diamond):
        diamond.validate()

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)
        assert "operators=4" in repr(diamond)


class TestTopology:
    def test_consumers_of_fanout_stream(self, diamond):
        assert set(diamond.consumers_of("a.out")) == {"b", "c"}

    def test_sink_streams(self, diamond):
        sinks = {s.name for s in diamond.sink_streams()}
        assert sinks == {"u.out"}

    def test_upstream_and_downstream(self, diamond):
        assert diamond.upstream_operators("u") == ("b", "c")
        assert diamond.downstream_operators("a") == ("b", "c")
        assert diamond.upstream_operators("a") == ()

    def test_arcs_exclude_input_edges(self, diamond):
        arcs = diamond.arcs()
        assert len(arcs) == 4  # a->b, a->c, b->u, c->u
        assert all(arc.producer in diamond for arc in arcs)

    def test_contains(self, diamond):
        assert "a" in diamond
        assert "zzz" not in diamond

    def test_unknown_operator_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.operator("nope")
        with pytest.raises(KeyError):
            diamond.inputs_of("nope")

    def test_subgraph_operator_count(self, diamond):
        assert subgraph_operator_count(diamond, ["I"]) == 4
        assert subgraph_operator_count(diamond, ["a.out"]) == 3

    def test_nonlinear_detection(self, diamond):
        assert not diamond.has_nonlinear_operators()
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(WindowJoin("j", window=1.0), [a, b])
        assert g.has_nonlinear_operators()
        assert g.join_operators() == ("j",)


class TestEvaluation:
    def test_stream_rates_propagate_selectivity(self, diamond):
        rates = diamond.stream_rates([8.0])
        assert rates["a.out"] == pytest.approx(8.0)
        assert rates["b.out"] == pytest.approx(4.0)
        assert rates["c.out"] == pytest.approx(2.0)
        assert rates["u.out"] == pytest.approx(6.0)

    def test_operator_loads(self, diamond):
        loads = diamond.operator_loads([8.0])
        assert loads["a"] == pytest.approx(8.0)
        assert loads["u"] == pytest.approx(6.0)

    def test_total_load(self, diamond):
        # a: 8, b: 8, c: 8, u: 6
        assert diamond.total_load([8.0]) == pytest.approx(30.0)

    def test_rate_count_checked(self, diamond):
        with pytest.raises(ValueError, match="input rates"):
            diamond.stream_rates([1.0, 2.0])

    def test_join_rates_are_quadratic(self):
        g = QueryGraph()
        a, b = g.add_input("A"), g.add_input("B")
        g.add_operator(
            WindowJoin("j", cost_per_pair=1.0, selectivity=0.5, window=2.0),
            [a, b],
        )
        rates = g.stream_rates([3.0, 5.0])
        assert rates["j.out"] == pytest.approx(0.5 * 2.0 * 3.0 * 5.0)

    def test_paper_example_loads(self):
        from repro.graphs import paper_example_graph

        loads = paper_example_graph().operator_loads([1.0, 1.0])
        assert loads == pytest.approx(
            {"o1": 4.0, "o2": 6.0, "o3": 9.0, "o4": 2.0}
        )
