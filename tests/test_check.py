"""Tests for the static-analysis subsystem (repro.check)."""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro import build_load_model
from repro.check import (
    CheckError,
    CheckReport,
    CheckRunner,
    Diagnostic,
    Severity,
    check_artifact,
    check_document,
    check_experiment_config,
    check_graph,
    check_model,
    check_paths,
    check_placement,
    check_plan_document,
    classify_document,
)
from repro.core.rod import rod_place
from repro.deploy import Deployment
from repro.graphs.generator import monitoring_graph
from repro.graphs.operators import Filter, Map
from repro.graphs.query_graph import QueryGraph

REPO_ROOT = Path(__file__).resolve().parents[1]
CONFIG_DIR = REPO_ROOT / "examples" / "configs"


@pytest.fixture
def graph():
    return monitoring_graph(2, seed=1)


@pytest.fixture
def model(graph):
    return build_load_model(graph)


@pytest.fixture
def placement(model):
    return rod_place(model, [1.0, 1.0])


@pytest.fixture
def plan_doc(placement):
    return json.loads(placement.to_json())


class TestDiagnostics:
    def test_format_includes_code_severity_location_hint(self):
        d = Diagnostic(
            code="REPRO305", severity=Severity.ERROR, message="mismatch",
            location="plan.json", fix_hint="regenerate",
        )
        line = d.format()
        assert "plan.json" in line
        assert "REPRO305" in line
        assert "error" in line
        assert "regenerate" in line

    def test_severity_parse(self):
        assert Severity.parse("ERROR") is Severity.ERROR
        assert Severity.parse("warning") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_report_aggregation(self):
        report = CheckReport()
        report.add(Diagnostic("A1", Severity.INFO, "i"))
        report.add(Diagnostic("A2", Severity.WARNING, "w"))
        report.add(Diagnostic("A3", Severity.ERROR, "e"))
        assert report.counts() == (1, 1, 1)
        assert not report.ok
        assert report.max_severity() is Severity.ERROR
        assert [d.code for d in report.at_least(Severity.WARNING)] == [
            "A2", "A3",
        ]

    def test_raise_if_errors(self):
        report = CheckReport([Diagnostic("A3", Severity.ERROR, "boom")])
        with pytest.raises(CheckError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.report is report
        assert "A3" in str(excinfo.value)

    def test_clean_report_chains(self):
        report = CheckReport([Diagnostic("A2", Severity.WARNING, "w")])
        assert report.raise_if_errors() is report


class TestGraphVerifier:
    def test_clean_graph(self, graph):
        assert check_graph(graph).counts() == (0, 0, 0)

    def test_empty_graph_warns(self):
        report = check_graph(QueryGraph("empty"))
        assert report.ok
        assert [d.code for d in report] == ["REPRO101"]
        assert report.diagnostics[0].severity is Severity.WARNING

    def test_unconsumed_input_warns(self):
        g = QueryGraph("dangling")
        g.add_input("I1")
        g.add_input("I2")
        g.add_operator(Map("m", cost=1e-4), ["I1"])
        report = check_graph(g)
        codes = [d.code for d in report]
        assert "REPRO102" in codes
        assert report.ok  # warning, not error

    def test_diagnostic_names_the_stream(self):
        g = QueryGraph("dangling")
        g.add_input("I1")
        g.add_input("I2")
        g.add_operator(Map("m", cost=1e-4), ["I2"])
        (diag,) = check_graph(g).by_code("REPRO102")
        assert "'I1'" in diag.message
        assert diag.fix_hint


class TestModelVerifier:
    def test_clean_model(self, model):
        assert check_model(model).counts() == (0, 0, 0)

    def test_shape_mismatch_is_an_error(self, model):
        bad = dataclasses.replace(
            model, coefficients=model.coefficients[:, :-1]
        )
        report = check_model(bad)
        (diag,) = report.by_code("REPRO201")
        assert diag.severity is Severity.ERROR
        assert str(model.num_variables) in diag.message

    def test_nan_coefficient(self, model):
        coeffs = model.coefficients.copy()
        coeffs[0, 0] = np.nan
        report = check_model(dataclasses.replace(model, coefficients=coeffs))
        assert [d.code for d in report.errors] == ["REPRO203"]

    def test_negative_coefficient(self, model):
        coeffs = model.coefficients.copy()
        coeffs[1, 0] = -0.25
        report = check_model(dataclasses.replace(model, coefficients=coeffs))
        assert [d.code for d in report.errors] == ["REPRO202"]

    def test_zero_column_warns_unbounded(self, model):
        coeffs = model.coefficients.copy()
        coeffs[:, 0] = 0.0
        report = check_model(dataclasses.replace(model, coefficients=coeffs))
        (diag,) = report.by_code("REPRO204")
        assert diag.severity is Severity.WARNING
        assert model.variables[0] in diag.message

    def test_empty_graph_model_is_clean(self):
        model = build_load_model(QueryGraph("empty"))
        assert check_model(model).counts() == (0, 0, 0)


class TestPlanDocumentVerifier:
    def test_clean_document(self, plan_doc, model):
        report = check_plan_document(plan_doc, model=model)
        assert report.counts() == (0, 0, 0)

    def test_missing_assignment(self):
        report = check_plan_document({"capacities": [1.0]})
        assert [d.code for d in report.errors] == ["REPRO301"]

    def test_zero_capacity(self, plan_doc, model):
        plan_doc["capacities"][0] = 0.0
        report = check_plan_document(plan_doc, model=model)
        assert report.by_code("REPRO304")

    def test_negative_capacity(self, plan_doc, model):
        plan_doc["capacities"][1] = -2.0
        report = check_plan_document(plan_doc, model=model)
        (diag,) = report.by_code("REPRO304")
        assert diag.severity is Severity.ERROR

    def test_partial_mapping(self, plan_doc, model):
        dropped = next(iter(plan_doc["assignment"]))
        del plan_doc["assignment"][dropped]
        report = check_plan_document(plan_doc, model=model)
        (diag,) = report.by_code("REPRO301")
        assert dropped in diag.message

    def test_unknown_operator(self, plan_doc, model):
        plan_doc["assignment"]["ghost-op"] = 0
        report = check_plan_document(plan_doc, model=model)
        (diag,) = report.by_code("REPRO302")
        assert "ghost-op" in diag.message

    def test_node_index_out_of_bounds(self, plan_doc, model):
        op = next(iter(plan_doc["assignment"]))
        plan_doc["assignment"][op] = 99
        report = check_plan_document(plan_doc, model=model)
        assert report.by_code("REPRO303")

    def test_non_integer_node(self, plan_doc, model):
        op = next(iter(plan_doc["assignment"]))
        plan_doc["assignment"][op] = "zero"
        report = check_plan_document(plan_doc, model=model)
        assert report.by_code("REPRO303")

    def test_stale_ln_is_diagnosed_with_structure(self, plan_doc, model):
        """The acceptance-criteria scenario: a corrupted plan whose stored
        L^n disagrees with the recomputed A.L^o yields a structured
        diagnostic with code, location and fix hint."""
        plan_doc["node_coefficients"][0][0] += 0.5
        report = check_plan_document(
            plan_doc, model=model, location="plans/stale.json"
        )
        (diag,) = report.errors
        assert diag.code == "REPRO305"
        assert diag.location == "plans/stale.json"
        assert diag.fix_hint is not None
        assert "recomputed" in diag.message

    def test_ln_dimension_mismatch(self, plan_doc, model):
        plan_doc["node_coefficients"] = [
            row[:-1] for row in plan_doc["node_coefficients"]
        ]
        report = check_plan_document(plan_doc, model=model)
        (diag,) = report.by_code("REPRO305")
        assert f"d={model.num_variables}" in diag.message

    def test_moving_one_operator_breaks_consistency(self, plan_doc, model):
        op = next(iter(plan_doc["assignment"]))
        plan_doc["assignment"][op] = 1 - plan_doc["assignment"][op]
        report = check_plan_document(plan_doc, model=model)
        assert report.by_code("REPRO305")

    def test_empty_node_is_info(self, model):
        mapping = {name: 0 for name in model.operator_names}
        doc = {"assignment": mapping, "capacities": [1.0, 1.0]}
        report = check_plan_document(doc, model=model)
        assert report.ok
        assert report.by_code("REPRO306")

    def test_graph_name_mismatch_warns(self, plan_doc, model):
        plan_doc["graph"] = "some-other-graph"
        report = check_plan_document(plan_doc, model=model)
        assert report.by_code("REPRO308")


class TestPlacementVerifier:
    def test_clean_placement(self, placement):
        assert check_placement(placement).ok

    def test_runner_dispatch(self, graph, model, placement):
        report = check_artifact(graph, model, placement)
        assert report.ok

    def test_unregistered_artifact_is_skipped_with_info(self):
        report = check_artifact(object())
        assert report.ok
        assert report.by_code("REPRO002")

    def test_custom_runner_registration(self, graph):
        runner = CheckRunner()
        runner.register(
            QueryGraph,
            lambda g: CheckReport(
                [Diagnostic("X999", Severity.ERROR, "custom")]
            ),
        )
        report = runner.run(graph)
        assert [d.code for d in report] == ["X999"]


class TestExperimentConfigVerifier:
    def base_config(self):
        return {
            "graph": "monitoring-2",
            "strategy": "rod",
            "capacities": [1.0, 1.0],
            "seed": 1,
            "rate_region": [[0.0, 100.0], [0.0, 100.0]],
        }

    def test_clean_config(self, model):
        report = check_experiment_config(self.base_config(), model=model)
        assert report.counts() == (0, 0, 0)

    def test_missing_seed_warns(self, model):
        config = self.base_config()
        del config["seed"]
        report = check_experiment_config(config, model=model)
        (diag,) = report.by_code("REPRO401")
        assert diag.severity is Severity.WARNING
        assert report.ok

    def test_rate_region_dimension_mismatch(self, model):
        config = self.base_config()
        config["rate_region"] = [[0.0, 100.0]]  # model has 2 inputs
        report = check_experiment_config(config, model=model)
        (diag,) = report.by_code("REPRO402")
        assert "2 input stream(s)" in diag.message

    def test_rates_dimension_mismatch(self, model):
        config = self.base_config()
        config["rates"] = [10.0, 10.0, 10.0]
        report = check_experiment_config(config, model=model)
        assert report.by_code("REPRO402")

    def test_inverted_interval(self, model):
        config = self.base_config()
        config["rate_region"] = [[10.0, 1.0], [0.0, 5.0]]
        report = check_experiment_config(config, model=model)
        assert report.by_code("REPRO403")

    def test_unknown_strategy(self, model):
        config = self.base_config()
        config["strategy"] = "gradient-descent"
        report = check_experiment_config(config, model=model)
        assert report.by_code("REPRO404")

    def test_overloaded_utilization_warns(self, model):
        config = self.base_config()
        config["utilization"] = 1.4
        report = check_experiment_config(config, model=model)
        assert report.by_code("REPRO405")

    def test_without_model_dimensions_unchecked(self):
        config = self.base_config()
        config["rate_region"] = [[0.0, 100.0]]
        report = check_experiment_config(config)  # no model to compare
        assert report.ok


class TestClassification:
    def test_classify(self, plan_doc, graph):
        from repro.graphs.serialize import graph_to_dict

        assert classify_document(graph_to_dict(graph)) == "graph"
        assert classify_document(plan_doc) == "plan"
        assert classify_document({"strategy": "rod"}) == "experiment"
        assert classify_document({"totally": "unrelated"}) is None

    def test_check_document_routes_by_kind(self, plan_doc, model):
        report = check_document(plan_doc, model=model)
        assert report.ok
        report = check_document({"unrelated": True})
        assert report.by_code("REPRO002")


class TestCheckPaths:
    def test_bundled_configs_have_no_errors(self):
        """Acceptance criterion: every bundled example/experiment config
        checks clean at error severity."""
        report = check_paths([CONFIG_DIR])
        assert report.errors == []
        assert report.warnings == []

    def test_corrupted_plan_file_fails(self, tmp_path, placement, graph):
        from repro.graphs.serialize import dump_graph

        dump_graph(graph, str(tmp_path / "g.graph.json"))
        doc = placement.to_document()
        doc["node_coefficients"][0][0] += 1.0
        (tmp_path / "bad.plan.json").write_text(json.dumps(doc))
        report = check_paths([tmp_path])
        assert [d.code for d in report.errors] == ["REPRO305"]
        assert str(tmp_path / "bad.plan.json") in report.errors[0].location

    def test_unreadable_json(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        report = check_paths([tmp_path])
        assert report.by_code("REPRO001")

    def test_python_files_are_linted(self, tmp_path):
        (tmp_path / "mod.py").write_text("import random\nr = random.random()\n")
        report = check_paths([tmp_path])
        assert report.by_code("REPRO501")
        assert check_paths([tmp_path], lint=False).ok


class TestDeploymentGate:
    def test_plan_verifies_by_default(self, graph):
        deployment = Deployment.plan(graph, [1.0, 1.0])
        assert deployment.placement.num_nodes == 2

    def test_corrupt_model_fails_plan_construction(self, graph, monkeypatch):
        import repro.deploy as deploy_module

        def corrupt_build(g):
            model = build_load_model(g)
            coeffs = model.coefficients.copy()
            coeffs[0, 0] = np.nan
            return dataclasses.replace(model, coefficients=coeffs)

        monkeypatch.setattr(deploy_module, "build_load_model", corrupt_build)
        with pytest.raises(CheckError) as excinfo:
            Deployment.plan(graph, [1.0, 1.0])
        assert excinfo.value.report.by_code("REPRO203")

    def test_verify_false_skips_the_gate(self, graph, monkeypatch):
        import repro.deploy as deploy_module

        def corrupt_build(g):
            model = build_load_model(g)
            coeffs = model.coefficients.copy()
            coeffs[0, 0] = np.nan
            return dataclasses.replace(model, coefficients=coeffs)

        monkeypatch.setattr(deploy_module, "build_load_model", corrupt_build)
        deployment = Deployment.plan(graph, [1.0, 1.0], verify=False)
        assert deployment.placement.num_nodes == 2


class TestHarnessGate:
    def test_make_model_verifies(self):
        from repro.experiments.common import make_model

        model = make_model(num_inputs=2, operators_per_tree=5, seed=0)
        assert model.num_operators == 10

    def test_validate_run_rejects_bad_capacities(self, model):
        from repro.experiments.common import validate_run

        with pytest.raises(CheckError):
            validate_run(model, [0.0, 1.0], seed=1)

    def test_validate_run_rejects_unknown_strategy(self, model):
        from repro.experiments.common import validate_run

        with pytest.raises(CheckError):
            validate_run(model, [1.0, 1.0], seed=1, strategy="psychic")

    def test_validate_run_accepts_clean_config(self, model):
        from repro.experiments.common import validate_run

        validate_run(model, [1.0, 1.0], seed=1, strategy="rod")
