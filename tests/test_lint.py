"""Tests for repro-lint, the AST lint pass (REPRO5xx)."""

from pathlib import Path

import pytest

from repro.check import Severity, lint_paths, lint_source
from repro.check.lint import LINT_CODES, iter_python_files, main

REPO_ROOT = Path(__file__).resolve().parents[1]

SRC_PATH = Path("src/repro/example.py")
TEST_PATH = Path("tests/test_example.py")


def codes(source, path=TEST_PATH):
    return [d.code for d in lint_source(source, path)]


class TestUnseededRng:
    def test_random_random_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["REPRO501"]

    def test_unseeded_random_instance_flagged(self):
        assert codes("import random\nr = random.Random()\n") == ["REPRO501"]

    def test_seeded_random_instance_ok(self):
        assert codes("import random\nr = random.Random(42)\n") == []

    def test_np_random_global_state_flagged(self):
        assert codes("import numpy as np\nnp.random.seed(0)\n") == ["REPRO501"]
        assert codes("import numpy as np\nx = np.random.uniform(0, 1)\n") == [
            "REPRO501",
        ]

    def test_np_default_rng_ok(self):
        assert codes("import numpy as np\nr = np.random.default_rng(7)\n") == []

    def test_random_shuffle_flagged(self):
        assert codes("import random\nrandom.shuffle(items)\n") == ["REPRO501"]


class TestFloatEquality:
    def test_control_flow_comparison_flagged(self):
        assert codes("if ratio == 0.0:\n    pass\n") == ["REPRO502"]

    def test_not_equal_flagged(self):
        assert codes("y = [v for v in vs if v != 1.0]\n") == ["REPRO502"]

    def test_assert_statements_exempt(self):
        # Tests state exact IEEE-representable oracles on purpose.
        assert codes("assert ratio == 0.0\n") == []
        assert codes("assert a == 1.0 and b == 2.0\n") == []

    def test_integer_literals_ok(self):
        assert codes("if count == 0:\n    pass\n") == []

    def test_inequalities_ok(self):
        assert codes("if ratio <= 0.5:\n    pass\n") == []


class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert codes("def f(items=[]):\n    pass\n") == ["REPRO503"]

    def test_dict_constructor_flagged(self):
        assert codes("def f(opts=dict()):\n    pass\n") == ["REPRO503"]

    def test_keyword_only_default_flagged(self):
        assert codes("def f(*, acc={}):\n    pass\n") == ["REPRO503"]

    def test_none_default_ok(self):
        assert codes("def f(items=None):\n    pass\n") == []

    def test_tuple_default_ok(self):
        assert codes("def f(dims=(1, 2)):\n    pass\n") == []


class TestMissingAll:
    def test_public_src_module_without_all(self):
        report = lint_source("x = 1\n", SRC_PATH)
        assert [d.code for d in report] == ["REPRO504"]
        assert report[0].severity is Severity.WARNING

    def test_src_module_with_all_ok(self):
        assert codes('__all__ = ["x"]\nx = 1\n', SRC_PATH) == []

    def test_private_module_exempt(self):
        assert codes("x = 1\n", Path("src/repro/_private.py")) == []
        assert codes("x = 1\n", Path("src/repro/__main__.py")) == []

    def test_test_files_exempt(self):
        assert codes("x = 1\n", TEST_PATH) == []

    def test_non_src_files_exempt(self):
        assert codes("x = 1\n", Path("examples/demo.py")) == []


class TestSuppression:
    def test_bare_noqa(self):
        assert codes("x = random.random()  # noqa\n") == []

    def test_coded_noqa(self):
        assert codes("x = random.random()  # noqa: REPRO501\n") == []

    def test_wrong_code_does_not_suppress(self):
        # The finding survives, and the mismatched suppression itself
        # is reported as unused (REPRO507).
        assert codes("x = random.random()  # noqa: REPRO502\n") == [
            "REPRO501",
            "REPRO507",
        ]

    def test_bare_noqa_that_suppresses_nothing_is_stale(self):
        assert codes("x = 1  # noqa\n") == ["REPRO507"]

    def test_coded_noqa_that_suppresses_nothing_is_stale(self):
        assert codes("x = 1  # noqa: REPRO501\n") == ["REPRO507"]

    def test_foreign_tool_codes_are_not_judged(self):
        # Codes outside the REPRO namespace belong to other linters.
        assert codes("x = 1  # noqa: E501\n") == []


class TestPruneBaseline:
    def test_prunes_stale_and_keeps_live_markers(self, tmp_path):
        from repro.check import prune_baseline_paths

        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "x = random.random()  # noqa: REPRO501\n"
            "y = 1  # noqa: REPRO501\n"
        )
        pruned = dict(prune_baseline_paths([tmp_path]))
        assert pruned == {target: 1}
        text = target.read_text()
        assert text.count("noqa") == 1
        assert "x = random.random()  # noqa: REPRO501" in text
        assert "y = 1\n" in text

    def test_clean_tree_prunes_nothing(self, tmp_path):
        from repro.check import prune_baseline_paths

        target = tmp_path / "mod.py"
        source = "import random\nx = random.random()  # noqa: REPRO501\n"
        target.write_text(source)
        assert list(prune_baseline_paths([tmp_path])) == []
        assert target.read_text() == source

    def test_main_prune_flag_then_exits_clean(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # noqa: REPRO501\n")
        assert main([str(tmp_path)]) == 1  # stale marker -> REPRO507
        assert main(["--prune-baseline", str(tmp_path)]) == 0
        assert "pruned 1 stale suppression" in capsys.readouterr().out
        assert "noqa" not in target.read_text()


class TestMachinery:
    def test_syntax_error_is_reported_not_raised(self):
        assert codes("def broken(:\n") == ["REPRO500"]

    def test_line_numbers_in_location(self):
        (diag,) = lint_source("x = 1\ny = random.random()\n", TEST_PATH)
        assert diag.location.endswith(":2")

    def test_registry_documents_every_emitted_code(self):
        emitted = {"REPRO501", "REPRO502", "REPRO503", "REPRO504"}
        assert emitted <= set(LINT_CODES)

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "mod.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["mod.py"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main([str(dirty)]) == 1
        assert "REPRO501" in capsys.readouterr().out

    def test_main_exit_2_names_the_unparseable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        captured = capsys.readouterr()
        assert "cannot analyze" in captured.err
        assert "bad.py" in captured.err

    def test_main_jobs_fanout_matches_serial(self, tmp_path, capsys):
        for i in range(3):
            (tmp_path / f"m{i}.py").write_text(
                "import random\nx = random.random()\n"
            )
        assert main([str(tmp_path)]) == 1
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", str(tmp_path)]) == 1
        assert capsys.readouterr().out == serial

    def test_flow_rules_run_by_default_in_main(self, tmp_path, capsys):
        # REPRO600 trigger in a non-test module; repro-lint defaults
        # to --flow, so the finding must surface without extra flags.
        target = tmp_path / "pick.py"
        target.write_text(
            "__all__ = []\n"
            "def pick(xs):\n"
            "    out = []\n"
            "    for v in set(xs):\n"
            "        out.append(v)\n"
            "    return out\n"
        )
        assert main([str(target)]) == 1
        assert "REPRO600" in capsys.readouterr().out
        assert main(["--no-flow", str(target)]) == 0


class TestMergedTreeIsClean:
    def test_src_and_tests_lint_clean(self):
        """Acceptance criterion: repro-lint src tests runs clean."""
        report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert [d.format() for d in report] == []

    def test_examples_and_benchmarks_lint_clean(self):
        report = lint_paths(
            [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"]
        )
        assert [d.format() for d in report] == []


class TestPrintInLibrary:
    LIB_PATH = Path("src/repro/simulator/engine.py")
    # ``__all__`` keeps REPRO504 out of the way; these tests are about 505.
    ALL = "__all__ = []\n"

    def test_print_in_library_module_flagged(self):
        assert codes(self.ALL + "print('hello')\n", self.LIB_PATH) == [
            "REPRO505",
        ]

    def test_logger_call_ok(self):
        source = (
            self.ALL
            + "from repro.obs.log import get_logger\n"
            "_LOG = get_logger(__name__)\n"
            "_LOG.info('hello')\n"
        )
        assert codes(source, self.LIB_PATH) == []

    def test_cli_and_textplot_exempt(self):
        assert codes(self.ALL + "print('x')\n", Path("src/repro/cli.py")) == []
        assert codes(
            self.ALL + "print('x')\n", Path("src/repro/workload/textplot.py")
        ) == []

    def test_tests_and_benchmarks_exempt(self):
        assert codes("print('x')\n", Path("tests/test_example.py")) == []
        assert codes("print('x')\n", Path("benchmarks/bench.py")) == []

    def test_outside_repro_package_ok(self):
        assert codes("print('x')\n", Path("scripts/tool.py")) == []

    def test_noqa_suppresses(self):
        assert codes(
            self.ALL + "print('x')  # noqa: REPRO505\n", self.LIB_PATH
        ) == []

    def test_method_named_print_ok(self):
        # Only the builtin counts; obj.print() is someone else's API.
        assert codes(self.ALL + "writer.print('x')\n", self.LIB_PATH) == []


class TestScalarLoopInKernel:
    KERNEL_PATH = Path("src/repro/core/volume/qmc.py")
    ALL = "__all__ = []\n"
    LOOP = (
        "def f(points):\n"
        "    total = 0.0\n"
        "    for i in range(len(points)):\n"
        "        total += points[i].sum()\n"
        "    return total\n"
    )

    def test_range_subscript_loop_flagged_in_kernel(self):
        assert codes(self.ALL + self.LOOP, self.KERNEL_PATH) == ["REPRO506"]

    def test_severity_is_warning(self):
        diagnostics = lint_source(self.ALL + self.LOOP, self.KERNEL_PATH)
        assert diagnostics[0].severity is Severity.WARNING

    def test_same_loop_ok_outside_kernel(self):
        assert codes(
            self.ALL + self.LOOP, Path("src/repro/simulator/engine.py")
        ) == []
        assert codes(self.LOOP, Path("tests/test_example.py")) == []

    def test_loop_without_subscript_ok(self):
        source = (
            self.ALL
            + "def f(chunks):\n"
            "    for i in range(4):\n"
            "        work(i)\n"
        )
        assert codes(source, self.KERNEL_PATH) == []

    def test_iteration_over_sequence_ok(self):
        # Direct iteration (no index arithmetic) is not the pattern
        # REPRO506 targets.
        source = (
            self.ALL
            + "def f(rows):\n"
            "    return [row.sum() for row in rows]\n"
        )
        assert codes(source, self.KERNEL_PATH) == []

    def test_noqa_with_justification_suppresses(self):
        source = self.ALL + self.LOOP.replace(
            "for i in range(len(points)):",
            "for i in range(len(points)):  "
            "# noqa: REPRO506  # O(log n) digit loop",
        )
        assert codes(source, self.KERNEL_PATH) == []

    def test_kernel_modules_carry_justified_baseline(self):
        # The shipped kernel lints clean: every intentional loop has a
        # justified noqa, and nothing else loops per element.
        report = lint_paths([REPO_ROOT / "src" / "repro" / "core" / "volume"])
        assert [d.code for d in report] == []


class TestDenseAllocInPlacementLoop:
    PLACEMENT_PATH = Path("src/repro/placement/searcher.py")
    ALL = "__all__ = []\n"
    LOOP = (
        "import numpy as np\n"
        "def score(plans, n, d):\n"
        "    for plan in plans:\n"
        "        ln = np.zeros((n, d))\n"
        "        use(ln)\n"
    )

    def test_dense_zeros_in_loop_flagged(self):
        assert codes(self.ALL + self.LOOP, self.PLACEMENT_PATH) == [
            "REPRO508",
        ]

    def test_severity_is_warning(self):
        diagnostics = lint_source(self.ALL + self.LOOP, self.PLACEMENT_PATH)
        assert diagnostics[0].severity is Severity.WARNING

    def test_empty_and_full_also_flagged(self):
        for ctor in ("np.empty((n, d))", "np.ones((n, d))",
                     "np.full((n, d), 0.0)"):
            source = self.ALL + self.LOOP.replace("np.zeros((n, d))", ctor)
            assert codes(source, self.PLACEMENT_PATH) == ["REPRO508"], ctor

    def test_while_loop_flagged(self):
        source = (
            self.ALL
            + "import numpy as np\n"
            "def score(n, d):\n"
            "    while improving():\n"
            "        ln = np.zeros((n, d))\n"
            "        use(ln)\n"
        )
        assert codes(source, self.PLACEMENT_PATH) == ["REPRO508"]

    def test_hoisted_allocation_ok(self):
        source = (
            self.ALL
            + "import numpy as np\n"
            "def score(plans, n, d):\n"
            "    ln = np.zeros((n, d))\n"
            "    for plan in plans:\n"
            "        ln[:] = 0.0\n"
            "        use(ln)\n"
        )
        assert codes(source, self.PLACEMENT_PATH) == []

    def test_one_dimensional_allocation_ok(self):
        # Flagging every tiny vector would be noise; the rule targets
        # the (n_nodes, ...)-shaped dense state.
        source = self.ALL + self.LOOP.replace("np.zeros((n, d))",
                                              "np.zeros(n)")
        assert codes(source, self.PLACEMENT_PATH) == []

    def test_iterable_expression_not_counted_as_loop_body(self):
        source = (
            self.ALL
            + "import numpy as np\n"
            "def f(n, d):\n"
            "    for row in np.zeros((n, d)):\n"
            "        use(row)\n"
        )
        assert codes(source, self.PLACEMENT_PATH) == []

    def test_same_loop_ok_outside_placement(self):
        assert codes(
            self.ALL + self.LOOP, Path("src/repro/simulator/engine.py")
        ) == []
        assert codes(self.LOOP, Path("tests/test_example.py")) == []

    def test_noqa_with_justification_suppresses(self):
        source = self.ALL + self.LOOP.replace(
            "ln = np.zeros((n, d))",
            "ln = np.zeros((n, d))  "
            "# noqa: REPRO508  # fresh buffer handed to worker",
        )
        assert codes(source, self.PLACEMENT_PATH) == []

    def test_placement_package_lints_clean(self):
        # The shipped placement package carries no dense per-candidate
        # allocation: the annealing/optimal/hierarchical kernels patch
        # deltas instead (the baseline is empty by construction).
        report = lint_paths([REPO_ROOT / "src" / "repro" / "placement"])
        assert [d.code for d in report] == []
