"""Tests for the process-wide QMC sample-point cache."""

import numpy as np
import pytest

from repro.core.volume import cache, qmc
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def isolated_cache():
    """Every test starts (and leaves) with an empty cache."""
    cache.clear_cache()
    yield
    cache.clear_cache()


class TestHitsAndMisses:
    def test_first_request_is_a_miss(self):
        cache.simplex_points(64, 3)
        stats = cache.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        assert stats["entries"] == 1

    def test_identical_request_hits(self):
        first = cache.simplex_points(64, 3)
        second = cache.simplex_points(64, 3)
        assert cache.cache_stats()["hits"] == 1
        np.testing.assert_array_equal(first, second)
        # Same storage, not a copy.
        assert np.shares_memory(first, second)

    def test_prefix_request_hits(self):
        full = cache.simplex_points(128, 3)
        prefix = cache.simplex_points(32, 3)
        assert cache.cache_stats()["hits"] == 1
        np.testing.assert_array_equal(full[:32], prefix)
        assert np.shares_memory(full, prefix)

    def test_distinct_streams_do_not_collide(self):
        cache.simplex_points(64, 3)
        cache.simplex_points(64, 4)
        cache.simplex_points(64, 3, method="random", seed=1)
        cache.simplex_points(64, 3, skip=10)
        stats = cache.cache_stats()
        assert stats["misses"] == 4
        assert stats["entries"] == 4


class TestCorrectness:
    def test_matches_fresh_generation(self):
        cached = cache.simplex_points(100, 4)
        fresh = qmc.generate_unit_simplex(100, 4)
        np.testing.assert_array_equal(cached, fresh)

    def test_halton_extension_is_bit_identical(self):
        # Growing a cached stream generates only the tail; the result
        # must equal a one-shot generation of the larger count.
        cache.simplex_points(50, 3)
        grown = cache.simplex_points(200, 3)
        np.testing.assert_array_equal(
            grown, qmc.generate_unit_simplex(200, 3)
        )
        # One generation + one extension, no full regeneration.
        assert cache.cache_stats()["misses"] == 2

    def test_seeded_random_extension_is_bit_identical(self):
        cache.simplex_points(50, 3, method="random", seed=9)
        grown = cache.simplex_points(200, 3, method="random", seed=9)
        np.testing.assert_array_equal(
            grown,
            qmc.generate_unit_simplex(200, 3, method="random", seed=9),
        )

    def test_earlier_views_stay_valid_after_growth(self):
        small = cache.simplex_points(20, 3)
        snapshot = small.copy()
        cache.simplex_points(500, 3)
        np.testing.assert_array_equal(small, snapshot)


class TestReadOnlyContract:
    def test_returned_arrays_are_read_only(self):
        points = cache.simplex_points(32, 3)
        with pytest.raises(ValueError):
            points[0, 0] = 0.5

    def test_unseeded_random_bypasses_cache_but_stays_read_only(self):
        points = cache.simplex_points(32, 3, method="random")
        assert cache.cache_stats()["entries"] == 0
        with pytest.raises(ValueError):
            points += 1.0

    def test_sample_unit_simplex_serves_from_cache(self):
        # The public qmc entry point and the cache hand out one storage.
        a = qmc.sample_unit_simplex(64, 3)
        b = cache.simplex_points(64, 3)
        assert np.shares_memory(a, b)
        assert cache.cache_stats()["hits"] == 1


class TestEviction:
    def test_lru_eviction_beyond_capacity(self):
        for seed in range(cache.MAX_ENTRIES + 5):
            cache.simplex_points(8, 2, method="random", seed=seed)
        stats = cache.cache_stats()
        assert stats["entries"] == cache.MAX_ENTRIES
        assert stats["evictions"] == 5

    def test_clear_cache_resets_everything(self):
        cache.simplex_points(64, 3)
        cache.clear_cache()
        stats = cache.cache_stats()
        assert stats == {
            "hits": 0, "misses": 0, "evictions": 0,
            "entries": 0, "points": 0,
        }


class TestValidationAndMetrics:
    def test_validation(self):
        with pytest.raises(ValueError):
            cache.simplex_points(-1, 2)
        with pytest.raises(ValueError):
            cache.simplex_points(8, 0)
        with pytest.raises(ValueError):
            cache.simplex_points(8, 2, skip=-1)
        with pytest.raises(ValueError, match="method"):
            cache.simplex_points(8, 2, method="sobol")

    def test_publish_metrics(self):
        cache.simplex_points(64, 3)
        cache.simplex_points(64, 3)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        rendered = registry.render_prometheus()
        assert "repro_volume_cache_hits 1" in rendered
        assert "repro_volume_cache_misses 1" in rendered
        assert "repro_volume_cache_points 64" in rendered
