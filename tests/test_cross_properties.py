"""Cross-module property tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import build_load_model
from repro.core.analysis import axis_headroom, headroom
from repro.core.clustering import cluster_operators
from repro.core.rod import rod_extend, rod_place
from repro.graphs import graph_from_dict, graph_to_dict, random_tree_graph
from repro.graphs.generator import RandomGraphConfig
from repro.simulator import Simulator

seeds = st.integers(0, 10_000)


def small_model(seed, num_inputs=2, ops=5):
    config = RandomGraphConfig(
        num_inputs=num_inputs, operators_per_tree=ops
    )
    return build_load_model(random_tree_graph(config, seed=seed))


class TestSerializationProperties:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(1, 3), st.integers(1, 8))
    def test_roundtrip_preserves_load_model(self, seed, inputs, ops):
        graph = random_tree_graph(
            RandomGraphConfig(num_inputs=inputs, operators_per_tree=ops),
            seed=seed,
        )
        rebuilt = graph_from_dict(graph_to_dict(graph))
        a = build_load_model(graph)
        b = build_load_model(rebuilt)
        assert a.variables == b.variables
        assert np.allclose(a.coefficients, b.coefficients)


class TestClusteringProperties:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.floats(0.1, 5.0, allow_nan=False),
           st.floats(0.1, 4.0, allow_nan=False))
    def test_clustering_is_always_a_partition(self, seed, threshold, cost):
        model = small_model(seed)
        clustering = cluster_operators(
            model, cost * 1e-4, threshold=threshold, max_weight=0.8
        )
        clustering.validate(model)  # raises if not a partition

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_zero_cost_never_clusters(self, seed):
        model = small_model(seed)
        clustering = cluster_operators(model, 0.0, threshold=0.1)
        assert clustering.num_clusters == model.num_operators


class TestRodExtendProperties:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(2, 4))
    def test_extend_pins_existing_and_covers_new(self, seed, nodes):
        base_config = RandomGraphConfig(num_inputs=2, operators_per_tree=4)
        base_graph = random_tree_graph(base_config, seed=seed)
        base_model = build_load_model(base_graph)
        placement = rod_place(base_model, [1.0] * nodes)

        # Grow: append an extra tree on a new stream.
        import random as pyrandom

        from repro.graphs.generator import _random_delay

        grown = graph_from_dict(graph_to_dict(base_graph))
        stream = grown.add_input("extra")
        rng = pyrandom.Random(seed + 1)
        for k in range(3):
            stream = grown.add_operator(
                _random_delay(f"x{k}", rng, base_config), [stream]
            )
        new_model = build_load_model(grown)
        extended = rod_extend(placement, new_model)
        for name in base_model.operator_names:
            assert extended.node_of(name) == placement.node_of(name)
        assert np.allclose(
            extended.node_coefficients().sum(axis=0),
            new_model.column_totals(),
        )


class TestAnalysisProperties:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.floats(0.05, 0.9, allow_nan=False))
    def test_headroom_scaling_is_exact_boundary(self, seed, utilization):
        from repro.workload.rates import scale_point_to_utilization

        model = small_model(seed)
        plan = rod_place(model, [1.0, 1.0])
        rates = scale_point_to_utilization(
            model, [1.0, 1.0], np.ones(model.num_variables), utilization
        )
        scale = headroom(plan, rates)
        fs = plan.feasible_set()
        assert fs.is_feasible(rates * scale, slack=1e-9)
        assert not fs.is_feasible(rates * scale * (1 + 1e-6), slack=0.0)

    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(0, 1))
    def test_axis_headroom_is_exact_boundary(self, seed, axis):
        model = small_model(seed)
        plan = rod_place(model, [1.0, 1.0])
        rates = np.full(model.num_variables, 1.0)
        fs = plan.feasible_set()
        assume(fs.is_feasible(rates))
        extra = axis_headroom(plan, rates, axis)
        assume(np.isfinite(extra))
        burst = rates.copy()
        burst[axis] += extra
        assert fs.is_feasible(burst, slack=1e-9)


class TestEngineProperties:
    @settings(max_examples=10, deadline=None)
    @given(seeds, st.floats(10.0, 200.0, allow_nan=False))
    def test_tuple_conservation_and_utilization(self, seed, rate):
        """Simulated demand matches the analytic model for any linear
        workload at any constant rate."""
        model = small_model(seed, num_inputs=1, ops=4)
        plan = rod_place(model, [1.0, 1.0])
        result = Simulator(plan, step_seconds=0.1).run(
            rates=[rate], duration=5.0
        )
        expected = plan.feasible_set().node_loads([rate])
        measured = result.node_busy / 5.0
        assert np.allclose(measured, expected, rtol=0.05, atol=1e-4)
        # Every source tuple is processed by the root operators.
        roots = [
            name for name in model.operator_names
            if not model.graph.upstream_operators(name)
        ]
        for name in roots:
            assert (
                result.operator_stats[name].tuples_in == result.tuples_in
            )
