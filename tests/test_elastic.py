"""Elastic parallelism: skew model, load-model surgery, placer,
runtime repartitioning, and the semantic-transparency invariant."""

import numpy as np
import pytest

from repro.core.load_model import (
    build_load_model,
    merge_load_model,
    partition_load_model,
)
from repro.core.plans import placement_from_mapping
from repro.dynamics import ElasticityController, Repartition
from repro.elastic import (
    KeyHistogram,
    partition_program,
    rebalanced_fractions,
    stable_key_hash,
    stable_unit_hash,
)
from repro.graphs.operators import Delay
from repro.graphs.partition import partition_operator
from repro.graphs.query_graph import QueryGraph
from repro.obs import MemorySink, Tracer
from repro.placement import ElasticPlacer, LLFPlacer, RODPlacer
from repro.runtime import (
    DistributedInterpreter,
    FnAggregate,
    FnMap,
    Interpreter,
    Record,
    StreamProgram,
)
from repro.simulator.engine import Simulator


def skewed_graph(hot_cost: float = 3e-3) -> QueryGraph:
    """One operator too heavy for any single unit-capacity node."""
    g = QueryGraph()
    i = g.add_input("I")
    g.add_operator(Delay("hot", cost=hot_cost, selectivity=0.8), [i])
    g.add_operator(Delay("mid", cost=hot_cost / 7.5, selectivity=0.5),
                   ["hot.out"])
    return g


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_key_hash("user-17") == stable_key_hash("user-17")
        assert stable_unit_hash(("a", 3)) == stable_unit_hash(("a", 3))

    def test_unit_range(self):
        for key in ["x", 0, (1, "y"), None, 3.5]:
            assert 0.0 <= stable_unit_hash(key) < 1.0

    def test_known_value_pins_the_hash_function(self):
        # crc32(b"'k'") — a change to the hashing scheme silently
        # reshuffles every deployed partition, so pin it.
        import zlib

        assert stable_key_hash("k") == zlib.crc32(b"'k'")


class TestKeyHistogram:
    def test_balanced_cut_under_skew(self):
        histogram = KeyHistogram()
        for index in range(64):
            histogram.observe(f"key{index}", 100.0 if index < 4 else 1.0)
        fractions = histogram.fractions(4)
        assert sum(fractions) == pytest.approx(1.0)
        shares = histogram.observed_shares(fractions)
        # Hot keys force uneven widths but near-even observed weight.
        assert max(shares) < 0.5

    def test_uniform_fallback_when_too_few_keys(self):
        histogram = KeyHistogram({"only": 5.0})
        assert histogram.fractions(4) == (0.25, 0.25, 0.25, 0.25)
        assert KeyHistogram().fractions(2) == (0.5, 0.5)

    def test_uniform_widths_expose_skew(self):
        histogram = KeyHistogram()
        for index in range(32):
            histogram.observe(f"key{index}", 50.0 if index == 0 else 1.0)
        shares = histogram.observed_shares((0.5, 0.5))
        assert max(shares) > 0.6

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            KeyHistogram().observe("k", -1.0)


class TestRebalancedFractions:
    def test_equalizes_uniform_density(self):
        # Loads proportional to fractions mean uniform density: the
        # correction is the uniform split.
        result = rebalanced_fractions((0.8, 0.2), (0.8, 0.2))
        assert result == pytest.approx((0.5, 0.5))

    def test_shrinks_the_hot_range(self):
        result = rebalanced_fractions((0.5, 0.5), (3.0, 1.0))
        assert result[0] < result[1]
        assert sum(result) == pytest.approx(1.0)

    def test_zero_load_is_floored_not_infinite(self):
        result = rebalanced_fractions((0.5, 0.5), (1.0, 0.0))
        assert 0.0 < result[0] < 1.0
        assert sum(result) == pytest.approx(1.0)

    def test_min_fraction_clamps(self):
        result = rebalanced_fractions(
            (0.5, 0.5), (1000.0, 1.0), min_fraction=0.1
        )
        assert min(result) == pytest.approx(0.1)
        assert sum(result) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            rebalanced_fractions((0.5, 0.5), (1.0,))
        with pytest.raises(ValueError, match="min_fraction"):
            rebalanced_fractions((0.5, 0.5), (1.0, 1.0),
                                 min_fraction=0.6)


class TestPartitionLoadModel:
    def test_matches_full_rebuild(self):
        graph = skewed_graph()
        surgical = partition_load_model(
            build_load_model(graph), "hot", 3, fractions=(0.5, 0.3, 0.2)
        )
        rebuilt = build_load_model(partition_operator(
            graph, "hot", 3, fractions=(0.5, 0.3, 0.2)
        ))
        assert surgical.operator_names == rebuilt.operator_names
        np.testing.assert_allclose(
            surgical.coefficients, rebuilt.coefficients, atol=1e-15
        )

    def test_shapes_and_columns(self):
        model = build_load_model(skewed_graph())
        split = partition_load_model(model, "hot", 4)
        # 1 operator becomes 4 routes + 4 instances + 1 merge.
        assert split.num_operators == model.num_operators + 8
        # Rate variables (columns) are untouched by partitioning.
        assert split.num_variables == model.num_variables
        assert split.variables == model.variables
        for part in range(4):
            assert f"hot.route{part}.out" in split.stream_coefficients
            assert f"hot.part{part}.out" in split.stream_coefficients

    def test_load_conserved_without_overhead(self):
        model = build_load_model(skewed_graph())
        split = partition_load_model(
            model, "hot", 4, route_cost=0.0, merge_cost=0.0
        )
        np.testing.assert_allclose(
            split.column_totals(), model.column_totals(), atol=1e-15
        )

    def test_merge_inverts_exactly(self):
        model = build_load_model(skewed_graph())
        split = partition_load_model(model, "hot", 2,
                                     fractions=(0.7, 0.3))
        merged = merge_load_model(split, "hot")
        assert merged.operator_names == model.operator_names
        assert np.array_equal(merged.coefficients, model.coefficients)
        assert not merged.graph.partition_groups

    def test_merge_requires_a_group(self):
        model = build_load_model(skewed_graph())
        with pytest.raises(KeyError):
            merge_load_model(model, "hot")


def _map_program():
    program = StreamProgram("transparent")
    src = program.add_input("src")
    program.add(
        FnMap("scale", lambda d: {"k": d["k"], "v": d["v"] * 2}),
        [src],
    )
    return program


def _skewed_records(count: int = 200):
    # Zipf-flavoured keys: key0 dominates.
    keys = ["key0", "key0", "key0", "key1", "key2"]
    return [
        Record(t * 0.01, {"k": keys[t % len(keys)], "v": t})
        for t in range(count)
    ]


class TestPartitionProgramTransparency:
    @pytest.mark.parametrize("ways", [2, 4])
    def test_stateless_split_is_bit_identical(self, ways):
        records = _skewed_records()
        base = Interpreter(_map_program()).run({"src": records})
        split_program = partition_program(
            _map_program(), "scale", ways, key=lambda d: d["k"]
        )
        split = Interpreter(split_program).run({"src": records})
        (base_sink,) = base.sink_records.values()
        (split_sink,) = split.sink_records.values()
        assert split_sink == base_sink

    def test_every_record_lands_in_exactly_one_partition(self):
        records = _skewed_records()
        program = partition_program(
            _map_program(), "scale", 4, key=lambda d: d["k"]
        )
        result = Interpreter(program).run({"src": records})
        route_out = sum(
            result.operator_out[f"scale.route{part}"] for part in range(4)
        )
        assert route_out == len(records)

    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_distributed_answers_identical_at_any_parallelism(
        self, ways
    ):
        records = _skewed_records()

        def build():
            program = StreamProgram("grouped")
            src = program.add_input("src")
            scaled = program.add(
                FnMap("scale", lambda d: {"k": d["k"], "v": d["v"]}),
                [src],
            )
            program.add(
                FnAggregate(
                    "sum", window=0.5,
                    reducer=lambda rs: {
                        "total": sum(r.data["v"] for r in rs)
                    },
                    key=lambda d: d["k"],
                ),
                [scaled],
            )
            return program

        baseline = Interpreter(build()).run({"src": records})
        program = build() if ways == 1 else partition_program(
            build(), "scale", ways, key=lambda d: d["k"]
        )
        nodes = max(2, ways)
        assignment = {
            name: index % nodes
            for index, name in enumerate(program.operator_names)
        }
        outcome = DistributedInterpreter(
            program, assignment, nodes
        ).run({"src": records})
        assert outcome.result.sink_records["sum.out"] == (
            baseline.sink_records["sum.out"]
        )

    def test_skewed_fractions_route_by_hash_range(self):
        records = _skewed_records()
        histogram = KeyHistogram()
        for record in records:
            histogram.observe(record.data["k"])
        fractions = histogram.fractions(2)
        program = partition_program(
            _map_program(), "scale", 2, key=lambda d: d["k"],
            fractions=fractions,
        )
        result = Interpreter(program).run({"src": records})
        counts = [
            result.operator_out[f"scale.route{part}"] for part in range(2)
        ]
        assert sum(counts) == len(records)
        shares = histogram.observed_shares(fractions)
        assert counts[0] / len(records) == pytest.approx(
            shares[0], abs=0.02
        )

    def test_arity_validation(self):
        program = StreamProgram("bad")
        a = program.add_input("a")
        b = program.add_input("b")
        from repro.runtime import FnUnion

        program.add(FnUnion("u", arity=2), [a, b])
        with pytest.raises(ValueError, match="single-input"):
            partition_program(program, "u", 2, key=lambda d: d["k"])


class TestElasticPlacer:
    def test_lifts_the_static_ceiling(self):
        model = build_load_model(skewed_graph())
        caps = [1.0] * 4
        static_ratio = max(
            RODPlacer().place(model, caps).volume_ratio(samples=2048,
                                                        seed=0),
            LLFPlacer().place(model, caps).volume_ratio(samples=2048,
                                                        seed=0),
        )
        assert static_ratio < 0.5  # the premise: one hot op caps it
        placer = ElasticPlacer(target_ratio=0.9, samples=2048, seed=0)
        elastic_ratio = placer.place(model, caps).volume_ratio(
            samples=2048, seed=0
        )
        assert elastic_ratio > static_ratio + 0.2
        assert any(
            entry["action"] == "split" and entry["kept"]
            for entry in placer.history
        )

    def test_no_split_when_target_already_met(self):
        model = build_load_model(skewed_graph())
        placer = ElasticPlacer(target_ratio=0.01, samples=1024, seed=0)
        placement = placer.place(model, [1.0] * 4)
        assert placer.history == []
        assert placement.model.graph.partition_groups == {}

    def test_unhelpful_split_is_rolled_back(self):
        # A single node: splitting cannot widen the feasible set.
        model = build_load_model(skewed_graph())
        placer = ElasticPlacer(target_ratio=0.99, samples=1024, seed=0)
        placement = placer.place(model, [4.0])
        assert placement.model.graph.partition_groups == {}
        assert all(
            not entry["kept"] for entry in placer.history
        )

    def test_emits_split_trace_events(self):
        sink = MemorySink()
        model = build_load_model(skewed_graph())
        placer = ElasticPlacer(
            target_ratio=0.9, samples=1024, seed=0, tracer=Tracer(sink)
        )
        placer.place(model, [1.0] * 4)
        kinds = {event.type for event in sink.events}
        assert "elastic.split" in kinds

    def test_validation(self):
        with pytest.raises(ValueError, match="target_ratio"):
            ElasticPlacer(target_ratio=0.0)
        with pytest.raises(ValueError, match="ways"):
            ElasticPlacer(ways=1)


def _partitioned_placement(fractions=(0.8, 0.2)):
    model = partition_load_model(
        build_load_model(skewed_graph()), "hot", len(fractions),
        fractions=fractions,
    )
    mapping = {
        "hot.route0": 2, "hot.part0": 0,
        "hot.route1": 2, "hot.part1": 1,
        "hot.merge": 2, "mid": 2,
    }
    return placement_from_mapping(model, [1.0] * 3, mapping)


class TestElasticityController:
    def _decide(self, controller, placement, loads, now=1.0):
        return controller.decide(
            now,
            np.zeros(placement.num_nodes),
            placement.to_mapping(),
            placement.model,
            np.ones(placement.num_nodes),
            operator_loads=loads,
        )

    def test_hot_group_repartitions_toward_balance(self):
        placement = _partitioned_placement()
        controller = ElasticityController(period=1.0, smoothing=1.0)
        moves = self._decide(
            controller, placement,
            {"hot.part0": 0.8, "hot.part1": 0.2},
        )
        assert len(moves) == 1
        move = moves[0]
        assert isinstance(move, Repartition)
        assert move.operator == "hot"
        assert move.fractions == pytest.approx((0.5, 0.5))
        assert controller.history == moves

    def test_cooldown_pins_a_just_rebalanced_group(self):
        placement = _partitioned_placement()
        controller = ElasticityController(
            period=1.0, smoothing=1.0, cooldown=10.0
        )
        loads = {"hot.part0": 0.8, "hot.part1": 0.2}
        assert self._decide(controller, placement, loads, now=1.0)
        assert self._decide(
            controller, placement, loads, now=2.0
        ) == []
        # Past the cooldown the group is actionable again.
        assert self._decide(controller, placement, loads, now=12.0)

    def test_balanced_group_is_left_alone(self):
        placement = _partitioned_placement(fractions=(0.5, 0.5))
        controller = ElasticityController(period=1.0, smoothing=1.0)
        assert self._decide(
            controller, placement,
            {"hot.part0": 0.31, "hot.part1": 0.29},
        ) == []

    def test_cold_skewed_group_resets_to_uniform(self):
        placement = _partitioned_placement(fractions=(0.8, 0.2))
        controller = ElasticityController(
            period=1.0, smoothing=1.0, cold_load=0.05
        )
        moves = self._decide(
            controller, placement,
            {"hot.part0": 0.008, "hot.part1": 0.002},
        )
        assert len(moves) == 1
        assert moves[0].fractions == pytest.approx((0.5, 0.5))

    def test_histogram_supplies_balanced_shares(self):
        histogram = KeyHistogram()
        for index in range(64):
            histogram.observe(f"key{index}",
                              100.0 if index < 4 else 1.0)
        placement = _partitioned_placement()
        controller = ElasticityController(
            period=1.0, smoothing=1.0, histograms={"hot": histogram}
        )
        (move,) = self._decide(
            controller, placement,
            {"hot.part0": 0.8, "hot.part1": 0.2},
        )
        assert move.fractions == pytest.approx(
            histogram.observed_shares(histogram.fractions(2))
        )

    def test_no_partition_groups_is_a_noop(self):
        model = build_load_model(skewed_graph())
        placement = placement_from_mapping(
            model, [1.0] * 2, {"hot": 0, "mid": 1}
        )
        controller = ElasticityController(period=1.0)
        assert self._decide(
            controller, placement, {"hot": 0.9, "mid": 0.1}
        ) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="hot_threshold"):
            ElasticityController(hot_threshold=1.0)
        with pytest.raises(ValueError, match="smoothing"):
            ElasticityController(smoothing=0.0)
        with pytest.raises(ValueError, match="cooldown"):
            ElasticityController(cooldown=-1.0)


class TestEngineRepartition:
    def _run(self, controller=None, tracer=None, duration=6.0):
        placement = _partitioned_placement()
        simulator = Simulator(
            placement, step_seconds=0.1, controller=controller,
            tracer=tracer,
        )
        return simulator.run(rates=[400.0], duration=duration)

    def test_repartition_evens_node_load_without_migrating(self):
        static = self._run()
        controller = ElasticityController(period=1.0)
        elastic = self._run(controller=controller)
        assert static.migration_count == 0
        assert elastic.migration_count == 0
        assert len(controller.history) >= 1
        assert elastic.max_utilization < static.max_utilization - 0.2

    def test_trace_carries_repartition_and_decision(self):
        sink = MemorySink()
        controller = ElasticityController(period=1.0)
        self._run(controller=controller, tracer=Tracer(sink))
        repartitions = [
            event for event in sink.events
            if event.type == "elastic.repartition"
        ]
        assert repartitions
        first = repartitions[0].fields
        assert first["operator"] == "hot"
        assert first["fractions"] == pytest.approx((0.5, 0.5))
        assert first["decision"] >= 0
        decisions = [
            event for event in sink.events
            if event.type == "decision.evaluated"
            and event.fields.get("reason") == "repartition"
        ]
        assert decisions
        assert decisions[0].fields["trigger"] in ("split", "merge")
        (end,) = [
            event for event in sink.events if event.type == "sim.end"
        ]
        assert end.fields["repartitions"] == len(repartitions)
        assert end.fields["migrations"] == 0

    def test_untraced_sim_end_has_no_repartition_key_when_none_fired(
        self,
    ):
        sink = MemorySink()
        self._run(tracer=Tracer(sink))
        (end,) = [
            event for event in sink.events if event.type == "sim.end"
        ]
        assert "repartitions" not in end.fields

    def test_runs_are_deterministic(self):
        first = self._run(ElasticityController(period=1.0))
        second = self._run(ElasticityController(period=1.0))
        assert first.tuples_out == second.tuples_out
        assert first.latency.mean() == second.latency.mean()
        np.testing.assert_array_equal(first.node_busy, second.node_busy)

    def test_stale_repartition_is_ignored(self):
        class Stale(ElasticityController):
            fired = False

            def decide(self, now, *args, **kwargs):
                if not self.fired:
                    self.fired = True
                    return [Repartition(
                        operator="ghost", fractions=(0.5, 0.5),
                        pause_seconds=0.1,
                    ), Repartition(
                        operator="hot", fractions=(0.25, 0.25, 0.5),
                        pause_seconds=0.1,
                    )]
                return []

        result = self._run(Stale(period=1.0))
        assert result.migration_count == 0
