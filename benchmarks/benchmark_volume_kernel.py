"""pytest-benchmark suite for the fast volume kernel.

Covers the four hot paths the perf work targets: raw Halton generation,
the memoized sample-point cache's hit path, the streaming feasibility
estimate, and an annealing placement with incremental scoring.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/benchmark_volume_kernel.py \
        -q --benchmark-json=/tmp/bench_volume.json

CI compares the fresh JSON against the committed baseline
``benchmarks/BENCH_volume.json`` via ``check_volume_budget.py``; refresh
the baseline with the command above (writing to the baseline path) after
an intentional kernel change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.volume import cache, qmc
from repro.experiments.common import make_model
from repro.placement import AnnealingPlacer


@pytest.fixture(autouse=True)
def fresh_cache():
    cache.clear_cache()
    yield
    cache.clear_cache()


def test_halton_generation(benchmark):
    """Vectorized Halton points: 20k x 8 without a per-point loop."""
    result = benchmark(qmc.halton, 20_000, 8)
    assert result.shape == (20_000, 8)


def test_cache_hit_path(benchmark):
    """Serving memoized points must cost a lookup plus a slice."""
    cache.simplex_points(8192, 5)  # warm

    def hit():
        return cache.simplex_points(4096, 5)

    result = benchmark(hit)
    assert result.shape == (4096, 5)
    assert cache.cache_stats()["misses"] == 1


def test_feasible_fraction(benchmark):
    rng = np.random.default_rng(7)
    weights = rng.uniform(0.5, 3.0, size=(10, 5))

    def estimate():
        return qmc.feasible_fraction(weights, samples=8192)

    fraction = benchmark(estimate)
    assert 0.0 <= fraction <= 1.0


def test_annealing_place(benchmark):
    """Incremental scoring: O(samples) per move, not a full rescore."""
    model = make_model(5, 8, seed=3)
    capacities = [1.0] * 10
    placer = AnnealingPlacer(iterations=1000, samples=1024, seed=1)
    placer.place(model, capacities)  # warm the sample cache

    plan = benchmark(placer.place, model, capacities)
    assert len(plan.assignment) == model.num_operators
