"""pytest-benchmark suite for the fast volume kernel.

Covers the four hot paths the perf work targets: raw Halton generation,
the memoized sample-point cache's hit path, the streaming feasibility
estimate, and an annealing placement with incremental scoring.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/benchmark_volume_kernel.py \
        -q --benchmark-json=/tmp/bench_volume.json

Scale tiers (cumulative, see ``conftest.py``): ``--tier mid`` adds the
hierarchical-vs-flat placement race at 384 operators / 96 nodes, which
asserts the scale path's headline numbers — hierarchical+batched at
least 4x faster than flat annealing with final volume within 5%.
``--tier large`` adds the 1000-node / 64-stream runs. Refresh the full
baseline with ``--tier large``.

CI compares the fresh JSON against the committed baseline
``benchmarks/BENCH_volume.json`` via ``check_volume_budget.py``; refresh
the baseline with the command above (writing to the baseline path) after
an intentional kernel change.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.volume import (
    SparseWeights,
    cache,
    qmc,
    sparse_feasible_mask,
)
from repro.experiments.common import make_model
from repro.placement import AnnealingPlacer, HierarchicalPlacer


@pytest.fixture(autouse=True)
def fresh_cache():
    cache.clear_cache()
    yield
    cache.clear_cache()


def test_halton_generation(benchmark):
    """Vectorized Halton points: 20k x 8 without a per-point loop."""
    result = benchmark(qmc.halton, 20_000, 8)
    assert result.shape == (20_000, 8)


def test_cache_hit_path(benchmark):
    """Serving memoized points must cost a lookup plus a slice."""
    cache.simplex_points(8192, 5)  # warm

    def hit():
        return cache.simplex_points(4096, 5)

    result = benchmark(hit)
    assert result.shape == (4096, 5)
    assert cache.cache_stats()["misses"] == 1


def test_feasible_fraction(benchmark):
    rng = np.random.default_rng(7)
    weights = rng.uniform(0.5, 3.0, size=(10, 5))

    def estimate():
        return qmc.feasible_fraction(weights, samples=8192)

    fraction = benchmark(estimate)
    assert 0.0 <= fraction <= 1.0


def test_annealing_place(benchmark):
    """Incremental scoring: O(samples) per move, not a full rescore."""
    model = make_model(5, 8, seed=3)
    capacities = [1.0] * 10
    placer = AnnealingPlacer(iterations=1000, samples=1024, seed=1)
    placer.place(model, capacities)  # warm the sample cache

    plan = benchmark(placer.place, model, capacities)
    assert len(plan.assignment) == model.num_operators


# --- mid tier: the hierarchical-vs-flat placement race -----------------

_MID_HIER = dict(group_size=8, refine_iterations=100, samples=512,
                 score_batch=16, seed=5)


def test_mid_hierarchical_vs_flat(benchmark, require_tier):
    """The scale path's acceptance numbers, asserted as a benchmark:
    hierarchical cluster-then-place with batched scoring is at least 4x
    faster than flat annealing at 384 operators / 96 nodes, and gives
    up no more than 5% of the flat baseline's feasible-set volume."""
    require_tier("mid")
    model = make_model(6, 64, seed=5)
    capacities = [1.0] * 96
    flat = AnnealingPlacer(seed=5)
    hier = HierarchicalPlacer(**_MID_HIER)

    flat_plan = flat.place(model, capacities)  # warm the sample cache
    flat_times = []
    for _ in range(3):
        start = time.perf_counter()
        flat_plan = flat.place(model, capacities)
        flat_times.append(time.perf_counter() - start)

    hier_plan = benchmark(hier.place, model, capacities)

    hier_time = benchmark.stats.stats.min
    flat_time = min(flat_times)
    assert flat_time >= 4.0 * hier_time, (
        f"hierarchical {hier_time * 1e3:.1f} ms vs "
        f"flat {flat_time * 1e3:.1f} ms: speedup below 4x"
    )
    flat_volume = flat_plan.volume_ratio(samples=4096)
    hier_volume = hier_plan.volume_ratio(samples=4096)
    assert hier_volume >= 0.95 * flat_volume, (
        f"hierarchical volume {hier_volume:.4f} is more than 5% below "
        f"flat volume {flat_volume:.4f}"
    )


def test_mid_flat_annealing_place(benchmark, require_tier):
    """Flat annealing at mid scale — the baseline side of the race,
    tracked on its own so a regression in either placer is visible."""
    require_tier("mid")
    model = make_model(6, 64, seed=5)
    capacities = [1.0] * 96
    placer = AnnealingPlacer(seed=5)
    placer.place(model, capacities)  # warm the sample cache

    plan = benchmark.pedantic(placer.place, args=(model, capacities),
                              rounds=3, iterations=1)
    assert len(plan.assignment) == model.num_operators


# --- large tier: 1000 nodes, 64 input streams --------------------------


def test_large_thousand_node_hierarchical(benchmark, require_tier):
    """End-to-end hierarchical placement of 2048 operators over 1000
    nodes in a 64-stream model — the tentpole's headline scale."""
    require_tier("large")
    model = make_model(64, 32, seed=1)
    placer = HierarchicalPlacer(group_size=8, refine_iterations=50,
                                samples=256, score_batch=16, seed=5)
    capacities = [1.0] * 1000
    placer.place(model, capacities)  # warm the sample cache

    plan = benchmark.pedantic(placer.place, args=(model, capacities),
                              rounds=3, iterations=1)
    assert len(plan.assignment) == model.num_operators
    assert len(set(plan.assignment)) == 1000


def test_large_sparse_feasible_mask(benchmark, require_tier):
    """Sparse structure-aware scoring of a 1000-node, 64-axis weight
    matrix: per-node cost scales with active columns, not dimension."""
    require_tier("large")
    rng = np.random.default_rng(17)
    weights = np.zeros((1000, 64))
    for i in range(1000):
        active = rng.choice(64, size=6, replace=False)
        weights[i, active] = rng.uniform(0.2, 3.0, size=6)
    sparse = SparseWeights(weights)
    points = qmc.sample_unit_simplex(4096, 64, method="halton")

    mask, _ = benchmark(sparse_feasible_mask, sparse, points)
    dense = np.all(points @ weights.T <= 1.0 + 1e-12, axis=1)
    assert np.array_equal(mask, dense)
