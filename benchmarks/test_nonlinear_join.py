"""Reconstructed Section 6.2 experiment — non-linear (join) workloads."""

from repro.experiments import format_rows, nonlinear

from conftest import save_table


def test_nonlinear_join(benchmark):
    rows = benchmark.pedantic(
        lambda: nonlinear.run(
            num_join_pairs=2,
            downstream_per_join=8,
            num_nodes=4,
            directions=30,
            seed=57,
        ),
        rounds=1,
        iterations=1,
    )
    save_table("nonlinear_join", format_rows(rows))
    by_alg = {r["algorithm"]: r for r in rows}
    # Linearization introduced exactly one variable per join.
    assert by_alg["rod"]["aux_variables"] == 2
    # ROD on the linearized model is not dominated by any baseline.
    for name, row in by_alg.items():
        assert (
            by_alg["rod"]["feasible_fraction"]
            >= row["feasible_fraction"] - 0.02
        ), name
    # Everyone handles light load; nobody survives at saturation.
    for row in rows:
        assert row["feasible@0.2"] == 1.0
