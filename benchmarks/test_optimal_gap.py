"""Section 7.3.1 — ROD vs the exhaustive optimum on small graphs.

Paper numbers: mean ROD/optimal feasible-set ratio 0.95, minimum 0.82.
"""

from repro.experiments import format_rows, optimal_gap

from conftest import save_table


def test_optimal_gap(benchmark):
    rows = benchmark.pedantic(
        lambda: optimal_gap.run(
            dimensions=(2, 3, 4, 5),
            operators_per_tree=3,
            num_nodes=2,
            graphs_per_dimension=3,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )
    agg = optimal_gap.aggregate(rows)
    table = format_rows(rows) + (
        f"\n\nmean ratio: {agg['mean_ratio']:.4f} (paper: 0.95)"
        f"\nmin ratio:  {agg['min_ratio']:.4f} (paper: 0.82)"
    )
    save_table("optimal_gap", table)
    assert agg["mean_ratio"] >= 0.85
    assert agg["min_ratio"] >= 0.75
