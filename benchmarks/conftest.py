"""Benchmark plumbing: each bench regenerates one paper table/figure.

Every benchmark prints its table and also writes it to
``benchmarks/results/<id>.txt`` so the regenerated artifacts survive
pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benchmark tiers are cumulative: ``mid`` runs everything in ``default``
# plus the mid-scale placement race, ``large`` adds the 1000-node runs.
TIER_ORDER = {"default": 0, "mid": 1, "large": 2}


def pytest_addoption(parser):
    parser.addoption(
        "--tier", action="store", default="default",
        choices=tuple(TIER_ORDER),
        help="benchmark tier: default = kernel micro-benches; "
             "mid adds the hierarchical-vs-flat placement race; "
             "large adds the 1000-node scale runs",
    )


@pytest.fixture
def require_tier(request):
    """Callable fixture: skip the benchmark unless ``--tier`` covers it."""
    def _require(wanted: str) -> None:
        have = request.config.getoption("--tier")
        if TIER_ORDER[have] < TIER_ORDER[wanted]:
            pytest.skip(f"requires --tier {wanted} (running --tier {have})")
    return _require


def save_table(artifact_id: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{artifact_id}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {artifact_id} ===")
    print(text)
