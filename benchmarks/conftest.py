"""Benchmark plumbing: each bench regenerates one paper table/figure.

Every benchmark prints its table and also writes it to
``benchmarks/results/<id>.txt`` so the regenerated artifacts survive
pytest's output capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(artifact_id: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{artifact_id}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {artifact_id} ===")
    print(text)
