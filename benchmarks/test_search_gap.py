"""Extension — greedy ROD vs direct volume search (annealing)."""

from repro.experiments import format_rows, search_gap

from conftest import save_table


def test_search_gap(benchmark):
    rows = benchmark.pedantic(
        lambda: search_gap.run(), rounds=1, iterations=1
    )
    save_table("search_gap", format_rows(rows))
    by_strategy = {r["strategy"]: r for r in rows}
    rod = by_strategy["rod"]
    # Polishing ROD with search never loses (the anneal keeps the best).
    assert (
        by_strategy["anneal-polish"]["volume_ratio"]
        >= rod["volume_ratio"] - 0.01
    )
    # From scratch with a small budget, search does not beat ROD.
    assert (
        by_strategy["anneal-scratch-short"]["volume_ratio"]
        <= rod["volume_ratio"] + 0.01
    )
    # A 10x larger budget lands in ROD's neighbourhood (within a few
    # percent either way) while costing orders of magnitude more time.
    long = by_strategy["anneal-scratch-long"]
    assert abs(long["volume_ratio"] - rod["volume_ratio"]) < 0.05
    assert long["planning_seconds"] > 100 * rod["planning_seconds"]
