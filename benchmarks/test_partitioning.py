"""Reconstructed §7.3.1 remark — data partitioning widens graphs and
improves resilience."""

from repro.experiments import format_rows, partitioning

from conftest import save_table


def test_partitioning(benchmark):
    rows = benchmark.pedantic(
        lambda: partitioning.run(ways_options=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    save_table("partitioning", format_rows(rows))
    rod = {r["ways"]: r for r in rows if r["algorithm"] == "rod"}
    ways = sorted(rod)
    # ROD's feasible-set ratio improves monotonically (within noise) as
    # heavy operators are split into balanceable pieces.
    curve = [rod[w]["ratio_to_ideal"] for w in ways]
    assert curve[-1] > curve[0] + 0.1
    for earlier, later in zip(curve, curve[1:]):
        assert later >= earlier - 0.03
    # The rewrite adds only routing/merge overhead, not hidden load.
    for w in ways:
        assert rod[w]["load_overhead"] < 0.2
    # Operator counts grow as promised.
    assert rod[ways[-1]]["operators"] > rod[1]["operators"]
