"""Reconstructed Section 6.1 experiment — known lower bounds on rates."""

import numpy as np

from repro.experiments import format_rows, lower_bound

from conftest import save_table


def test_lower_bound(benchmark):
    def run_averaged():
        """Average the single-graph harness over several workloads."""
        all_rows = []
        for seed in (43, 44, 45, 46):
            all_rows.append(
                lower_bound.run(
                    floor_fractions=(0.0, 0.2, 0.4, 0.6),
                    samples=4096,
                    seed=seed,
                )
            )
        merged = []
        for i in range(len(all_rows[0])):
            row = dict(all_rows[0][i])
            for key in ("restricted_ratio", "plane_distance_from_floor"):
                row[key] = float(
                    np.mean([rows[i][key] for rows in all_rows])
                )
            merged.append(row)
        return merged

    rows = benchmark.pedantic(run_averaged, rounds=1, iterations=1)
    save_table("lower_bound", format_rows(rows))
    by_key = {(r["floor_fraction"], r["algorithm"]): r for r in rows}
    # At zero floor the variants coincide.
    assert by_key[(0.0, "rod")]["restricted_ratio"] == (
        by_key[(0.0, "rod_lb")]["restricted_ratio"]
    )
    # With a substantial floor, floor-aware ROD wins on average.
    for fraction in (0.4, 0.6):
        assert (
            by_key[(fraction, "rod_lb")]["restricted_ratio"]
            >= by_key[(fraction, "rod")]["restricted_ratio"]
        )
    # Both dominate the balancer tuned to the floor point.
    for fraction in (0.2, 0.4, 0.6):
        assert (
            by_key[(fraction, "rod_lb")]["restricted_ratio"]
            > by_key[(fraction, "llf_at_floor")]["restricted_ratio"]
        )
