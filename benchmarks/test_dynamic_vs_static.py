"""Reconstructed Section 1 motivation — resilient static placement vs
reactive operator migration."""

from repro.experiments import dynamic_migration, format_rows

from conftest import save_table


def test_dynamic_vs_static(benchmark):
    rows = benchmark.pedantic(
        lambda: dynamic_migration.run(), rounds=1, iterations=1
    )
    save_table("dynamic_vs_static", format_rows(rows))
    by_key = {(r["scenario"], r["strategy"]): r for r in rows}

    # Short burst: chasing it with migrations makes latency worse than
    # doing nothing; ROD absorbs it outright.
    burst_rod = by_key[("burst", "static_rod")]
    burst_static = by_key[("burst", "static_llf")]
    burst_aggressive = by_key[("burst", "dynamic_llf_aggressive")]
    assert burst_aggressive["migrations"] > 0
    assert (
        burst_aggressive["p95_latency_ms"] > burst_static["p95_latency_ms"]
    )
    assert burst_rod["p95_latency_ms"] <= burst_static["p95_latency_ms"]

    # Sustained shift: the conservative reactive balancer pays a few
    # migrations and recovers; the mistuned static balancer stays slow.
    shift_static = by_key[("shift", "static_llf")]
    shift_conservative = by_key[("shift", "dynamic_llf_conservative")]
    assert 0 < shift_conservative["migrations"] <= 5
    assert (
        shift_conservative["p95_latency_ms"]
        < shift_static["p95_latency_ms"]
    )

    # ROD needs no migration in either scenario and is never beaten.
    for scenario in ("burst", "shift"):
        rod = by_key[(scenario, "static_rod")]
        assert rod["migrations"] == 0
        for strategy in (
            "static_llf",
            "dynamic_llf_aggressive",
            "dynamic_llf_conservative",
        ):
            assert (
                rod["p95_latency_ms"]
                <= by_key[(scenario, strategy)]["p95_latency_ms"] + 1e-6
            )
