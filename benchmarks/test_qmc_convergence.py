"""Methodology — Quasi-Monte-Carlo vs plain Monte Carlo convergence."""

from repro.experiments import format_rows, qmc_convergence

from conftest import save_table


def test_qmc_convergence(benchmark):
    rows = benchmark.pedantic(
        lambda: qmc_convergence.run(), rounds=1, iterations=1
    )
    save_table("qmc_convergence", format_rows(rows))
    # Errors shrink with sample count for both samplers.
    halton = [r["halton_mean_abs_error"] for r in rows]
    random = [r["random_mean_abs_error"] for r in rows]
    assert halton[-1] < halton[0]
    assert random[-1] < random[0]
    # Halton is at least as accurate at every size and clearly ahead at
    # the largest (its error decays ~1/N vs ~1/sqrt(N)).
    for h, r in zip(halton, random):
        assert h <= r * 1.2
    assert rows[-1]["halton_advantage"] > 1.5
