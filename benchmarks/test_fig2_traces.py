"""Figure 2 — stream-rate variation of the three trace archetypes."""

from repro.experiments import fig2_traces, format_rows

from conftest import save_table


def test_fig2_traces(benchmark):
    rows = benchmark.pedantic(
        lambda: fig2_traces.run(steps=4096, seed=1), rounds=1, iterations=1
    )
    save_table("fig2_traces", format_rows(rows))
    # The paper's point: all traces vary significantly and are
    # self-similar across time-scales.
    for row in rows:
        assert row["normalized_std"] > 0.1
        assert row["hurst"] > 0.55
