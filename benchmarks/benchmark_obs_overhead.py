"""Guard the null-sink contract at the wall-clock level.

The observability layer promises that a simulator run with tracing
*disabled* (the default ``NULL_TRACER``) costs the same as one with no
tracer wired at all — the hot loop only pays one hoisted boolean check.
That includes causal span tracing: span ids are allocated and
``span.open``/``span.close`` events emitted only behind the same hoisted
guard.  This script times both configurations and fails if the relative
difference exceeds ``--tolerance`` (CI runs it at 5%).

A third, informational case times tracing *enabled* against a
discard-everything sink — the marginal cost of constructing every event
(spans included) with serialization and I/O excluded — and reports the
event volume, so span-emission regressions show up as a number even
though only the disabled case is gated.

Usage::

    PYTHONPATH=src python benchmarks/benchmark_obs_overhead.py \
        --tolerance 0.05

Timing uses min-of-repeats (the standard noise-robust estimator for
"how fast can this go"); all variants run the identical workload from
the identical seed, interleaved so machine drift hits them equally.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.deploy import Deployment
from repro.graphs.generator import monitoring_graph
from repro.obs.trace import NullSink, TraceSink, Tracer


class _DiscardSink(TraceSink):
    """Enabled sink that drops every event: isolates emission cost."""

    def write(self, event) -> None:
        pass


def build_deployment() -> Deployment:
    return Deployment.plan(monitoring_graph(3, seed=7), [1.0, 1.0, 1.0])


def time_run(deployment: Deployment, tracer: Tracer | None,
             duration: float) -> float:
    kwargs = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    start = time.perf_counter()
    deployment.simulate(
        rates=[120.0, 120.0, 120.0], duration=duration, **kwargs
    )
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max allowed relative slowdown (default 0.05)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats; the minimum of each is used")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per run")
    args = parser.parse_args(argv)

    deployment = build_deployment()
    disabled_tracer = Tracer(NullSink())

    # Warm-up: JIT-free Python still benefits (allocator, caches).
    time_run(deployment, None, args.duration)
    time_run(deployment, disabled_tracer, args.duration)

    enabled_tracer = Tracer(_DiscardSink())
    time_run(deployment, enabled_tracer, args.duration)

    baseline_times = []
    disabled_times = []
    enabled_times = []
    for _ in range(args.repeats):
        baseline_times.append(time_run(deployment, None, args.duration))
        disabled_times.append(
            time_run(deployment, disabled_tracer, args.duration)
        )
        enabled_times.append(
            time_run(deployment, enabled_tracer, args.duration)
        )

    baseline = min(baseline_times)
    disabled = min(disabled_times)
    enabled = min(enabled_times)
    overhead = (disabled - baseline) / baseline
    enabled_overhead = (enabled - baseline) / baseline
    events_per_run = enabled_tracer.events_emitted // (args.repeats + 1)
    print(f"baseline (no tracer):     {baseline * 1e3:8.2f} ms")
    print(f"tracing disabled (null):  {disabled * 1e3:8.2f} ms")
    print(f"relative overhead:        {overhead:+8.2%} "
          f"(tolerance {args.tolerance:.0%})")
    print(f"tracing enabled (discard sink, spans included): "
          f"{enabled * 1e3:8.2f} ms ({enabled_overhead:+.2%}, "
          f"~{events_per_run} events/run; informational)")
    if overhead > args.tolerance:
        print("FAIL: disabled tracing exceeds the overhead budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
