"""Guard the null-sink contract at the wall-clock level.

The observability layer promises that a simulator run with tracing
*disabled* (the default ``NULL_TRACER``) costs the same as one with no
tracer wired at all — the hot loop only pays one hoisted boolean check.
That includes causal span tracing: span ids are allocated and
``span.open``/``span.close`` events emitted only behind the same hoisted
guard.  This script times both configurations and fails if the relative
difference exceeds ``--tolerance`` (CI runs it at 5%).

A third, informational case times tracing *enabled* against a
discard-everything sink — the marginal cost of constructing every event
(spans included) with serialization and I/O excluded — and reports the
event volume, so span-emission regressions show up as a number even
though only the disabled case is gated.

A fourth, gated case re-runs the disabled-vs-baseline comparison with a
migration controller attached: the decision-audit layer
(``repro.obs.decisions``) must stay behind the same hoisted guard, so a
controller-driven run with tracing disabled allocates **zero** decision
records (asserted by instrumenting ``DecisionRecord.__init__``, not
just timed) and stays inside the same tolerance.

Usage::

    PYTHONPATH=src python benchmarks/benchmark_obs_overhead.py \
        --tolerance 0.05

Timing uses min-of-repeats (the standard noise-robust estimator for
"how fast can this go"); all variants run the identical workload from
the identical seed, interleaved so machine drift hits them equally.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.obs.decisions as decisions_mod
from repro.deploy import Deployment
from repro.dynamics.controller import LoadBalancingController
from repro.graphs.generator import monitoring_graph
from repro.obs.trace import NullSink, TraceSink, Tracer


class _DiscardSink(TraceSink):
    """Enabled sink that drops every event: isolates emission cost."""

    def write(self, event) -> None:
        pass


def build_deployment() -> Deployment:
    return Deployment.plan(monitoring_graph(3, seed=7), [1.0, 1.0, 1.0])


def time_run(deployment: Deployment, tracer: Tracer | None,
             duration: float, controller: bool = False) -> float:
    kwargs = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if controller:
        # Fresh per run: controllers carry smoothing/cooldown state.
        kwargs["controller"] = LoadBalancingController(period=1.0)
    start = time.perf_counter()
    deployment.simulate(
        rates=[120.0, 120.0, 120.0], duration=duration, **kwargs
    )
    return time.perf_counter() - start


def assert_no_decision_records(deployment: Deployment,
                               duration: float) -> None:
    """Disabled tracing must allocate zero DecisionRecord objects."""
    created = {"count": 0}
    original_init = decisions_mod.DecisionRecord.__init__

    def counting_init(self, *args, **kwargs):
        created["count"] += 1
        original_init(self, *args, **kwargs)

    decisions_mod.DecisionRecord.__init__ = counting_init
    controller = LoadBalancingController(period=1.0)
    try:
        deployment.simulate(
            rates=[120.0, 120.0, 120.0], duration=duration,
            tracer=Tracer(NullSink()), controller=controller,
        )
    finally:
        decisions_mod.DecisionRecord.__init__ = original_init
    if created["count"] != 0:
        raise AssertionError(
            f"disabled-tracing run allocated {created['count']} "
            "decision record(s); the telemetry guard leaked into the "
            "hot path"
        )
    if controller.telemetry is not None:
        raise AssertionError(
            "controller.telemetry attached despite tracing disabled"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max allowed relative slowdown (default 0.05)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats; the minimum of each is used")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per run")
    args = parser.parse_args(argv)

    deployment = build_deployment()
    disabled_tracer = Tracer(NullSink())

    # Warm-up: JIT-free Python still benefits (allocator, caches).
    time_run(deployment, None, args.duration)
    time_run(deployment, disabled_tracer, args.duration)

    enabled_tracer = Tracer(_DiscardSink())
    time_run(deployment, enabled_tracer, args.duration)
    time_run(deployment, None, args.duration, controller=True)
    time_run(deployment, disabled_tracer, args.duration, controller=True)

    # Correctness before timing: a disabled-tracing controller run must
    # build zero DecisionRecord objects and leave telemetry detached.
    assert_no_decision_records(deployment, args.duration)

    baseline_times = []
    disabled_times = []
    enabled_times = []
    ctrl_baseline_times = []
    ctrl_disabled_times = []
    for _ in range(args.repeats):
        baseline_times.append(time_run(deployment, None, args.duration))
        disabled_times.append(
            time_run(deployment, disabled_tracer, args.duration)
        )
        enabled_times.append(
            time_run(deployment, enabled_tracer, args.duration)
        )
        ctrl_baseline_times.append(
            time_run(deployment, None, args.duration, controller=True)
        )
        ctrl_disabled_times.append(
            time_run(deployment, disabled_tracer, args.duration,
                     controller=True)
        )

    baseline = min(baseline_times)
    disabled = min(disabled_times)
    enabled = min(enabled_times)
    ctrl_baseline = min(ctrl_baseline_times)
    ctrl_disabled = min(ctrl_disabled_times)
    overhead = (disabled - baseline) / baseline
    enabled_overhead = (enabled - baseline) / baseline
    ctrl_overhead = (ctrl_disabled - ctrl_baseline) / ctrl_baseline
    events_per_run = enabled_tracer.events_emitted // (args.repeats + 1)
    print(f"baseline (no tracer):     {baseline * 1e3:8.2f} ms")
    print(f"tracing disabled (null):  {disabled * 1e3:8.2f} ms")
    print(f"relative overhead:        {overhead:+8.2%} "
          f"(tolerance {args.tolerance:.0%})")
    print(f"tracing enabled (discard sink, spans included): "
          f"{enabled * 1e3:8.2f} ms ({enabled_overhead:+.2%}, "
          f"~{events_per_run} events/run; informational)")
    print(f"controller, no tracer:    {ctrl_baseline * 1e3:8.2f} ms")
    print(f"controller, disabled:     {ctrl_disabled * 1e3:8.2f} ms "
          f"({ctrl_overhead:+.2%}; zero decision records asserted)")
    failed = False
    if overhead > args.tolerance:
        print("FAIL: disabled tracing exceeds the overhead budget")
        failed = True
    if ctrl_overhead > args.tolerance:
        print("FAIL: disabled tracing with a controller exceeds the "
              "overhead budget")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
