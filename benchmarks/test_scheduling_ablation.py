"""Substrate ablation — per-node scheduling policy under bursty load."""

from repro.experiments import format_rows, scheduling_ablation

from conftest import save_table


def test_scheduling_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: scheduling_ablation.run(), rounds=1, iterations=1
    )
    save_table("scheduling_ablation", format_rows(rows))
    by_policy = {r["policy"]: r for r in rows}
    # Feasibility-side quantities are scheduling-independent.
    outs = {r["tuples_out"] for r in rows}
    utils = [r["max_node_utilization"] for r in rows]
    assert len(outs) == 1
    assert max(utils) - min(utils) < 1e-9
    # Round-robin removes FIFO's head-of-line blocking in the tail.
    assert (
        by_policy["round_robin"]["p95_latency_ms"]
        <= by_policy["fifo"]["p95_latency_ms"] + 1e-6
    )
