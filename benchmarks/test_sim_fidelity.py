"""Methodology check — the simulator tracks the analytic model.

The paper validates its simulator against Borealis; we validate ours
against the analytic feasibility predicate ``L^n R <= C``.
"""

from repro.experiments import fidelity, format_rows

from conftest import save_table


def test_sim_fidelity(benchmark):
    rows = benchmark.pedantic(
        lambda: fidelity.run(points=40, duration=10.0, seed=3),
        rounds=1,
        iterations=1,
    )
    save_table("sim_fidelity", format_rows(rows))
    row = rows[0]
    assert row["clear_disagreements"] == 0
    assert row["agreement_rate"] >= 0.9
    assert row["mean_utilization_error"] < 0.02


def test_prototype_protocol(benchmark):
    """The Borealis probing protocol tracks the QMC volume ratio."""
    rows = benchmark.pedantic(
        lambda: fidelity.run_protocol_comparison(points=60, duration=8.0),
        rounds=1,
        iterations=1,
    )
    save_table("prototype_protocol", format_rows(rows))
    for row in rows:
        # 60 Bernoulli probes: allow ~2.5 sigma of sampling error.
        assert row["abs_difference"] <= 0.16, row
