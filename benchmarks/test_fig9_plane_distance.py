"""Figure 9 — feasible-set-size ratio vs r/r* for random plans."""

from repro.experiments import fig9_plane_distance, format_rows

from conftest import save_table


def test_fig9_plane_distance(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9_plane_distance.run(
            count=1000, num_nodes=10, num_streams=3, samples=2048, seed=42
        ),
        rounds=1,
        iterations=1,
    )
    bins = fig9_plane_distance.binned(rows, bins=10)
    save_table("fig9_plane_distance", format_rows(bins))
    # Both envelopes of the scatter grow with r/r* (the MMPD rationale).
    means = [b["mean_ratio"] for b in bins]
    mins = [b["min_ratio"] for b in bins]
    assert means[-1] > means[0]
    assert mins[-1] > mins[0]
    # The analytic hypersphere bound stays below the observed minimum.
    for b in bins:
        assert b["sphere_lower_bound"] <= b["min_ratio"] + 0.05
