"""Regression budget for the volume-kernel benchmarks.

Compares a fresh ``--benchmark-json`` run against the committed baseline
``benchmarks/BENCH_volume.json`` and fails if any benchmark's mean time
exceeds ``baseline * budget``.  The budget is deliberately generous
(default 3x): CI machines differ wildly in absolute speed, so the guard
is meant to catch order-of-magnitude regressions — an accidentally
de-vectorized loop, a cache that stopped hitting — not percent-level
noise.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/benchmark_volume_kernel.py \
        -q --benchmark-json=/tmp/bench_volume.json
    python benchmarks/check_volume_budget.py \
        --current /tmp/bench_volume.json --budget 3.0
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "BENCH_volume.json"


def load_means(path: pathlib.Path) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON."""
    document = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in document["benchmarks"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="fresh --benchmark-json output to check")
    parser.add_argument("--budget", type=float, default=3.0,
                        help="max allowed current/baseline mean ratio")
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)

    failed = False
    for name in sorted(baseline):
        if name not in current:
            print(f"MISSING  {name}: benchmark absent from current run")
            failed = True
            continue
        ratio = current[name] / baseline[name]
        verdict = "ok" if ratio <= args.budget else "REGRESSED"
        if ratio > args.budget:
            failed = True
        print(f"{verdict:9s}{name}: {current[name] * 1e3:8.3f} ms vs "
              f"baseline {baseline[name] * 1e3:8.3f} ms "
              f"({ratio:.2f}x, budget {args.budget:.1f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW      {name}: {current[name] * 1e3:8.3f} ms "
              "(no baseline; refresh BENCH_volume.json)")

    if failed:
        print("volume-kernel benchmark budget exceeded")
        return 1
    print("volume-kernel benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
