"""Regression budget for the volume-kernel benchmarks.

Compares a fresh ``--benchmark-json`` run against the committed baseline
``benchmarks/BENCH_volume.json`` and fails if any benchmark's mean time
exceeds ``baseline * budget``.  The budget is deliberately generous
(default 3x): CI machines differ wildly in absolute speed, so the guard
is meant to catch order-of-magnitude regressions — an accidentally
de-vectorized loop, a cache that stopped hitting — not percent-level
noise.

The committed baseline is regenerated at ``--tier large`` and so also
holds the mid/large scale benchmarks.  ``--tier`` here mirrors the
pytest option: it selects which baseline entries the current run is
required to contain (cumulative — ``mid`` covers default + mid), so a
default-tier CI run is not failed for the scale benchmarks it skipped.
Tier membership is read off the benchmark name (``test_mid_*``,
``test_large_*``, everything else is default tier).

Usage::

    PYTHONPATH=src python -m pytest benchmarks/benchmark_volume_kernel.py \
        -q --tier mid --benchmark-json=/tmp/bench_volume.json
    python benchmarks/check_volume_budget.py \
        --current /tmp/bench_volume.json --tier mid --budget 3.0
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "BENCH_volume.json"

TIER_ORDER = {"default": 0, "mid": 1, "large": 2}


def name_tier(name: str) -> str:
    """Tier a benchmark belongs to, by naming convention."""
    if name.startswith("test_mid_"):
        return "mid"
    if name.startswith("test_large_"):
        return "large"
    return "default"


def load_means(path: pathlib.Path) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON."""
    document = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in document["benchmarks"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="fresh --benchmark-json output to check")
    parser.add_argument("--budget", type=float, default=3.0,
                        help="max allowed current/baseline mean ratio")
    parser.add_argument("--tier", choices=tuple(TIER_ORDER),
                        default="default",
                        help="tier the current run was collected at; "
                        "baseline entries above it are not required")
    args = parser.parse_args(argv)

    covered = TIER_ORDER[args.tier]
    baseline = {
        name: mean for name, mean in load_means(args.baseline).items()
        if TIER_ORDER[name_tier(name)] <= covered
    }
    current = load_means(args.current)

    failed = False
    for name in sorted(baseline):
        if name not in current:
            print(f"MISSING  {name}: benchmark absent from current run")
            failed = True
            continue
        ratio = current[name] / baseline[name]
        verdict = "ok" if ratio <= args.budget else "REGRESSED"
        if ratio > args.budget:
            failed = True
        print(f"{verdict:9s}{name}: {current[name] * 1e3:8.3f} ms vs "
              f"baseline {baseline[name] * 1e3:8.3f} ms "
              f"({ratio:.2f}x, budget {args.budget:.1f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW      {name}: {current[name] * 1e3:8.3f} ms "
              "(no baseline; refresh BENCH_volume.json)")

    if failed:
        print("volume-kernel benchmark budget exceeded")
        return 1
    print("volume-kernel benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
