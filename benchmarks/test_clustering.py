"""Reconstructed Section 6.3 experiment — operator clustering."""

from repro.experiments import clustering_experiment, format_rows

from conftest import save_table


def test_clustering(benchmark):
    rows = benchmark.pedantic(
        lambda: clustering_experiment.run(
            cost_multipliers=(0.0, 0.5, 1.0, 2.0),
            num_links=4,
            num_nodes=4,
            samples=4096,
        ),
        rounds=1,
        iterations=1,
    )
    save_table("clustering", format_rows(rows))
    by_key = {(r["transfer_multiplier"], r["strategy"]): r for r in rows}
    # Clustering never hurts the communication-adjusted plane distance
    # (the search includes the trivial clustering).
    for multiplier in (0.5, 1.0, 2.0):
        clustered = by_key[(multiplier, "rod_clustered")]
        plain = by_key[(multiplier, "rod_plain")]
        assert (
            clustered["comm_plane_distance"]
            >= plain["comm_plane_distance"] - 1e-9
        )
        assert clustered["inter_node_arcs"] <= plain["inter_node_arcs"]
    # At high transfer cost clustering is strictly better.
    assert (
        by_key[(2.0, "rod_clustered")]["comm_volume_ratio"]
        > by_key[(2.0, "rod_plain")]["comm_volume_ratio"]
    )
