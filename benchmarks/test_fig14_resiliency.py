"""Figure 14 — base resiliency results (the headline experiment)."""

from repro.experiments import format_rows, resiliency
from repro.experiments.common import ALGORITHMS

from conftest import save_table


def test_fig14_resiliency(benchmark):
    rows = benchmark.pedantic(
        lambda: resiliency.run(
            operator_counts=(40, 80, 120, 160, 200),
            num_inputs=5,
            num_nodes=10,
            repeats=10,
            samples=4096,
        ),
        rounds=1,
        iterations=1,
    )
    save_table("fig14_resiliency", format_rows(rows))
    by_key = {(r["operators"], r["algorithm"]): r for r in rows}
    counts = sorted({r["operators"] for r in rows})

    # ROD dominates every baseline at every operator count.
    for count in counts:
        rod = by_key[(count, "rod")]["ratio_to_ideal"]
        for name in ALGORITHMS:
            assert by_key[(count, name)]["ratio_to_ideal"] <= rod + 0.02

    # ROD approaches the ideal as operator count grows.
    rod_curve = [by_key[(c, "rod")]["ratio_to_ideal"] for c in counts]
    assert rod_curve[-1] > rod_curve[0]
    assert rod_curve[-1] > 0.8

    # Qualitative ordering of the baselines: connected is the worst,
    # correlation the best baseline (paper Section 7.3.1).
    last = counts[-1]
    assert (
        by_key[(last, "connected")]["ratio_to_ideal"]
        <= by_key[(last, "correlation")]["ratio_to_ideal"]
    )
