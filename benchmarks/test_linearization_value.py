"""Reconstructed §6.2 justification — variable selectivities."""

from repro.experiments import format_rows, linearization_value

from conftest import save_table


def test_linearization_value(benchmark):
    rows = benchmark.pedantic(
        lambda: linearization_value.run(), rounds=1, iterations=1
    )
    save_table("linearization_value", format_rows(rows))
    by_s = {r["realized_selectivity"]: r for r in rows}
    # The naive plan peaks at the nominal selectivity it optimized for.
    nominal = by_s["0.5"]["naive_ratio"]
    for s in ("0.1", "0.9"):
        assert by_s[s]["naive_ratio"] <= nominal + 1e-9
    # Linearization wins the worst case over the sweep (its point), even
    # though the naive plan may edge it out near the nominal.
    worst = by_s["worst-case"]
    assert worst["linearized_ratio"] >= worst["naive_ratio"]
    # And it never collapses anywhere on the sweep.
    for s in ("0.1", "0.3", "0.5", "0.7", "0.9"):
        assert by_s[s]["linearized_ratio"] > 0.5
