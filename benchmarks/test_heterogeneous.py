"""Reconstructed heterogeneous-cluster experiment (§7.1 assumption)."""

from repro.experiments import format_rows, heterogeneous

from conftest import save_table


def test_heterogeneous(benchmark):
    rows = benchmark.pedantic(
        lambda: heterogeneous.run(), rounds=1, iterations=1
    )
    save_table("heterogeneous", format_rows(rows))
    by_key = {(r["profile"], r["algorithm"]): r for r in rows}
    profiles = {r["profile"] for r in rows}
    for profile in profiles:
        rod = by_key[(profile, "rod")]
        # ROD dominates every baseline on every capacity profile.
        for name in ("correlation", "llf", "random", "connected"):
            assert (
                by_key[(profile, name)]["ratio_to_ideal"]
                <= rod["ratio_to_ideal"] + 0.02
            ), (profile, name)
        # ROD apportions load to capacity within a few percent.
        assert rod["rod_capacity_share_error"] < 0.1
