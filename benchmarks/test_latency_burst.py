"""Reconstructed prototype experiment — latency under bursty trace replay."""

from repro.experiments import format_rows, latency

from conftest import save_table


def test_latency_burst(benchmark):
    rows = benchmark.pedantic(
        lambda: latency.run(
            utilizations=(0.5, 0.7, 0.85),
            num_inputs=3,
            operators_per_tree=10,
            num_nodes=4,
            steps=400,
        ),
        rounds=1,
        iterations=1,
    )
    save_table("latency_burst", format_rows(rows))
    by_key = {(r["mean_utilization"], r["algorithm"]): r for r in rows}
    # At high mean load, ROD's tail latency beats the count-balanced and
    # connectivity-preserving baselines (which saturate under bursts).
    for other in ("random", "connected"):
        assert (
            by_key[(0.85, "rod")]["p95_latency_ms"]
            <= by_key[(0.85, other)]["p95_latency_ms"]
        )
    # Latency grows with load for every algorithm.
    for name in {r["algorithm"] for r in rows}:
        assert (
            by_key[(0.85, name)]["mean_latency_ms"]
            >= by_key[(0.5, name)]["mean_latency_ms"]
        )
