"""Figure 15 — relative performance while varying the number of inputs."""

import numpy as np

from repro.experiments import dimensions, format_rows

from conftest import save_table


def test_fig15_dimensions(benchmark):
    rows = benchmark.pedantic(
        lambda: dimensions.run(
            input_counts=(2, 3, 4, 5, 6, 7),
            operators_per_tree=20,
            num_nodes=10,
            repeats=8,
            samples=4096,
        ),
        rounds=1,
        iterations=1,
    )
    save_table("fig15_dimensions", format_rows(rows))
    # ROD's relative advantage grows with dimensionality: competitor/ROD
    # ratios trend downward from d=3 onward (d=2 is off-trend, as the
    # paper notes, because so few placement choices exist per node).
    for name in {r["algorithm"] for r in rows}:
        curve = [
            r["ratio_to_rod"]
            for r in rows
            if r["algorithm"] == name and r["inputs"] >= 3
        ]
        assert curve[-1] <= curve[0] + 0.05, name
    # Every competitor is behind ROD at the largest dimension.
    last = max(r["inputs"] for r in rows)
    for r in rows:
        if r["inputs"] == last:
            assert r["ratio_to_rod"] <= 1.0 + 0.02
