"""Ablation — ROD's greedy balance vs the exact MILP balance optimum."""

import numpy as np

from repro.experiments import balance_bound, format_rows

from conftest import save_table


def test_balance_bound(benchmark):
    rows = benchmark.pedantic(
        lambda: balance_bound.run(), rounds=1, iterations=1
    )
    save_table("balance_bound", format_rows(rows))
    # The MILP is the true optimum: ROD can never balance better.
    for row in rows:
        assert row["rod_max_weight"] >= row["optimal_max_weight"] - 1e-6
    # Scarce regime: balance stops predicting volume; greedy ROD holds
    # its own against the balance-optimal plan.
    scarce = [r for r in rows if r["regime"] == "scarce"]
    assert np.mean(
        [r["rod_volume_ratio"] - r["milp_volume_ratio"] for r in scarce]
    ) > -0.05
    # Plentiful regime: the exact solver approaches the ideal plan...
    plentiful = [r for r in rows if r["regime"] == "plentiful"]
    for row in plentiful:
        assert row["optimal_max_weight"] < 1.1
    # ...but pays for it: ROD plans orders of magnitude faster.
    for row in rows:
        assert row["rod_seconds"] < row["milp_seconds"]
