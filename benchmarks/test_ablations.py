"""Ablations of ROD's design choices (DESIGN.md §6)."""

from repro.experiments import ablations, format_rows

from conftest import save_table


def test_ablation_operator_ordering(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_ordering(random_orders=5, samples=4096),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_ordering", format_rows(rows))
    by_name = {r["ordering"]: r for r in rows}
    # Norm-descending ordering (Section 5.1) beats random orders.
    assert (
        by_name["norm_descending"]["volume_ratio"]
        >= by_name["random_mean_of_5"]["volume_ratio"]
    )


def test_ablation_class_one_policy(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_class_one_policy(samples=4096),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_class_one_policy", format_rows(rows))
    ratios = [r["volume_ratio"] for r in rows]
    # Section 5.2: any Class I choice is feasible-set neutral, so the
    # policies should land within a few percent of each other...
    assert max(ratios) - min(ratios) < 0.1
    # ...but the connections policy must not create more crossings than
    # the default.
    by_name = {r["policy"]: r for r in rows}
    assert (
        by_name["connections"]["inter_node_arcs"]
        <= by_name["plane"]["inter_node_arcs"]
    )
