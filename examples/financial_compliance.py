#!/usr/bin/env python3
"""Financial compliance: wide query graphs and known rate floors.

Section 7.3.1 motivates large operator counts with a real-time compliance
application: "a real-time proof-of-concept compliance application we
built for 3 compliance rules required 25 operators", and full-blown
deployments have hundreds of rules sharing sub-expressions — very wide,
shallow graphs.

This example builds such a graph (per-market feeds fanning out into many
rule pipelines), places it with ROD and the baselines, and then applies
the Section 6.1 lower-bound extension: during trading hours the feed
rates never drop below a known floor, so the plan is optimized for the
workload set above it.

Run:  python examples/financial_compliance.py
"""

import numpy as np

from repro import build_load_model, placement_from_mapping, rod_place
from repro.core.feasible_set import FeasibleSet
from repro.core.rod import rod_extend
from repro.experiments.common import make_placer
from repro.graphs import Aggregate, Filter, Map, QueryGraph, Union, graph_from_dict, graph_to_dict


def compliance_graph(markets: int = 4, rules_per_market: int = 8) -> QueryGraph:
    """Wide compliance workload: shared normalization, many rule chains."""
    rng = np.random.default_rng(2026)
    graph = QueryGraph(name=f"compliance-{markets}x{rules_per_market}")
    normalized = []
    for m in range(markets):
        feed = graph.add_input(f"market{m}")
        clean = graph.add_operator(
            Map(f"normalize{m}", cost=float(rng.uniform(1e-4, 2e-4))), [feed]
        )
        normalized.append(clean)
        for r in range(rules_per_market):
            # Each rule: a predicate filter, an enrichment map, and a
            # sliding-window aggregate raising alerts.
            flt = graph.add_operator(
                Filter(
                    f"rule{m}_{r}_match",
                    cost=float(rng.uniform(1e-4, 4e-4)),
                    selectivity=float(rng.uniform(0.1, 0.6)),
                ),
                [clean],
            )
            enriched = graph.add_operator(
                Map(f"rule{m}_{r}_enrich", cost=float(rng.uniform(2e-4, 6e-4))),
                [flt],
            )
            graph.add_operator(
                Aggregate(
                    f"rule{m}_{r}_alert",
                    cost=float(rng.uniform(2e-4, 5e-4)),
                    selectivity=0.05,
                ),
                [enriched],
            )
    if markets >= 2:
        merged = graph.add_operator(
            Union("cross_market", costs=[1e-4] * markets), normalized
        )
        graph.add_operator(
            Aggregate("surveillance", cost=5e-4, selectivity=0.02), [merged]
        )
    return graph


def main() -> None:
    graph = compliance_graph()
    model = build_load_model(graph)
    capacities = [1.0] * 6
    print(
        f"compliance workload: {model.num_operators} operators, "
        f"{model.num_inputs} market feeds, {len(capacities)} nodes"
    )

    print("\n== Feasible-set ratio to the ideal (higher = more resilient)")
    for name in ("rod", "correlation", "llf", "random", "connected"):
        placement = make_placer(name, model, run_seed=3).place(
            model, capacities
        )
        print(f"  {name:<12} {placement.volume_ratio():.3f}")

    # Trading-hours floor: market 0 (the home exchange) never falls below
    # a rate consuming 45% of the cluster on its own.
    totals = model.column_totals()
    floor = np.zeros(model.num_variables)
    floor[0] = 0.45 * sum(capacities) / totals[0]

    plain = rod_place(model, capacities)
    aware = rod_place(model, capacities, lower_bound=floor)

    def restricted_ratio(plan) -> float:
        return FeasibleSet(
            plan.node_coefficients(),
            plan.capacities,
            column_totals=totals,
            lower_bound=floor,
        ).volume_ratio()

    print("\n== With a known trading-hours floor on market 0 (Section 6.1)")
    print(f"  ROD (floor-blind) : {restricted_ratio(plain):.3f}")
    print(f"  ROD (floor-aware) : {restricted_ratio(aware):.3f}")

    # Plans are plain data: inspect or persist them.
    mapping = aware.to_mapping()
    rebuilt = placement_from_mapping(model, capacities, mapping,
                                     lower_bound=floor)
    assert rebuilt.assignment == aware.assignment
    print("\nplan for node 0:", ", ".join(aware.operators_on(0)[:6]), "...")

    # A new market listing goes live: the running operators cannot move
    # (the paper's core premise), so the new rules are placed
    # incrementally with rod_extend.
    grown = graph_from_dict(graph_to_dict(graph))
    feed = grown.add_input("market_new")
    clean = grown.add_operator(Map("normalize_new", cost=1.5e-4), [feed])
    for r in range(4):
        flt = grown.add_operator(
            Filter(f"rule_new_{r}_match", cost=3e-4, selectivity=0.4),
            [clean],
        )
        grown.add_operator(
            Aggregate(f"rule_new_{r}_alert", cost=3e-4, selectivity=0.05),
            [flt],
        )
    grown_model = build_load_model(grown)
    extended = rod_extend(plain, grown_model)
    moved = sum(
        1
        for name in model.operator_names
        if extended.node_of(name) != plain.node_of(name)
    )
    print(
        f"\n== Onboarding a new market ({grown_model.num_operators - model.num_operators} "
        f"new operators, {moved} existing operators moved)"
    )
    print(f"  feasible-set ratio after growth: {extended.volume_ratio():.3f}")


if __name__ == "__main__":
    main()
