#!/usr/bin/env python3
"""Why not just migrate operators when load changes? (Section 1)

The paper's opening argument: operator migration pauses the operator for
hundreds of milliseconds (more with state), and reactive balancers need
time to *observe* a change before responding — so chasing short bursts
makes them worse, while a controller damped enough not to chase noise is
blind to bursts entirely.  A resilient static placement sidesteps the
dilemma.

This example stages both failure modes with the migration-capable
simulator and prints the paper-style comparison table.

Run:  python examples/dynamic_vs_static.py
"""

from repro.experiments import dynamic_migration, format_rows


def main() -> None:
    rows = dynamic_migration.run()
    print(format_rows(rows))
    print()
    by_key = {(r["scenario"], r["strategy"]): r for r in rows}
    burst_static = by_key[("burst", "static_llf")]["p95_latency_ms"]
    burst_aggressive = by_key[
        ("burst", "dynamic_llf_aggressive")
    ]["p95_latency_ms"]
    shift_static = by_key[("shift", "static_llf")]["p95_latency_ms"]
    shift_conservative = by_key[
        ("shift", "dynamic_llf_conservative")
    ]["p95_latency_ms"]
    print(
        "During the 3-second burst, reacting made p95 latency "
        f"{burst_aggressive / burst_static:.1f}x worse than doing nothing."
    )
    print(
        "After the permanent shift, the damped controller recovered "
        f"({shift_conservative:.0f} ms vs {shift_static:.0f} ms static) — "
        "but that same damping is what made it blind to the burst."
    )
    rod_burst = by_key[("burst", "static_rod")]["p95_latency_ms"]
    rod_shift = by_key[("shift", "static_rod")]["p95_latency_ms"]
    print(
        f"ROD handled both without a single migration "
        f"({rod_burst:.0f} ms / {rod_shift:.0f} ms)."
    )


if __name__ == "__main__":
    main()
