#!/usr/bin/env python3
"""Trace analysis: reproducing Figure 2's message in the terminal.

The paper's Figure 2 shows that real stream rates vary wildly and —
crucially — stay bursty at every time-scale (self-similarity, their
reference [9]).  This example generates the three synthetic archetypes,
renders them, and then demonstrates the multi-time-scale property
quantitatively: rebinned self-similar traces keep their burstiness and
Hurst exponent while i.i.d. Poisson noise smooths right out.

It also shows the CSV round-trip for substituting *real* traces.

Run:  python examples/trace_analysis.py
"""

import os
import tempfile

import numpy as np

from repro.workload import (
    TRACE_KINDS,
    area_chart,
    hurst_exponent,
    load_trace_csv,
    make_trace,
    rebin_trace,
    save_trace_csv,
    sparkline,
    trace_statistics,
)


def main() -> None:
    print("== The three trace archetypes (cf. Figure 2) ==")
    for kind in TRACE_KINDS:
        trace = make_trace(kind, steps=4096, mean_rate=100.0, seed=11)
        stats = trace_statistics(trace)
        print(f"\n{kind.upper()}: normalized std {stats['normalized_std']:.2f}, "
              f"peak/mean {stats['peak_to_mean']:.1f}, "
              f"Hurst {stats['hurst']:.2f}")
        print(area_chart(trace, width=64, height=6, label=kind))

    print("\n== Self-similarity: burstiness survives rebinning ==")
    print(f"{'trace':<10} {'scale':>6} {'cv':>7} {'hurst':>7}")
    for label, series in (
        ("tcp", make_trace("tcp", 8192, seed=5)),
        ("poisson", np.random.default_rng(5).poisson(
            100, size=8192).astype(float)),
    ):
        for factor in (1, 4, 16):
            coarse = rebin_trace(series, factor)
            cv = coarse.std() / coarse.mean()
            h = hurst_exponent(coarse)
            print(f"{label:<10} {factor:>5}x {cv:>7.2f} {h:>7.2f}")
    print("(the self-similar trace keeps its variability; Poisson decays "
          "like 1/sqrt(scale))")

    print("\n== One-minute view of the TCP archetype ==")
    trace = make_trace("tcp", 600, mean_rate=100.0, seed=2)
    print("rate:", sparkline(trace, width=72))

    print("\n== CSV round-trip for real traces ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.csv")
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        print(f"saved and reloaded {loaded.size} steps; identical:",
              bool(np.allclose(loaded, trace)))
        print("feed real Internet Traffic Archive exports the same way: "
              "one rate per line, then pass the array anywhere a trace "
              "is expected")


if __name__ == "__main__":
    main()
