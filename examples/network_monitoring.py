#!/usr/bin/env python3
"""Network-traffic monitoring: the paper's motivating application.

An aggregation-heavy monitoring query network watches several network
links whose rates follow self-similar traces (the PKT/TCP/HTTP archetypes
of Figure 2).  The example:

1. replays the traces through ROD and every baseline placement and
   reports latency and saturation;
2. shows the communication-cost extension: when shipping a tuple across
   the network costs real CPU, operator clustering (Section 6.3) buys
   back feasibility.

Run:  python examples/network_monitoring.py
"""

import numpy as np

from repro import build_load_model, rod_place
from repro.core.clustering import communication_feasible_set, search_clusterings
from repro.experiments.common import make_placer
from repro.graphs import monitoring_graph
from repro.simulator import Simulator
from repro.workload import rate_series, scale_point_to_utilization


def main() -> None:
    graph = monitoring_graph(num_links=3, seed=7)
    model = build_load_model(graph)
    capacities = [1.0, 1.0, 1.0]

    # Traces with mean demand at 70% of the cluster.
    steps = 300
    series = rate_series(graph.num_inputs, steps, seed=9)
    means = series.mean(axis=0)
    target = scale_point_to_utilization(model, capacities, means, 0.7)
    series = series * (target / means)

    print("== Trace replay (mean demand 70% of cluster) ==")
    print(f"{'algorithm':<12} {'mean ms':>8} {'p95 ms':>8} {'max util':>9}")
    for name in ("rod", "correlation", "llf", "random", "connected"):
        placement = make_placer(name, model, run_seed=17).place(
            model, capacities
        )
        result = Simulator(placement, step_seconds=0.1).run(rate_series=series)
        print(
            f"{name:<12} {result.latency.mean() * 1e3:>8.1f} "
            f"{result.latency.percentile(95) * 1e3:>8.1f} "
            f"{result.max_utilization:>9.2f}"
        )

    # Communication cost: shipping a tuple costs as much CPU as the median
    # operator spends processing it.
    op_costs = [
        op.cost_of_port(p)
        for op in graph.operators()
        for p in range(op.arity)
    ]
    transfer = float(np.median(op_costs))
    plain = rod_place(model, capacities)
    clustered = search_clusterings(model, capacities, transfer)

    print("\n== Operator clustering under per-tuple network CPU cost ==")
    for name, plan in (
        ("ROD, no clustering", plain),
        (
            f"ROD + clustering ({clustered.approach}, "
            f"threshold {clustered.threshold:g})",
            clustered.placement,
        ),
    ):
        comm = communication_feasible_set(plan, transfer)
        print(
            f"  {name}: {plan.inter_node_arcs()} inter-node arcs, "
            f"comm-adjusted feasible ratio {comm.volume_ratio():.3f}"
        )


if __name__ == "__main__":
    main()
