#!/usr/bin/env python3
"""Quickstart: place a query graph resiliently and see why it matters.

Builds a small random stream-processing workload, places it with ROD and
with a classical load balancer, then compares (a) how much of the rate
space each plan can absorb and (b) what happens to latency when a burst
hits one input stream.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import build_load_model, rod_place
from repro.graphs import random_tree_graph, RandomGraphConfig
from repro.placement import LLFPlacer
from repro.simulator import Simulator
from repro.workload import scale_point_to_utilization, sparkline


def main() -> None:
    # A workload: 3 input streams, 12 operators each (filters, maps,
    # aggregates with random costs/selectivities).
    graph = random_tree_graph(
        RandomGraphConfig(num_inputs=3, operators_per_tree=12), seed=4
    )
    model = build_load_model(graph)
    capacities = [1.0, 1.0, 1.0, 1.0]  # four identical nodes

    rod_plan = rod_place(model, capacities)
    llf_plan = LLFPlacer(rates=[1.0, 1.0, 1.0]).place(model, capacities)

    print("== Resilience: fraction of the ideal rate space each plan absorbs")
    print(f"  ROD : {rod_plan.volume_ratio():.3f}")
    print(f"  LLF : {llf_plan.volume_ratio():.3f}")
    print()
    print(rod_plan.describe())
    print()

    # A workload whose *average* is comfortable (55% of the cluster), but
    # where input 0 bursts to 5x for two seconds.
    base = scale_point_to_utilization(model, capacities, [1.0, 1.0, 1.0], 0.55)
    steps = 120  # 12 seconds at 0.1s resolution
    series = np.tile(base, (steps, 1))
    series[40:60, 0] *= 5.0

    print("== A 5x burst on input stream 0 (2 seconds at t=4s)")
    for name, plan in (("ROD", rod_plan), ("LLF", llf_plan)):
        result = Simulator(plan, step_seconds=0.1).run(rate_series=series)
        print(
            f"  {name}: mean latency {result.latency.mean() * 1e3:7.1f} ms,"
            f" p95 {result.latency.percentile(95) * 1e3:7.1f} ms,"
            f" peak node demand {result.max_utilization:.2f}x capacity"
        )
        utilization = result.utilization_timeline(plan.capacities, 0.1)
        hottest = utilization.max(axis=1)
        print(f"       busiest node over time: {sparkline(hottest, width=60)}")


if __name__ == "__main__":
    main()
