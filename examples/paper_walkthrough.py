#!/usr/bin/env python3
"""The paper's own worked example, end to end (Sections 2-5).

Walks Example 1/2 — the Figure 4 query graph with costs (4, 6, 9, 4) and
selectivities (1, ·, 0.5, ·) — through every concept the paper builds:
the load coefficient matrix, three placement plans and their feasible
sets (Figure 5), the ideal hyperplane (Figure 6), the weight matrix, the
two heuristics' metrics, and finally ROD finding the volume-optimal
plan.

Run:  python examples/paper_walkthrough.py
"""

import itertools

import numpy as np

from repro import build_load_model, placement_from_mapping, rod_place
from repro.core import render_feasible_set
from repro.graphs import paper_example_graph


def main() -> None:
    graph = paper_example_graph()
    model = build_load_model(graph)

    print("== Example 1/2: the load model ==")
    print("operators:", model.operator_names)
    print("L^o =")
    print(model.coefficients)
    print("column totals l =", model.column_totals())
    print("(load(o4) = c4 * s3 * r2 = 4 * 0.5 * r2 = 2 r2)")

    capacities = [1.0, 1.0]
    plans = {
        "(a) chains apart": {"o1": 0, "o2": 0, "o3": 1, "o4": 1},
        "(b) chains split": {"o1": 0, "o2": 1, "o3": 0, "o4": 1},
        "(c) heads together": {"o1": 0, "o2": 1, "o3": 1, "o4": 0},
    }

    print("\n== Figure 5: different plans, very different feasible sets ==")
    for label, mapping in plans.items():
        plan = placement_from_mapping(model, capacities, mapping)
        fs = plan.feasible_set()
        print(f"\nPlan {label}: L^n =")
        print(fs.node_coefficients)
        print(f"  exact volume ratio to ideal: "
              f"{fs.exact_volume_ratio():.3f}")
        print(f"  weight matrix W =\n{np.round(fs.weights(), 3)}")
        print(f"  min axis distances (MMAD): "
              f"{np.round(fs.min_axis_distances(), 3)}")
        print(f"  plane distance (MMPD):     {fs.plane_distance():.3f}")

    print("\n== Figure 6: the ideal hyperplane bounds every plan ==")
    print("ideal feasible set: 10 r1 + 11 r2 <= C_T = 2, volume "
          f"{2.0 ** 2 / (2 * 10 * 11):.5f}")
    best_label, best_ratio = None, 0.0
    for assignment in itertools.product((0, 1), repeat=4):
        plan = placement_from_mapping(
            model, capacities,
            dict(zip(model.operator_names, assignment)),
        )
        ratio = plan.feasible_set().exact_volume_ratio()
        if ratio > best_ratio:
            best_label, best_ratio = assignment, ratio
    print(f"best of all 16 plans reaches {best_ratio:.3f} of the ideal —"
          " no plan achieves it (Example 2's point)")

    print("\n== Section 5: ROD finds the optimum greedily ==")
    steps = []
    rod_plan = rod_place(model, capacities, steps=steps)
    for step in steps:
        kind = "Class I" if step.chosen_from_class_one else "Class II"
        print(f"  place {step.operator} -> node {step.node}  ({kind}, "
              f"candidates at distances "
              f"{[f'{d:.2f}' for d in step.candidate_distances]})")
    rod_ratio = rod_plan.feasible_set().exact_volume_ratio()
    print(f"ROD reaches {rod_ratio:.3f} of the ideal "
          f"(optimum: {best_ratio:.3f})")

    print("\n== The winning feasible set ==")
    print(render_feasible_set(rod_plan.feasible_set(), title="ROD's plan"))


if __name__ == "__main__":
    main()
