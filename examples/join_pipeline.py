#!/usr/bin/env python3
"""Windowed joins: placing a non-linear query graph (Section 6.2).

Window joins make operator load *quadratic* in the input rates, so the
linear machinery cannot apply directly.  The paper's fix — reproduced by
``build_load_model`` automatically — is to cut each join's output stream,
introducing its rate as a new variable; the join's load becomes
``(cost/selectivity) * r_out``, linear again.

This example shows the linearization report for the paper's own Example 3
graph, then places a larger join workload and verifies with the simulator
that the linearized plan's feasibility prediction holds under real
sliding-window join execution.

Run:  python examples/join_pipeline.py
"""

import numpy as np

from repro import build_load_model, rod_place
from repro.graphs import join_graph, paper_example3_graph
from repro.simulator import Simulator


def main() -> None:
    # The paper's Example 3: o1 has unknown selectivity, o5 is a window
    # join; linearization must cut exactly their two output streams.
    example = paper_example3_graph()
    model = build_load_model(example)
    report = model.linearization
    print("== Example 3 linear cut ==")
    print(f"  physical inputs : {report.input_streams}")
    print(f"  cut streams     : {report.cut_streams}")
    print(f"  cut producers   : {report.cut_producers}")
    print(f"  model variables : {model.variables}")
    print()

    # A larger join workload: two join pairs plus downstream processing.
    graph = join_graph(num_join_pairs=2, downstream_per_join=3,
                       window=0.1, seed=8)
    model = build_load_model(graph)
    capacities = [1.0, 1.0, 1.0]
    plan = rod_place(model, capacities)
    print("== Join workload placement ==")
    print(plan.describe())

    # Pick a physical rate point at 70% of saturation and check that the
    # analytic verdict matches the simulated execution.
    rates = np.full(graph.num_inputs, 50.0)
    while graph.total_load(rates * 1.1) < sum(capacities) * 0.7:
        rates *= 1.1
    point = model.variable_point(rates)
    feasible = plan.feasible_set().is_feasible(point)
    print(f"\nrates {np.round(rates, 1)} -> variable point "
          f"{np.round(point, 2)}; analytic feasible: {feasible}")

    result = Simulator(plan, step_seconds=0.02).run(
        rates=rates, duration=20.0
    )
    print(
        f"simulated: max node demand {result.max_utilization:.2f}x capacity, "
        f"mean latency {result.latency.mean() * 1e3:.1f} ms, "
        f"p95 {result.latency.percentile(95) * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
