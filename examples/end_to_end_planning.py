#!/usr/bin/env python3
"""End-to-end: run a real query, measure its statistics, place it.

The paper's planning workflow (Section 7.1) starts by running the system
"for a sufficiently long time to gather stable statistics".  This example
does the whole loop with real data:

1. build a *logical* traffic-analysis program with actual predicates,
   window aggregates and a key-equality join (repro.runtime);
2. execute it over packets synthesized from a self-similar trace and a
   small flow-ownership table, producing real alerts;
3. lower the program to a load-model query graph using the *measured*
   selectivities;
4. place it with ROD and compare against a load balancer.

Run:  python examples/end_to_end_planning.py
"""

import random

from repro import build_load_model, rod_place
from repro.placement import LLFPlacer
from repro.runtime import (
    FnAggregate,
    FnFilter,
    FnMap,
    FnWindowJoin,
    Interpreter,
    Record,
    StreamProgram,
    records_from_trace,
)
from repro.workload import make_trace

PROTOCOLS = ("tcp", "udp", "icmp")
HOSTS = tuple(f"10.0.0.{i}" for i in range(1, 9))


def build_program() -> StreamProgram:
    program = StreamProgram("traffic-analysis")
    packets = program.add_input("packets")
    flows = program.add_input("flow_table")

    tcp = program.add(
        FnFilter("tcp_only", lambda d: d["proto"] == "tcp", cost=1e-4),
        [packets],
    )
    sized = program.add(
        FnMap("kilobytes", lambda d: {**d, "kb": d["bytes"] / 1024},
              cost=1e-4),
        [tcp],
    )
    volume = program.add(
        FnAggregate(
            "per_host_volume",
            window=1.0,
            reducer=lambda rs: {"kb": sum(r["kb"] for r in rs),
                                "packets": len(rs)},
            key=lambda d: d["src"],
            cost=3e-4,
        ),
        [sized],
    )
    heavy = program.add(
        FnFilter("heavy_hitters", lambda d: d["kb"] > 9.0, cost=1e-4),
        [volume],
    )
    program.add(
        FnWindowJoin(
            "attribute_owner",
            window=10.0,
            left_key=lambda d: d["key"],
            right_key=lambda d: d["host"],
            merge=lambda alert, flow: {**alert, "owner": flow["owner"]},
            cost_per_pair=2e-4,
        ),
        [heavy, flows],
    )
    return program


def main() -> None:
    program = build_program()
    rng = random.Random(1)

    trace = make_trace("pkt", steps=600, mean_rate=120.0, seed=4)
    packets = records_from_trace(
        trace,
        0.1,
        lambda i: {
            "proto": rng.choices(PROTOCOLS, weights=(6, 3, 1))[0],
            "src": rng.choice(HOSTS),
            "bytes": rng.randint(60, 1500),
        },
    )
    flow_table = [
        Record(t * 5.0, {"host": host, "owner": f"team-{host[-1]}"})
        for t in range(13)
        for host in HOSTS
    ]

    print(f"replaying {len(packets)} packets through the real query ...")
    result = Interpreter(program).run(
        {"packets": packets, "flow_table": flow_table}
    )
    alerts = result.sink_records["attribute_owner.out"]
    print(f"  {len(alerts)} attributed heavy-hitter alerts, e.g.:")
    for alert in alerts[:3]:
        print(f"    t={alert.time:6.1f}s host={alert['key']} "
              f"kb={alert['kb']:.1f} owner={alert['owner']}")

    measured = result.selectivities()
    print("\nmeasured selectivities:")
    for name, value in measured.items():
        print(f"  {name:18s} {value:.3f}")

    graph = program.to_query_graph(measured)
    model = build_load_model(graph)
    print(
        f"\nload model: {model.num_operators} operators, "
        f"{model.num_variables} variables "
        f"(cut streams: {model.linearization.cut_streams})"
    )

    capacities = [1.0, 1.0, 1.0]
    rod_plan = rod_place(model, capacities)
    llf_plan = LLFPlacer().place(model, capacities)
    print("\nfeasible-set ratio to the ideal:")
    print(f"  ROD : {rod_plan.volume_ratio():.3f}")
    print(f"  LLF : {llf_plan.volume_ratio():.3f}")
    print("\nROD placement:")
    print(rod_plan.describe())


if __name__ == "__main__":
    main()
