"""Command-line interface.

The subcommands cover the deploy-time workflow end to end::

    repro-rod generate --kind random --inputs 3 --ops-per-tree 10 -o g.json
    repro-rod place    --graph g.json --nodes 4 --algorithm rod -o plan.json
    repro-rod check    --paths examples/configs --fail-on error
    repro-rod evaluate --graph g.json --plan plan.json
    repro-rod simulate --graph g.json --plan plan.json --rates 50,80 \\
                       --duration 20 --record
    repro-rod trace    run.jsonl --type batch.serviced --node 0 --since 5
    repro-rod trace    run.jsonl --span 42 --operator filter_0
    repro-rod runs     list --json
    repro-rod compare  RUN_A RUN_B --threshold latency.p99=0.1
    repro-rod explain  RUN_B -k 5
    repro-rod why      RUN_B --json
    repro-rod slo      RUN_B --config slo.json
    repro-rod report   RUN_B -o report.html
    repro-rod experiment fig14 --record

``generate`` writes a query-graph JSON document (see
:mod:`repro.graphs.serialize`); ``place`` runs any placement algorithm
and emits an ``{operator: node}`` plan; ``check`` runs the static
verifiers of :mod:`repro.check` over JSON artifacts and the custom lint
pass over sources; ``evaluate`` scores a plan
(feasible-set ratio, plane distance, and an ASCII picture for 2-D
systems); ``simulate`` replays a constant rate point through the
discrete-event simulator; ``trace`` renders a JSONL event trace (see
:mod:`repro.obs.trace`) as per-node utilization timelines; ``experiment``
regenerates any paper artifact by id.

``simulate`` and ``evaluate`` accept ``--trace-out FILE`` to stream
structured events and ``--emit-metrics {json,prometheus}`` to dump the
run's metrics registry after the normal output.  The global ``-v`` /
``-q`` flags (before the subcommand) control ``repro.*`` log verbosity.

``simulate``, ``evaluate`` and ``experiment`` accept ``--record
[ROOT]`` to persist the invocation in the run registry
(:mod:`repro.obs.runs`): ``runs`` lists and shows recorded runs,
``compare`` diffs two of them with regression thresholds (non-zero exit
on breach, so CI can gate on it), and ``report RUN`` renders a
self-contained HTML report with inline-SVG utilization charts.

``explain RUN`` attributes a recorded run's end-to-end latency to
(operator, phase) pairs via causal span tracing
(:mod:`repro.obs.critical_path`); ``slo RUN --config FILE`` judges a
run against declarative latency/throughput objectives with burn-rate
windows (:mod:`repro.obs.slo`) — ``simulate --slo FILE`` does the same
inline at the end of a run.  ``trace --span ID`` prints one batch's
causal lineage instead of the timeline view.

``why RUN`` audits the control plane of a recorded run: every
``decision.evaluated`` record (trigger, observed loads, scored
candidates, the structured no-op reason when nothing moved), each
migration's rejected alternatives and feasible-volume before/after, and
any drift detections (:mod:`repro.obs.decisions`,
:mod:`repro.obs.drift`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from . import experiments, parallel
from .check import Severity, check_paths, check_plan_document
from .core.load_model import LoadModel, build_load_model
from .core.plans import Placement, placement_from_mapping
from .core.volume import cache as volume_cache
from .core.analysis import resilience_summary
from .core.viz import render_feasible_set
from .graphs.generator import (
    RandomGraphConfig,
    join_graph,
    monitoring_graph,
    random_tree_graph,
)
from .dynamics import (
    FAILOVER_POLICIES,
    ElasticityController,
    FailoverController,
)
from .faults import chaos_schedule, load_fault_schedule
from .graphs.partition import partition_operator
from .graphs.serialize import dump_graph, load_graph
from .obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Observability,
    RunWriter,
    Tracer,
    configure,
    find_run,
    list_runs,
    read_trace,
)
from .obs.runs import snapshot_from_result
from .placement import (
    AnnealingPlacer,
    ConnectedPlacer,
    CorrelationPlacer,
    ElasticPlacer,
    HierarchicalPlacer,
    LLFPlacer,
    MilpBalancePlacer,
    OptimalPlacer,
    RODPlacer,
    RandomPlacer,
)
from .simulator.engine import Simulator
from .workload.rates import rate_series

__all__ = ["main"]

EXPERIMENTS = {
    "fig2": lambda: experiments.fig2_traces.run(),
    "fig9": lambda: experiments.fig9_plane_distance.binned(
        experiments.fig9_plane_distance.run()
    ),
    "fig14": lambda jobs=1: experiments.resiliency.run(jobs=jobs),
    "fig15": lambda jobs=1: experiments.dimensions.run(jobs=jobs),
    "optimal-gap": lambda: experiments.optimal_gap.run(),
    "latency": lambda: experiments.latency.run(),
    "lower-bound": lambda: experiments.lower_bound.run(),
    "nonlinear": lambda: experiments.nonlinear.run(),
    "clustering": lambda: experiments.clustering_experiment.run(),
    "fidelity": lambda: experiments.fidelity.run(),
    "dynamic": lambda: experiments.dynamic_migration.run(),
    "elasticity": lambda: experiments.elasticity.run(),
    "fault-tolerance": lambda jobs=1: experiments.fault_tolerance.run(
        jobs=jobs
    ),
    "heterogeneous": lambda: experiments.heterogeneous.run(),
    "partitioning": lambda: experiments.partitioning.run(),
    "balance-bound": lambda: experiments.balance_bound.run(),
    "qmc-convergence": lambda: experiments.qmc_convergence.run(),
    "scheduling": lambda: experiments.scheduling_ablation.run(),
    "protocol": lambda: experiments.fidelity.run_protocol_comparison(),
    "linearization": lambda: experiments.linearization_value.run(),
    "search-gap": lambda: experiments.search_gap.run(),
    "scale-solve": lambda jobs=1: experiments.scale_solve.run(jobs=jobs),
}

#: Experiment ids whose runner accepts a ``jobs=`` keyword.
JOBS_AWARE_EXPERIMENTS = frozenset(
    {"fig14", "fig15", "fault-tolerance", "scale-solve"}
)


def _build_placer(
    name: str,
    model: LoadModel,
    seed: Optional[int],
    score_batch: int = 1,
    jobs: int = 1,
    group_size: int = 16,
):
    if name == "rod":
        return RODPlacer()
    if name == "llf":
        return LLFPlacer()
    if name == "connected":
        return ConnectedPlacer()
    if name == "random":
        return RandomPlacer(seed=seed)
    if name == "correlation":
        series = rate_series(model.num_variables, 128, seed=seed or 0)
        return CorrelationPlacer(series)
    if name == "optimal":
        return OptimalPlacer()
    if name == "milp":
        return MilpBalancePlacer()
    if name == "annealing":
        return AnnealingPlacer(seed=seed, score_batch=score_batch, jobs=jobs)
    if name == "hierarchical":
        return HierarchicalPlacer(
            group_size=group_size, seed=seed,
            score_batch=score_batch, jobs=jobs,
        )
    raise SystemExit(f"unknown algorithm: {name!r}")


def _load_placement(
    graph_path: str, plan_path: str, nodes: Optional[int]
) -> Placement:
    model = build_load_model(load_graph(graph_path))
    with open(plan_path) as handle:
        doc = json.load(handle)
    if "assignment" in doc:
        # Static-check the document before construction so a stale or
        # corrupted plan fails with structured diagnostics, not a
        # NumPy shape error mid-simulation.
        report = check_plan_document(doc, model=model, location=plan_path)
        if not report.ok:
            raise SystemExit(report.format())
        mapping = doc["assignment"]
    else:
        mapping = doc
    capacities = doc.get(
        "capacities",
        [1.0] * (nodes or (max(mapping.values()) + 1)),
    )
    return placement_from_mapping(model, capacities, mapping)


def _print_plan_summary(placement: Placement) -> None:
    print(placement.describe())
    print(f"feasible-set ratio to ideal: {placement.volume_ratio():.4f}")
    print(f"inter-node arcs: {placement.inter_node_arcs()}")


def _obs_from_args(
    args: argparse.Namespace, writer: Optional[RunWriter] = None
):
    """Build the Observability bundle the --trace-out flag asks for.

    Returns ``(obs, sink)``; the caller must close ``sink`` (may be
    ``None``) when the command finishes so the JSONL file is flushed.
    An explicit ``--trace-out`` wins the event stream; otherwise a run
    recorder (``--record``) captures it into its ``trace.jsonl`` (that
    sink is owned and closed by ``writer.finish``).
    """
    sink = None
    tracer = None
    if getattr(args, "trace_out", None):
        sink = JsonlSink(args.trace_out)
        tracer = Tracer(sink)
    elif writer is not None:
        tracer = Tracer(writer.trace_sink())
    return Observability(tracer=tracer), sink


def _run_writer_from_args(
    args: argparse.Namespace,
    kind: str,
    config: dict,
    placement=None,
    seed: Optional[int] = None,
) -> Optional[RunWriter]:
    """A RunWriter when ``--record [ROOT]`` was passed, else ``None``."""
    root = getattr(args, "record", None)
    if root is None:
        return None
    return RunWriter(
        root=root,
        kind=kind,
        run_id=getattr(args, "run_id", None),
        config=config,
        seed=seed,
        argv=getattr(args, "_argv", []),
        placement=placement,
    )


def _seal_run(writer: Optional[RunWriter]) -> None:
    """Seal a half-finished run directory after a failure."""
    if writer is not None and not writer.finished:
        writer.finish()


def _emit_metrics(args: argparse.Namespace, registry: MetricsRegistry) -> None:
    fmt = getattr(args, "emit_metrics", None)
    if not fmt:
        return
    if fmt == "json":
        print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
    else:
        print(registry.render_prometheus(), end="")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "random":
        graph = random_tree_graph(
            RandomGraphConfig(
                num_inputs=args.inputs, operators_per_tree=args.ops_per_tree
            ),
            seed=args.seed,
        )
    elif args.kind == "monitoring":
        graph = monitoring_graph(num_links=args.inputs, seed=args.seed)
    elif args.kind == "joins":
        graph = join_graph(num_join_pairs=max(1, args.inputs // 2),
                           seed=args.seed)
    elif args.kind == "elastic":
        # The elasticity demo workload: one hot operator already split
        # two ways with skewed fractions (uniform hash ranges over a
        # skewed key distribution), ready for ``simulate --elastic``.
        graph = partition_operator(
            experiments.elasticity.hot_pipeline(), "hot", 2,
            fractions=(0.8, 0.2),
        )
    else:
        raise SystemExit(f"unknown graph kind: {args.kind!r}")
    dump_graph(graph, args.output)
    print(
        f"wrote {graph.num_operators} operators / {graph.num_inputs} "
        f"inputs to {args.output}"
    )
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    model = build_load_model(load_graph(args.graph))
    algorithm = "hierarchical" if args.hierarchical else args.algorithm
    placer = _build_placer(
        algorithm, model, args.seed,
        score_batch=args.score_batch,
        jobs=parallel.resolve_jobs(args.jobs),
        group_size=args.group_size,
    )
    if args.elastic:
        placer = ElasticPlacer(
            base=placer,
            target_ratio=args.elastic_target_ratio,
            ways=args.elastic_ways,
            max_splits=args.elastic_max_splits,
            seed=args.seed if args.seed is not None else 0,
        )
    placement = placer.place(model, [args.capacity] * args.nodes)
    _print_plan_summary(placement)
    if args.elastic:
        for entry in placer.history:
            print(
                f"elastic {entry['action']} {entry['operator']}: "
                f"{entry['ratio_before']:.4f} -> "
                f"{entry['ratio_after']:.4f} "
                f"({'kept' if entry['kept'] else 'rolled back'})"
            )
        if args.elastic_graph_out:
            # The placed model's graph gained routes/instances/merges:
            # persist it (partition provenance included) so evaluate /
            # simulate can reload a matching model.
            dump_graph(placement.model.graph, args.elastic_graph_out)
            print(f"partitioned graph written to "
                  f"{args.elastic_graph_out}")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(placement.to_json())
            handle.write("\n")
        print(f"plan written to {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    placement = _load_placement(args.graph, args.plan, args.nodes)
    jobs = parallel.resolve_jobs(getattr(args, "jobs", 1))
    writer = _run_writer_from_args(
        args,
        kind="evaluate",
        config={"graph": args.graph, "plan": args.plan, "jobs": jobs},
        placement=placement.to_document(),
    )
    obs, sink = _obs_from_args(args, writer)
    try:
        print(placement.describe())
        if args.axis_budget is not None:
            with obs.phase("evaluate.volume_ratio"):
                ratio, se = placement.feasible_set().volume_ratio_axis_sampled(
                    axis_budget=args.axis_budget
                )
            print(
                f"feasible-set ratio to ideal: {ratio:.4f} "
                f"(axis-sampled, se={se:.4f})"
            )
        else:
            with obs.phase("evaluate.volume_ratio"):
                ratio = placement.volume_ratio(jobs=jobs)
            print(f"feasible-set ratio to ideal: {ratio:.4f}")
        print(f"inter-node arcs: {placement.inter_node_arcs()}")
        print()
        with obs.phase("evaluate.resilience"):
            print(resilience_summary(placement))
        feasible_set = placement.feasible_set()
        if feasible_set.dimension == 2:
            print()
            print(render_feasible_set(feasible_set, title="feasible set"))
        volume_cache.publish_metrics(obs.registry)
        parallel.publish_metrics(obs.registry)
        _emit_metrics(args, obs.registry)
        if writer is not None:
            writer.finish(
                snapshot={
                    "kind": "evaluate",
                    "volume_ratio": ratio,
                    "inter_node_arcs": placement.inter_node_arcs(),
                    "plane_distance": placement.plane_distance(),
                },
                registry=obs.registry,
            )
            print(f"run recorded to {writer.path}")
        return 0
    finally:
        if sink is not None:
            sink.close()
        _seal_run(writer)


def _faults_from_args(
    args: argparse.Namespace, placement: Placement, duration: float
):
    """The fault schedule ``--faults`` / ``--chaos-seed`` ask for."""
    if args.faults and args.chaos_seed is not None:
        raise SystemExit("--faults and --chaos-seed are mutually "
                         "exclusive: pick a file or a generated schedule")
    if args.faults:
        return load_fault_schedule(args.faults)
    if args.chaos_seed is not None:
        return chaos_schedule(
            placement.num_nodes,
            horizon=duration,
            seed=args.chaos_seed,
            operator_names=placement.model.graph.operator_names,
            intensity=args.chaos_intensity,
        )
    return None


def cmd_simulate(args: argparse.Namespace) -> int:
    placement = _load_placement(args.graph, args.plan, args.nodes)
    rates = [float(r) for r in args.rates.split(",")]
    faults = _faults_from_args(args, placement, args.duration)
    controller = None
    if args.failover and getattr(args, "elastic", False):
        raise SystemExit("--failover and --elastic are mutually "
                         "exclusive: pick one controller")
    if args.failover:
        controller = FailoverController(policy=args.failover)
    elif getattr(args, "elastic", False):
        if not placement.model.graph.partition_groups:
            raise SystemExit(
                "--elastic needs a graph with partition groups; place "
                "with --elastic --elastic-graph-out (or partition the "
                "graph first) and simulate that graph"
            )
        controller = ElasticityController()
    slo_objectives = None
    if getattr(args, "slo", None):
        from .obs.slo import load_slo_config

        try:
            slo_objectives = load_slo_config(args.slo)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--slo {args.slo}: {exc}") from None
    config = {
        "graph": args.graph,
        "plan": args.plan,
        "rates": rates,
        "duration": args.duration,
        "step_seconds": args.step,
    }
    # Conditional keys: fault-free invocations keep their pre-faults
    # config digest, so existing recorded baselines still match.
    if faults is not None:
        config["faults"] = [f.to_json_obj() for f in faults.events]
        if args.chaos_seed is not None:
            config["chaos_seed"] = args.chaos_seed
            config["chaos_intensity"] = args.chaos_intensity
    if args.failover:
        config["failover"] = args.failover
    if getattr(args, "elastic", False):
        config["elastic"] = True
    writer = _run_writer_from_args(
        args,
        kind="simulate",
        config=config,
        placement=placement.to_document(),
    )
    obs, sink = _obs_from_args(args, writer)
    # SLO evaluation needs an event stream; when nothing else asked for
    # one, capture it in memory so `--slo` works standalone.
    memory_sink = None
    if slo_objectives is not None and not obs.tracer.enabled:
        memory_sink = MemorySink()
        obs = Observability(
            registry=obs.registry, tracer=Tracer(memory_sink)
        )
    try:
        simulator = Simulator(
            placement,
            step_seconds=args.step,
            tracer=obs.tracer,
            metrics=obs.registry,
            faults=faults,
            controller=controller,
        )
        result = simulator.run(rates=rates, duration=args.duration)
        print(result.summary())
        if getattr(args, "elastic", False):
            print(
                "repartitions applied: "
                f"{len(getattr(controller, 'history', ()))}"
            )
        feasible = result.is_feasible(backlog_tolerance=args.step)
        print(f"feasible at this rate point: {feasible}")
        if sink is not None:
            print(f"trace written to {args.trace_out}")
        events = _simulate_trace_events(writer, sink, memory_sink, args)
        snapshot = snapshot_from_result(result)
        slo_breached = False
        if events:
            from .obs.critical_path import analyze_critical_path
            from .obs.decisions import decision_snapshot
            from .obs.drift import drift_snapshot

            snapshot["critical_path"] = analyze_critical_path(
                events
            ).to_json_obj()
            # Always present (zero-valued for controller-less runs) so
            # baselines gain the keys and `compare` can diff them.
            snapshot["decisions"] = decision_snapshot(events)
            snapshot["drift"] = drift_snapshot(events)
            if slo_objectives is not None:
                from .obs.slo import (
                    evaluate_slos,
                    record_slo_metrics,
                    render_slo_report,
                )

                slo_report = evaluate_slos(events, slo_objectives)
                record_slo_metrics(obs.registry, slo_report)
                snapshot["slo"] = slo_report.to_json_obj()
                print(render_slo_report(slo_report))
                slo_breached = not slo_report.ok
        _emit_metrics(args, obs.registry)
        if writer is not None:
            writer.finish(
                snapshot=snapshot,
                registry=obs.registry,
                sim_seconds=result.duration,
            )
            print(f"run recorded to {writer.path}")
        if slo_breached:
            return 1
        return 0 if feasible or not args.check else 1
    finally:
        if sink is not None:
            sink.close()
        _seal_run(writer)


def _simulate_trace_events(
    writer: Optional[RunWriter],
    sink: Optional[JsonlSink],
    memory_sink,
    args: argparse.Namespace,
):
    """The run's trace events, read back from whichever sink got them.

    JSONL sinks are closed (flushed) before reading; both closes are
    idempotent, so the `finally` / ``writer.finish`` closes that follow
    are safe no-ops.  Returns ``[]`` for untraced runs.
    """
    if memory_sink is not None:
        return memory_sink.events
    if sink is not None:
        sink.close()
        return read_trace(args.trace_out)
    if writer is not None and os.path.exists(writer.trace_path):
        writer.trace_sink().close()
        return read_trace(writer.trace_path)
    return []


def cmd_trace(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the timeline renderer pulls in
    # the workload layer, which no other subcommand needs.
    from .obs.timeline import filter_events, render_trace_report, trace_metadata

    events = read_trace(args.path)
    if not events:
        print(f"{args.path}: empty trace")
        return 1
    if args.span is not None:
        return _trace_span_lineage(args, events)
    # Geometry comes from the unfiltered trace, so a filtered view still
    # renders with the run's true node count / capacities / horizon.
    meta = trace_metadata(events)
    types: List[str] = [
        name
        for spec in (args.types or [])
        for name in spec.split(",")
        if name
    ]
    selected = filter_events(
        events,
        types=types or None,
        nodes=args.nodes,
        since=args.since,
        operators=args.operators,
    )
    if not selected:
        print(f"{args.path}: no events match the filters")
        return 1
    print(render_trace_report(selected, width=args.width, metadata=meta))
    return 0


def _trace_span_lineage(args: argparse.Namespace, events) -> int:
    """``repro-rod trace --span ID``: one batch's causal history."""
    from .obs.spans import span_lineage, spans_from_trace

    spans = spans_from_trace(events)
    if not spans:
        print(f"{args.path}: trace carries no span events")
        return 1
    try:
        closure = span_lineage(spans, args.span)
    except KeyError:
        print(f"{args.path}: span {args.span} does not appear in the "
              f"trace ({len(spans)} spans recorded)")
        return 1
    operators = None if not args.operators else frozenset(args.operators)
    print(f"lineage of span {args.span}: {len(closure)} span(s)")
    for span_id in sorted(closure):
        record = spans[span_id]
        if operators is not None and record.operator not in operators:
            continue
        parent = "-" if record.parent is None else str(record.parent)
        line = (
            f"  span {record.span} parent={parent} "
            f"op={record.operator} port={record.port} "
            f"count={record.count} arrival={record.open_t:g}s"
        )
        if record.closed:
            line += (
                f" node={record.node} wait={record.wait_seconds:g}s "
                f"service={record.service_seconds:g}s out={record.out}"
            )
            if record.is_sink:
                line += (
                    f" sink={record.sink} "
                    f"latency={0.0 if record.latency is None else record.latency:g}s"
                )
        else:
            line += " (never serviced — stranded)"
        print(line)
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    if args.runs_command == "list":
        runs = list_runs(args.root)
        if getattr(args, "json", False):
            print(json.dumps(
                [_run_list_obj(run) for run in runs],
                indent=2, sort_keys=True,
            ))
            return 0
        if not runs:
            print(f"no runs under {args.root}")
            return 0
        rows = [("run id", "kind", "created", "config", "headline")]
        for run in runs:
            manifest = run.manifest
            created = _format_wall(manifest.created_wall)
            rows.append((
                manifest.run_id, manifest.kind, created,
                manifest.config_digest or "-", _headline(run.result),
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        for index, row in enumerate(rows):
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
            if index == 0:
                print("  ".join("-" * w for w in widths).rstrip())
        return 0
    # show
    try:
        run = find_run(args.run, args.root)
    except FileNotFoundError as exc:
        print(exc)
        return 1
    manifest = run.manifest
    print(f"run {manifest.run_id} ({manifest.kind})")
    print(f"  path: {run.path}")
    print(f"  created: {_format_wall(manifest.created_wall)}")
    print(f"  version: {manifest.version or '?'}  "
          f"config digest: {manifest.config_digest or '?'}")
    print(f"  seed: {manifest.seed}")
    if manifest.argv:
        print(f"  argv: {' '.join(manifest.argv)}")
    for key, value in sorted(manifest.labels.items()):
        print(f"  label {key}: {value}")
    if manifest.wall_seconds is not None:
        print(f"  wall seconds: {manifest.wall_seconds:.3f}")
    if manifest.sim_seconds is not None:
        print(f"  simulated seconds: {manifest.sim_seconds:g}")
    if run.has_trace:
        print(f"  trace: {len(run.events())} events")
    else:
        print("  trace: none")
    if run.result:
        from .obs.diff import flatten_metrics

        flat = flatten_metrics(run.result)
        print(f"  result.json: {len(flat)} metrics — {_headline(run.result)}")
    else:
        print("  result.json: none")
    return 0


def _run_list_obj(run) -> dict:
    """One run's machine-readable row for ``runs list --json``."""
    manifest = run.manifest
    faults = run.result.get("faults") if run.result else None
    return {
        "run_id": manifest.run_id,
        "kind": manifest.kind,
        "created_wall": manifest.created_wall,
        "sim_seconds": manifest.sim_seconds,
        "seed": manifest.seed,
        "faults": len(faults) if isinstance(faults, list) else 0,
        "config_digest": manifest.config_digest,
        "path": run.path,
    }


def cmd_compare(args: argparse.Namespace) -> int:
    from .obs.diff import compare_runs, parse_thresholds

    try:
        run_a = find_run(args.run_a, args.root)
        run_b = find_run(args.run_b, args.root)
    except FileNotFoundError as exc:
        print(exc)
        return 1
    try:
        thresholds = parse_thresholds(args.threshold or [])
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    diff = compare_runs(
        run_a, run_b,
        thresholds=thresholds,
        default_threshold=args.default_threshold,
    )
    print(f"comparing {run_a.run_id} (baseline) -> {run_b.run_id}")
    print(diff.format(show_unchanged=args.all))
    return 1 if diff.breaches else 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .obs.critical_path import (
        analyze_critical_path,
        render_critical_path_report,
    )

    try:
        run = find_run(args.run, args.root)
    except FileNotFoundError as exc:
        print(exc)
        return 1
    events = run.events()
    if not events:
        print(f"run {run.run_id} has no trace; explain needs a traced "
              "recording (simulate --record)")
        return 1
    analysis = analyze_critical_path(events)
    if analysis.spans_total == 0:
        print(f"run {run.run_id}: trace carries no span events "
              "(recorded before span tracing? re-record it)")
        return 1
    if args.json:
        print(json.dumps(analysis.to_json_obj(), indent=2, sort_keys=True))
        return 0
    print(f"run {run.run_id}")
    print(render_critical_path_report(analysis, top_k=args.top))
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    from .obs.decisions import render_why_report, why_json_obj

    try:
        run = find_run(args.run, args.root)
    except FileNotFoundError as exc:
        print(exc)
        return 1
    events = run.events()
    if not events:
        print(f"run {run.run_id} has no trace; why needs a traced "
              "recording (simulate --record)")
        return 1
    if not any(e.type == "decision.evaluated" for e in events):
        print(f"run {run.run_id}: trace carries no decision events "
              "(no controller attached, or recorded before decision "
              "telemetry? re-record it)")
        return 1
    if args.json:
        print(json.dumps(why_json_obj(events), indent=2, sort_keys=True))
        return 0
    print(f"run {run.run_id}")
    print(render_why_report(events))
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from .obs.slo import evaluate_slos, load_slo_config, render_slo_report

    try:
        run = find_run(args.run, args.root)
    except FileNotFoundError as exc:
        print(exc)
        return 1
    try:
        objectives = load_slo_config(args.config)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--config {args.config}: {exc}") from None
    events = run.events()
    if not events:
        print(f"run {run.run_id} has no trace; slo needs a traced "
              "recording (simulate --record)")
        return 1
    report = evaluate_slos(events, objectives)
    print(f"run {run.run_id}")
    print(render_slo_report(report))
    return 0 if report.ok else 1


def _format_wall(epoch: float) -> str:
    import time as _time

    return _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(epoch))


def _headline(result: dict) -> str:
    """One-cell summary of a run snapshot for the list view."""
    if not result:
        return "-"
    kind = result.get("kind")
    if kind == "simulate":
        latency = result.get("latency", {})
        p95 = latency.get("p95", 0.0) if isinstance(latency, dict) else 0.0
        return (
            f"util={result.get('max_utilization', 0):.3g} "
            f"out={result.get('tuples_out', '?')} "
            f"p95={float(p95) * 1e3:.2f}ms"
        )
    if kind == "evaluate":
        return f"volume_ratio={result.get('volume_ratio', 0):.4g}"
    if kind == "experiment":
        rows = result.get("rows")
        count = len(rows) if isinstance(rows, list) else 0
        return f"{count} row(s)"
    return "-"


def cmd_report(args: argparse.Namespace) -> int:
    if args.run:
        from .obs.report_html import write_html_report

        try:
            run = find_run(args.run, args.root)
        except FileNotFoundError as exc:
            print(exc)
            return 1
        output = args.output or os.path.join(run.path, "report.html")
        write_html_report(run, output)
        print(f"run report written to {output}")
        return 0
    if not args.output:
        raise SystemExit(
            "report: pass a RUN to render a run report, or -o/--output "
            "for the experiment markdown report"
        )
    from .experiments import report

    report.write_report(args.output, scale=args.scale, only=args.only)
    print(f"report written to {args.output}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    try:
        report = check_paths(
            args.paths,
            lint=not args.no_lint,
            flow=args.flow,
            jobs=parallel.resolve_jobs(args.jobs),
        )
    except Exception as exc:
        print(f"check: internal error: {exc}", file=sys.stderr)
        return 2
    threshold = Severity.parse(args.fail_on)
    for diagnostic in report:
        print(diagnostic.format())
    errors, warnings, infos = report.counts()
    print(f"check: {errors} error(s), {warnings} warning(s), {infos} info(s)")
    parse_failures = [d for d in report if d.code == "REPRO500"]
    if parse_failures:
        for diagnostic in parse_failures:
            print(f"check: cannot analyze {diagnostic.location}",
                  file=sys.stderr)
        return 2
    return 1 if report.at_least(threshold) else 0


def cmd_experiment(args: argparse.Namespace) -> int:
    try:
        runner = EXPERIMENTS[args.id]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {args.id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    jobs = parallel.resolve_jobs(args.jobs)
    if args.id in JOBS_AWARE_EXPERIMENTS:
        rows = runner(jobs=jobs)
    else:
        if jobs > 1:
            print(f"note: experiment {args.id!r} does not parallelize; "
                  "--jobs ignored")
        rows = runner()
    print(experiments.format_rows(rows))
    if getattr(args, "record", None) is not None:
        manifest = experiments.common.record_experiment_run(
            root=args.record,
            experiment_id=args.id,
            rows=rows,
            run_id=getattr(args, "run_id", None),
            argv=getattr(args, "_argv", []),
            config={"jobs": jobs},
        )
        print(f"run recorded to {os.path.join(args.record, manifest.run_id)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rod",
        description="Resilient Operator Distribution (VLDB 2006) toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise repro.* log verbosity (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower repro.* log verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace-out", metavar="FILE",
            help="stream structured JSONL events to FILE "
                 "(render with `repro-rod trace FILE`)",
        )
        command.add_argument(
            "--emit-metrics", choices=("json", "prometheus"),
            help="dump the metrics registry after the normal output",
        )

    def add_record_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--record", nargs="?", const="runs", default=None,
            metavar="ROOT",
            help="record this invocation as a run directory under ROOT "
                 "(default ./runs); browse with `repro-rod runs`, diff "
                 "with `repro-rod compare`, render with "
                 "`repro-rod report`",
        )
        command.add_argument(
            "--run-id", default=None,
            help="explicit run id (default: timestamp + config digest)",
        )

    gen = sub.add_parser("generate", help="write a query-graph JSON file")
    gen.add_argument("--kind", default="random",
                     choices=("random", "monitoring", "joins",
                              "elastic"))
    gen.add_argument("--inputs", type=int, default=3)
    gen.add_argument("--ops-per-tree", type=int, default=10)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=cmd_generate)

    place = sub.add_parser("place", help="place a graph on a cluster")
    place.add_argument("--graph", required=True)
    place.add_argument("--nodes", type=int, required=True)
    place.add_argument("--capacity", type=float, default=1.0)
    place.add_argument(
        "--algorithm",
        default="rod",
        choices=("rod", "llf", "connected", "correlation", "random",
                 "optimal", "milp", "annealing", "hierarchical"),
    )
    place.add_argument(
        "--hierarchical", action="store_true",
        help="shortcut for --algorithm hierarchical: cluster-then-place "
             "for large clusters (hundreds to 1000 nodes)",
    )
    place.add_argument(
        "--score-batch", type=int, default=1, metavar="K",
        help="score K candidate moves per search round in the annealing "
             "kernels (K=1 is bit-identical to the classic loop)",
    )
    place.add_argument(
        "--group-size", type=int, default=16, metavar="N",
        help="nodes per refinement group for --hierarchical",
    )
    place.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for candidate scoring / group refinement "
             "(0 = all cores)",
    )
    place.add_argument(
        "--elastic", action="store_true",
        help="wrap the chosen algorithm in the elastic placer: split "
             "the bottleneck operator into key-partitioned instances "
             "until the feasible-volume ratio clears the target",
    )
    place.add_argument(
        "--elastic-target-ratio", type=float, default=0.5, metavar="R",
        help="stop splitting once the ratio reaches R (default 0.5)",
    )
    place.add_argument(
        "--elastic-ways", type=int, default=2, metavar="W",
        help="instances per split; escalation doubles an existing "
             "group (default 2)",
    )
    place.add_argument(
        "--elastic-max-splits", type=int, default=4, metavar="N",
        help="bound on split attempts per placement (default 4)",
    )
    place.add_argument(
        "--elastic-graph-out", metavar="FILE", default=None,
        help="write the partitioned graph JSON (with partition "
             "provenance) so evaluate/simulate can reload the plan",
    )
    place.add_argument("--seed", type=int, default=None)
    place.add_argument("-o", "--output")
    place.set_defaults(func=cmd_place)

    ev = sub.add_parser("evaluate", help="score an existing plan")
    ev.add_argument("--graph", required=True)
    ev.add_argument("--plan", required=True)
    ev.add_argument("--nodes", type=int, default=None)
    ev.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the QMC volume estimate "
             "(0 = all cores); the result is identical for any value",
    )
    ev.add_argument(
        "--axis-budget", type=int, default=None, metavar="K",
        help="estimate the volume ratio with importance-weighted "
             "axis-sampled QMC (Halton on the K hardest-binding axes, "
             "seeded uniforms elsewhere) and report its standard error; "
             "for high-dimensional models — NOT bit-identical to the "
             "default estimator",
    )
    add_obs_flags(ev)
    add_record_flags(ev)
    ev.set_defaults(func=cmd_evaluate)

    sim = sub.add_parser("simulate", help="replay a rate point")
    sim.add_argument("--graph", required=True)
    sim.add_argument("--plan", required=True)
    sim.add_argument("--nodes", type=int, default=None)
    sim.add_argument("--rates", required=True,
                     help="comma-separated tuples/second per input")
    sim.add_argument("--duration", type=float, default=20.0)
    sim.add_argument("--step", type=float, default=0.1)
    sim.add_argument("--check", action="store_true",
                     help="exit non-zero if the point is infeasible")
    sim.add_argument(
        "--faults", metavar="FILE", default=None,
        help="inject the fault schedule in FILE (JSON; see "
             "docs/robustness.md for the schema)",
    )
    sim.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="generate a seeded random fault schedule instead of "
             "loading one (same seed = same faults, bit for bit)",
    )
    sim.add_argument(
        "--chaos-intensity", type=float, default=1.0, metavar="X",
        help="scale the number of generated chaos faults (default 1.0)",
    )
    sim.add_argument(
        "--failover", choices=FAILOVER_POLICIES, default=None,
        help="react to node crashes by reassigning their operators "
             "('volume' keeps the residual feasible set largest, "
             "'least_loaded' is the classic baseline)",
    )
    sim.add_argument(
        "--elastic", action="store_true",
        help="rebalance key ranges inside partition groups at runtime "
             "(skew-aware repartitioning; the graph must carry "
             "partition provenance)",
    )
    sim.add_argument(
        "--slo", metavar="FILE", default=None,
        help="evaluate the SLO config in FILE over the run's trace "
             "(see docs/observability.md for the schema); breaches "
             "exit non-zero",
    )
    add_obs_flags(sim)
    add_record_flags(sim)
    sim.set_defaults(func=cmd_simulate)

    tr = sub.add_parser(
        "trace", help="render a JSONL event trace as text timelines"
    )
    tr.add_argument("path", help="trace file written by --trace-out")
    tr.add_argument("--width", type=int, default=60,
                    help="timeline width in characters")
    tr.add_argument(
        "--type", dest="types", action="append", metavar="TYPE",
        help="keep only these event types (repeatable; accepts "
             "comma-separated lists, e.g. --type batch.serviced,node.stall)",
    )
    tr.add_argument(
        "--node", dest="nodes", action="append", type=int, metavar="N",
        help="keep only events on node N (repeatable)",
    )
    tr.add_argument(
        "--since", type=float, default=None, metavar="T",
        help="keep only events at simulated time >= T seconds "
             "(events with no sim clock are kept)",
    )
    tr.add_argument(
        "--operator", dest="operators", action="append", metavar="NAME",
        help="keep only events for operator NAME (repeatable)",
    )
    tr.add_argument(
        "--span", type=int, default=None, metavar="ID",
        help="print the causal lineage of span ID (ancestors and "
             "descendants) instead of the timeline report",
    )
    tr.set_defaults(func=cmd_trace)

    runs_parser = sub.add_parser(
        "runs", help="browse the run registry (see `--record`)"
    )
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="tabulate recorded runs")
    runs_list.add_argument("--root", default="runs",
                           help="run registry root (default ./runs)")
    runs_list.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON array (run id, sim time, "
             "seed, fault count) instead of the table",
    )
    runs_list.set_defaults(func=cmd_runs)
    runs_show = runs_sub.add_parser("show", help="describe one run")
    runs_show.add_argument("run", help="run id or run directory path")
    runs_show.add_argument("--root", default="runs",
                           help="run registry root (default ./runs)")
    runs_show.set_defaults(func=cmd_runs)

    cmp_parser = sub.add_parser(
        "compare",
        help="diff two recorded runs; non-zero exit on threshold breach",
    )
    cmp_parser.add_argument("run_a", help="baseline run id or directory")
    cmp_parser.add_argument("run_b", help="candidate run id or directory")
    cmp_parser.add_argument("--root", default="runs",
                            help="run registry root (default ./runs)")
    cmp_parser.add_argument(
        "--threshold", action="append", metavar="NAME=REL",
        help="per-metric relative regression threshold (repeatable; "
             "NAME matches a flattened key or prefix, e.g. "
             "latency.p99=0.1)",
    )
    cmp_parser.add_argument(
        "--default-threshold", type=float, default=0.02, metavar="REL",
        help="relative threshold for metrics without an explicit one "
             "(default 0.02 = ±2%%)",
    )
    cmp_parser.add_argument(
        "--all", action="store_true",
        help="show unchanged metrics too, not just deltas",
    )
    cmp_parser.set_defaults(func=cmd_compare)

    explain = sub.add_parser(
        "explain",
        help="attribute a recorded run's end-to-end latency to "
             "operators and phases (critical-path analysis)",
    )
    explain.add_argument("run", help="run id or run directory path")
    explain.add_argument("--root", default="runs",
                         help="run registry root (default ./runs)")
    explain.add_argument(
        "-k", "--top", type=int, default=5, metavar="K",
        help="show the K most latency-critical operators (default 5)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="print the critical_path snapshot section as JSON",
    )
    explain.set_defaults(func=cmd_explain)

    why = sub.add_parser(
        "why",
        help="explain a recorded run's migrations: the decision behind "
             "each move, rejected alternatives, and no-op periods",
    )
    why.add_argument("run", help="run id or run directory path")
    why.add_argument("--root", default="runs",
                     help="run registry root (default ./runs)")
    why.add_argument(
        "--json", action="store_true",
        help="print the decision audit as JSON",
    )
    why.set_defaults(func=cmd_why)

    slo_parser = sub.add_parser(
        "slo",
        help="judge a recorded run against declarative latency/"
             "throughput objectives; non-zero exit on breach",
    )
    slo_parser.add_argument("run", help="run id or run directory path")
    slo_parser.add_argument(
        "--config", required=True, metavar="FILE",
        help="SLO config JSON (see docs/observability.md)",
    )
    slo_parser.add_argument("--root", default="runs",
                            help="run registry root (default ./runs)")
    slo_parser.set_defaults(func=cmd_slo)

    chk = sub.add_parser(
        "check",
        help="statically verify graphs/plans/configs and lint sources",
    )
    chk.add_argument(
        "--paths", nargs="+", default=["."],
        help="files or directories to check (JSON artifacts and .py files)",
    )
    chk.add_argument(
        "--fail-on", default="error", choices=("info", "warning", "error"),
        help="lowest diagnostic severity that fails the exit code",
    )
    chk.add_argument(
        "--no-lint", action="store_true",
        help="skip the repro-lint pass over .py files",
    )
    chk.add_argument(
        "--flow", dest="flow", action="store_true", default=False,
        help="run the REPRO6xx dataflow determinism/concurrency rules "
             "over .py files (implies the lint pass)",
    )
    chk.add_argument(
        "--no-flow", dest="flow", action="store_false",
        help="skip the dataflow rules (the default for check)",
    )
    chk.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for per-file lint/flow analysis "
             "(0 = all cores)",
    )
    chk.set_defaults(func=cmd_check)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    exp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiments that parallelize "
             "(0 = all cores); results are identical for any value",
    )
    add_record_flags(exp)
    exp.set_defaults(func=cmd_experiment)

    rep = sub.add_parser(
        "report",
        help="render a recorded run as HTML, or (with -o only) run "
             "every experiment into one markdown report",
    )
    rep.add_argument(
        "run", nargs="?", default=None,
        help="run id or directory to render as a self-contained HTML "
             "report (omit for the experiment markdown report)",
    )
    rep.add_argument(
        "-o", "--output",
        help="output file (run mode default: <run>/report.html)",
    )
    rep.add_argument("--root", default="runs",
                     help="run registry root (default ./runs)")
    rep.add_argument("--scale", default="quick", choices=("quick", "full"))
    rep.add_argument("--only", nargs="*", default=(),
                     help="restrict to specific artifact ids")
    rep.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Recorded run manifests carry the invocation for provenance.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    configure(verbosity=args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
