"""``python -m repro`` — the Resilient Operator Distribution CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
