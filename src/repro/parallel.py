"""Deterministic process-pool fan-out for experiment harnesses.

The experiments repeat one embarrassingly-parallel shape over and over:
map a pure task function across a list of seeded work items and collect
the results *in order*.  This module is the one implementation of that
shape, with the properties every caller needs:

* **Determinism** — results are identical for any ``jobs`` value.
  ``jobs=1`` runs the tasks inline (no pool, no pickling) and is the
  reference; ``jobs>1`` fans the same task tuples out to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, and results are
  reassembled in input order.  Task functions must be pure functions of
  their arguments (derive any randomness from seeds in the task tuple —
  :func:`derive_seed` builds per-task seeds that are stable across runs
  and across ``jobs`` values).
* **Batching** — ``chunksize`` groups tasks into one pool submission
  each, so thousands of tiny scoring tasks do not pay per-task pickle
  and IPC overhead; ``chunksize=None`` derives a chunk size from the
  task count and pool size.  Results, their order, and the per-task
  statistics are identical for every ``(jobs, chunksize)`` combination.
* **Resilience** — chunks are submitted individually, so results that
  completed before a worker crash survive it.  A
  :class:`~concurrent.futures.process.BrokenProcessPool` triggers up to
  ``pool_retries`` fresh pools for the unfinished tasks (optionally
  re-parameterized through ``reseed`` with a :func:`derive_seed`-derived
  seed); if the pool keeps breaking, the survivors run inline as a last
  resort.  A per-task ``timeout`` bounds how long one result may take.
* **Observability** — every call counts its tasks, failures, timeouts,
  and pool retries; the counters are recorded *even when a task raises*.
  :func:`publish_metrics` exports them into a metrics registry, and
  callers may pass their own ``registry`` to :func:`parallel_map` to
  record per-run counts.

Workers are separate processes: task functions and arguments must be
picklable (module-level functions, plain data / NumPy arrays).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .obs.metrics import MetricsRegistry

__all__ = [
    "resolve_jobs",
    "auto_chunksize",
    "derive_seed",
    "derive_seeds",
    "parallel_map",
    "parallel_stats",
    "publish_metrics",
]

T = TypeVar("T")
R = TypeVar("R")

_LOCK = threading.Lock()
_STATS = {
    "inline": 0,
    "process": 0,
    "pools": 0,
    "failures_inline": 0,
    "failures_process": 0,
    "pool_retries": 0,
    "timeouts": 0,
}

#: Mixing constant for seed derivation (splitmix64's golden-ratio step).
_SEED_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

#: Auto-chunking targets this many chunks per worker, so pools stay
#: load-balanced (stragglers can be overtaken) without paying per-task
#: submission overhead.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def derive_seed(base_seed: int, index: int) -> int:
    """A per-task seed, deterministic in ``(base_seed, index)``.

    Uses a splitmix64 finalizer so neighbouring indices land far apart —
    unlike ``base_seed + index``, two tasks of different runs can never
    collide just because their bases are close.
    """
    z = (base_seed * _SEED_MIX + index + 1) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` per-task seeds derived from one base seed."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return [derive_seed(base_seed, index) for index in range(count)]


def auto_chunksize(task_count: int, workers: int) -> int:
    """Chunk size targeting ``_CHUNKS_PER_WORKER`` chunks per worker.

    Small batches stay at chunk size 1 (per-task submission, maximum
    salvageability); thousands of tiny tasks get grouped so the pool
    round-trip cost (pickle + IPC + future bookkeeping) is paid once
    per chunk rather than once per task.
    """
    if task_count < 1 or workers < 1:
        return 1
    return max(1, -(-task_count // (workers * _CHUNKS_PER_WORKER)))


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    timeout: Optional[float] = None,
    pool_retries: int = 1,
    reseed: Optional[Callable[[T, int], T]] = None,
) -> List[R]:
    """Map ``fn`` over ``tasks``, results in input order.

    ``jobs=1`` executes inline; ``jobs>1`` uses a process pool with at
    most ``min(jobs, len(tasks))`` workers.  The output list is identical
    for every ``jobs`` and ``chunksize`` value as long as ``fn`` is a
    pure function of its task.

    ``chunksize`` groups tasks into one pool submission each
    (``None`` — the default — derives :func:`auto_chunksize` from the
    task count and pool size), amortizing per-task pickle and IPC
    overhead for large batches of small tasks.  Statistics stay
    per-task and results stay ordered regardless of chunking.

    ``timeout`` bounds, in seconds, how long any single chunk's results
    may take past the point they are awaited (process mode only);
    exceeding it kills the pool and raises :class:`TimeoutError`.  When
    a worker process dies (:class:`BrokenProcessPool`),
    already-completed results are kept and the unfinished tasks are
    retried in up to ``pool_retries`` fresh pools; ``reseed(task,
    seed)``, when given, builds the retry variant of each unfinished
    task from a :func:`derive_seed`-derived seed (stable in attempt
    number and task index).  If every pool breaks, the survivors run
    inline so one bad worker cannot lose the whole batch.

    Task, failure, timeout, and retry counters are recorded in the
    module statistics (and ``registry`` when given) even when this call
    raises.
    """
    jobs = resolve_jobs(jobs)
    if chunksize is not None and chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be > 0")
    if pool_retries < 0:
        raise ValueError("pool_retries must be >= 0")
    tasks = list(tasks)
    counts = dict.fromkeys(_STATS, 0)
    mode = "inline" if jobs == 1 or len(tasks) <= 1 else "process"
    try:
        if mode == "inline":
            results = _run_inline(fn, list(enumerate(tasks)), counts)
        else:
            workers = min(jobs, len(tasks))
            effective = (
                auto_chunksize(len(tasks), workers)
                if chunksize is None else chunksize
            )
            results = _run_pool(
                fn, tasks, workers, timeout,
                pool_retries, reseed, effective, counts,
            )
    finally:
        _record(counts, registry)
    return [results[index] for index in range(len(tasks))]


def _run_inline(
    fn: Callable[[T], R],
    indexed_tasks: Sequence[Tuple[int, T]],
    counts: Dict[str, int],
) -> Dict[int, R]:
    results: Dict[int, R] = {}
    for index, task in indexed_tasks:
        counts["inline"] += 1
        try:
            results[index] = fn(task)
        except BaseException:
            counts["failures_inline"] += 1
            raise
    return results


def _chunk_worker(
    fn: Callable[[T], R], tasks: Sequence[T]
) -> Tuple[str, List[R], Optional[BaseException]]:
    """Run one chunk inside a worker process, one task at a time.

    Returns ``("ok", results, None)`` or — when a task raises —
    ``("err", results-so-far, exception)``, so the parent can keep
    per-task statistics exact and re-raise the original exception.
    """
    results: List[R] = []
    for task in tasks:
        try:
            results.append(fn(task))
        except BaseException as exc:
            return ("err", results, exc)
    return ("ok", results, None)


def _run_pool(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: int,
    timeout: Optional[float],
    pool_retries: int,
    reseed: Optional[Callable[[T, int], T]],
    chunksize: int,
    counts: Dict[str, int],
) -> Dict[int, R]:
    results: Dict[int, R] = {}
    pending: List[Tuple[int, T]] = list(enumerate(tasks))
    for attempt in range(pool_retries + 1):
        got, pending = _run_one_pool(
            fn, pending, workers, timeout, chunksize, counts
        )
        results.update(got)
        if not pending:
            return results
        if attempt < pool_retries:
            counts["pool_retries"] += 1
            if reseed is not None:
                pending = [
                    (index, reseed(task, derive_seed(attempt + 1, index)))
                    for index, task in pending
                ]
    # Every pool broke: run the survivors inline as the last resort.
    results.update(_run_inline(fn, pending, counts))
    return results


_Chunk = List[Tuple[int, T]]


def _run_one_pool(
    fn: Callable[[T], R],
    pending: Sequence[Tuple[int, T]],
    workers: int,
    timeout: Optional[float],
    chunksize: int,
    counts: Dict[str, int],
) -> Tuple[Dict[int, R], List[Tuple[int, T]]]:
    """One pool attempt: ``(results by index, tasks left unfinished)``."""
    chunks: List[_Chunk] = [
        list(pending[start:start + chunksize])
        for start in range(0, len(pending), chunksize)
    ]
    pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
        max_workers=min(workers, len(chunks))
    )
    counts["pools"] += 1
    futures = [
        (chunk, pool.submit(_chunk_worker, fn, [t for _, t in chunk]))
        for chunk in chunks
    ]
    results: Dict[int, R] = {}
    try:
        for chunk, future in futures:
            try:
                status, values, error = future.result(timeout=timeout)
            except BrokenProcessPool:
                return results, _harvest(futures, results, counts)
            except _FuturesTimeout:
                counts["timeouts"] += 1
                counts["failures_process"] += 1
                _abort_pool(pool, futures)
                pool = None
                raise TimeoutError(
                    f"parallel task {chunk[0][0]} did not finish "
                    f"within {timeout}s"
                ) from None
            for (index, _task), value in zip(chunk, values):
                results[index] = value
            counts["process"] += len(values)
            if status == "err":
                # The task after the completed prefix raised.
                counts["process"] += 1
                counts["failures_process"] += 1
                _abort_pool(pool, futures)
                pool = None
                assert error is not None
                raise error
        return results, []
    finally:
        if pool is not None:
            pool.shutdown(wait=True)


def _harvest(
    futures: Sequence[Tuple[_Chunk, "Future"]],
    results: Dict[int, R],
    counts: Dict[str, int],
) -> List[Tuple[int, T]]:
    """Salvage chunks that finished cleanly before the pool broke."""
    unfinished: List[Tuple[int, T]] = []
    for chunk, future in futures:
        if chunk and chunk[0][0] in results:
            continue  # already consumed by the await loop
        if (
            future.done()
            and not future.cancelled()
            and future.exception() is None
        ):
            _status, values, _error = future.result()
            for (index, _task), value in zip(chunk, values):
                results[index] = value
            counts["process"] += len(values)
            # A raising task and its unexecuted successors retry; on a
            # deterministic raise the retry pool re-raises it cleanly.
            unfinished.extend(chunk[len(values):])
        else:
            unfinished.extend(chunk)
    return unfinished


def _abort_pool(
    pool: ProcessPoolExecutor,
    futures: Sequence[Tuple[_Chunk, "Future"]],
) -> None:
    """Tear the pool down without waiting for in-flight work.

    ``shutdown(wait=True)`` would block on a stuck or long task — the
    exact situation a timeout exists to escape — so queued futures are
    cancelled and live workers killed before the non-blocking shutdown.
    """
    for _chunk, future in futures:
        future.cancel()
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
    pool.shutdown(wait=False)


def _record(
    counts: Dict[str, int], registry: Optional[MetricsRegistry]
) -> None:
    with _LOCK:
        for key, value in counts.items():
            _STATS[key] += value
    if registry is None:
        return
    tasks_family = registry.counter(
        "repro_parallel_tasks",
        "tasks executed through repro.parallel",
        labelnames=("mode",),
    )
    failures_family = registry.counter(
        "repro_parallel_failures",
        "tasks that raised or timed out in repro.parallel",
        labelnames=("mode",),
    )
    for mode in ("inline", "process"):
        if counts[mode]:
            tasks_family.labels(mode=mode).inc(counts[mode])
        if counts[f"failures_{mode}"]:
            failures_family.labels(mode=mode).inc(
                counts[f"failures_{mode}"]
            )


def parallel_stats() -> dict:
    """Process-wide counters (tasks by mode, pools, failures, retries)."""
    with _LOCK:
        return dict(_STATS)


def publish_metrics(registry: MetricsRegistry) -> None:
    """Export the process-wide counters into ``registry`` (snapshot)."""
    stats = parallel_stats()
    tasks_family = registry.counter(
        "repro_parallel_tasks",
        "tasks executed through repro.parallel",
        labelnames=("mode",),
    )
    failures_family = registry.counter(
        "repro_parallel_failures",
        "tasks that raised or timed out in repro.parallel",
        labelnames=("mode",),
    )
    for mode in ("inline", "process"):
        tasks_family.labels(mode=mode).inc(stats[mode])
        failures_family.labels(mode=mode).inc(stats[f"failures_{mode}"])
    registry.counter(
        "repro_parallel_pools",
        "process pools spun up by repro.parallel",
    ).inc(stats["pools"])
    registry.counter(
        "repro_parallel_pool_retries",
        "fresh pools spun up after a BrokenProcessPool",
    ).inc(stats["pool_retries"])
