"""Deterministic process-pool fan-out for experiment harnesses.

The experiments repeat one embarrassingly-parallel shape over and over:
map a pure task function across a list of seeded work items and collect
the results *in order*.  This module is the one implementation of that
shape, with the two properties every caller needs:

* **Determinism** — results are identical for any ``jobs`` value.
  ``jobs=1`` runs the tasks inline (no pool, no pickling) and is the
  reference; ``jobs>1`` fans the same task tuples out to a
  :class:`~concurrent.futures.ProcessPoolExecutor` whose ``map``
  preserves input order.  Task functions must be pure functions of their
  arguments (derive any randomness from seeds in the task tuple —
  :func:`derive_seed` builds per-task seeds that are stable across runs
  and across ``jobs`` values).
* **Observability** — every call counts its tasks; :func:`publish_metrics`
  exports ``repro_parallel_tasks`` (labelled by execution mode) into a
  metrics registry, and callers may pass their own ``registry`` to
  :func:`parallel_map` to record per-run counts.

Workers are separate processes: task functions and arguments must be
picklable (module-level functions, plain data / NumPy arrays).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .obs.metrics import MetricsRegistry

__all__ = [
    "resolve_jobs",
    "derive_seed",
    "derive_seeds",
    "parallel_map",
    "parallel_stats",
    "publish_metrics",
]

T = TypeVar("T")
R = TypeVar("R")

_LOCK = threading.Lock()
_STATS = {"inline": 0, "process": 0, "pools": 0}

#: Mixing constant for seed derivation (splitmix64's golden-ratio step).
_SEED_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def derive_seed(base_seed: int, index: int) -> int:
    """A per-task seed, deterministic in ``(base_seed, index)``.

    Uses a splitmix64 finalizer so neighbouring indices land far apart —
    unlike ``base_seed + index``, two tasks of different runs can never
    collide just because their bases are close.
    """
    z = (base_seed * _SEED_MIX + index + 1) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` per-task seeds derived from one base seed."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return [derive_seed(base_seed, index) for index in range(count)]


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    chunksize: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> List[R]:
    """Map ``fn`` over ``tasks``, results in input order.

    ``jobs=1`` executes inline; ``jobs>1`` uses a process pool with at
    most ``min(jobs, len(tasks))`` workers.  The output list is identical
    for every ``jobs`` value as long as ``fn`` is a pure function of its
    task.
    """
    jobs = resolve_jobs(jobs)
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    tasks = list(tasks)
    mode = "inline" if jobs == 1 or len(tasks) <= 1 else "process"
    if mode == "inline":
        results = [fn(task) for task in tasks]
    else:
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(fn, tasks, chunksize=chunksize))
    with _LOCK:
        _STATS[mode] += len(tasks)
        if mode == "process":
            _STATS["pools"] += 1
    if registry is not None:
        registry.counter(
            "repro_parallel_tasks",
            "tasks executed through repro.parallel",
            labelnames=("mode",),
        ).labels(mode=mode).inc(len(tasks))
    return results


def parallel_stats() -> dict:
    """Process-wide task counters (tasks by mode, pools spun up)."""
    with _LOCK:
        return dict(_STATS)


def publish_metrics(registry: MetricsRegistry) -> None:
    """Export the process-wide counters into ``registry`` (snapshot)."""
    stats = parallel_stats()
    family = registry.counter(
        "repro_parallel_tasks",
        "tasks executed through repro.parallel",
        labelnames=("mode",),
    )
    for mode in ("inline", "process"):
        family.labels(mode=mode).inc(stats[mode])
    registry.counter(
        "repro_parallel_pools",
        "process pools spun up by repro.parallel",
    ).inc(stats["pools"])
