"""Hierarchical cluster-then-place-then-refine for large clusters.

Flat annealing scores every candidate move against all ``n`` nodes; at
1000 nodes the state alone (per-node dot columns over thousands of
samples) stops fitting the cache and the search budget spreads so thin
that few moves per node are ever tried.  The hierarchical placer
decomposes the solve the way the paper's Section 6.3 clustering
extension decomposes communication: solve a *small* problem exactly
where structure matters, and recurse.

1. **Group the nodes.**  Nodes are sorted by capacity and dealt
   round-robin into ``ceil(n / group_size)`` groups, so group capacities
   stay balanced and every group holds a mix of big and small nodes.
2. **Cluster the operators** with
   :func:`repro.core.clustering.cluster_by_affinity` — connected,
   correlation-complementary units small enough to balance (the same
   weight-cap rule as Section 6.3's contraction).
3. **Place clusters onto groups** by running ROD on the
   :class:`~repro.core.clustering.ClusteredModel` against one super-node
   per group (capacity = group total).  This is a
   ``num_clusters x num_groups`` problem — tiny — and ROD's Class I
   reasoning applies unchanged because the super-node weight rows are
   sums of member rows.
4. **Refine inside each group** with the incremental
   :class:`~repro.placement.annealing.AnnealingPlacer` on the group's
   operators and nodes only.  Each refinement scores against the
   *cluster-wide* capacity normalization (``total_capacity`` override),
   so a group never trades global feasibility for local gain.  Groups
   are independent subproblems; ``jobs > 1`` fans them out through
   :func:`repro.parallel.parallel_map`.

The result is a placement whose cost scales with
``num_groups * (group_size solve)`` instead of one monolithic
``n``-node search — the difference between hours and seconds at 1000
nodes — while the within-group searches still run the bit-exact
incremental kernel.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.clustering import ClusteredModel, cluster_by_affinity
from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..core.volume import qmc
from .. import parallel as _parallel
from .annealing import AnnealingPlacer
from .base import Placer

__all__ = ["HierarchicalPlacer", "RestrictedModel"]


class RestrictedModel:
    """A load model restricted to a subset of the base model's operators.

    Duck-types what :func:`~repro.core.rod.rod_place` and
    :class:`~repro.core.plans.Placement` need, with one crucial
    property: :meth:`column_totals` returns the **base model's global
    totals**, so weight matrices computed for the restriction are the
    global rows ``w_ik = (l^n_ik / l_k) / (C_i / C_T)`` — comparable
    across groups — rather than totals renormalized to the subset.
    """

    def __init__(self, base: LoadModel, operator_indices: Sequence[int]) -> None:
        indices = tuple(int(j) for j in operator_indices)
        if len(set(indices)) != len(indices):
            raise ValueError("operator indices must be unique")
        for j in indices:
            if not 0 <= j < base.num_operators:
                raise IndexError(f"operator index {j} out of range")
        self.base = base
        self.indices = indices
        self.operator_names = tuple(base.operator_names[j] for j in indices)
        self.coefficients = base.coefficients[list(indices)]
        self.graph = base.graph
        self._index = {name: i for i, name in enumerate(self.operator_names)}

    @property
    def num_variables(self) -> int:
        return self.base.num_variables

    @property
    def num_operators(self) -> int:
        return len(self.indices)

    def column_totals(self) -> np.ndarray:
        return self.base.column_totals()

    def operator_norms(self) -> np.ndarray:
        return np.linalg.norm(self.coefficients, axis=1)

    def operator_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown operator: {name!r}") from None


def _refine_group_task(
    task: Tuple[LoadModel, Tuple[int, ...], Tuple[float, ...], float,
                int, int, int, int, Tuple[int, ...], np.ndarray],
) -> Tuple[int, ...]:
    """Refine one node group (picklable pool task).

    Returns the group-local node index of every group operator, in
    ``operator_indices`` order.  ``sample_mask`` marks the samples
    feasible *outside* this group under the warm-start assignment, so
    the refinement maximizes the globally feasible count, not the
    group-local one.
    """
    (model, operator_indices, node_capacities, total_capacity,
     iterations, samples, score_batch, seed, initial_local,
     sample_mask) = task
    placer = AnnealingPlacer(
        iterations=iterations,
        samples=samples,
        seed=seed,
        score_batch=score_batch,
        total_capacity=total_capacity,
        initial_assignment=initial_local,
        sample_mask=sample_mask,
    )
    sub = RestrictedModel(model, operator_indices)
    return tuple(placer.place(sub, node_capacities).assignment)


class HierarchicalPlacer(Placer):
    """Cluster-then-place-then-refine placement for large clusters."""

    name = "hierarchical"

    def __init__(
        self,
        group_size: int = 16,
        max_clusters: Optional[int] = None,
        max_weight_multiplier: float = 1.0,
        refine_iterations: int = 600,
        samples: int = 512,
        seed: Optional[int] = None,
        score_batch: int = 1,
        jobs: int = 1,
    ) -> None:
        """``group_size`` bounds each refinement subproblem's node
        count.  ``max_clusters`` bounds the cluster-level solve's unit
        count; the default ``None`` keeps every operator its own unit
        (lossless — coarser clusters make the decomposition cheaper but
        measurably cost volume, see ``docs/performance.md``).
        ``max_weight_multiplier`` scales the cluster weight cap
        (multiples of the smallest group's capacity share);
        ``refine_iterations`` / ``samples`` / ``score_batch``
        parameterize each group's annealing refinement; ``jobs > 1``
        refines groups in parallel worker processes."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if max_clusters is not None and max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
        if max_weight_multiplier <= 0:
            raise ValueError("max_weight_multiplier must be > 0")
        if refine_iterations < 1:
            raise ValueError("refine_iterations must be >= 1")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if score_batch < 1:
            raise ValueError("score_batch must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.group_size = group_size
        self.max_clusters = max_clusters
        self.max_weight_multiplier = max_weight_multiplier
        self.refine_iterations = refine_iterations
        self.samples = samples
        self.seed = seed
        self.score_batch = score_batch
        self.jobs = jobs

    # ------------------------------------------------------------ phases

    def node_groups(self, capacities: np.ndarray) -> List[List[int]]:
        """Snake-dealt node groups, balanced by capacity.

        Nodes are dealt largest-capacity-first across
        ``ceil(n / group_size)`` groups in boustrophedon order (left to
        right, then right to left), so a group that drew a large node
        in one pass draws a small one in the next — group capacities
        stay balanced and every group ends up with at most
        ``group_size`` nodes.
        """
        n = capacities.shape[0]
        num_groups = max(1, -(-n // self.group_size))
        order = sorted(range(n), key=lambda i: (-capacities[i], i))
        groups: List[List[int]] = [[] for _ in range(num_groups)]
        for rank, node in enumerate(order):
            lap, offset = divmod(rank, num_groups)
            if lap % 2:
                offset = num_groups - 1 - offset
            groups[offset].append(node)
        return groups

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        groups = self.node_groups(caps)
        if len(groups) == 1:
            # Small cluster: the flat incremental search is already fast.
            return AnnealingPlacer(
                iterations=self.refine_iterations,
                samples=self.samples,
                seed=self.seed,
                score_batch=self.score_batch,
                jobs=self.jobs,
            ).place(model, caps)

        total_capacity = float(caps.sum())
        group_caps = np.array([float(caps[g].sum()) for g in groups])
        node_group = [0] * caps.shape[0]
        for group_index, nodes in enumerate(groups):
            for node in nodes:
                node_group[node] = group_index

        # Phase 2-3: cluster the operators, place clusters onto node
        # groups.  The cluster-level ROD runs at *node* granularity and
        # only its group projection is kept: the per-node detail is
        # thrown away (refinement redoes it at operator granularity),
        # but the greedy needs it — balancing group aggregates alone
        # yields group compositions no within-group placement can
        # balance (see docs/performance.md for the measurements).
        max_clusters = model.num_operators
        if self.max_clusters is not None:
            max_clusters = min(max_clusters, self.max_clusters)
        operator_granular = max_clusters >= model.num_operators
        if operator_granular:
            # Every operator is its own unit, so the cluster-level solve
            # *is* a full-model ROD and its node assignment doubles as
            # the warm start — no clustering pass, no per-group re-ROD.
            cluster_plan = rod_place(model, caps)
            assignment = list(cluster_plan.assignment)
            operator_group = [node_group[node] for node in assignment]
        else:
            weight_cap = (
                self.max_weight_multiplier
                * float(group_caps.min())
                / total_capacity
            )
            clustering = cluster_by_affinity(
                model, max_clusters, max_weight=weight_cap
            )
            clustered = ClusteredModel(model, clustering)
            cluster_plan = rod_place(clustered, caps)
            operator_group = [0] * model.num_operators
            for cluster_index, node in enumerate(cluster_plan.assignment):
                for name in clustering.groups[cluster_index]:
                    operator_group[model.operator_index(name)] = (
                        node_group[node]
                    )

        group_ops: List[Tuple[int, ...]] = []
        for group_index in range(len(groups)):
            group_ops.append(tuple(
                j for j in range(model.num_operators)
                if operator_group[j] == group_index
            ))
        if not operator_granular:
            # Phase 4a: warm start — coarse clusters stack their members
            # on one node, so ROD inside each group re-spreads them at
            # operator granularity before refinement.
            assignment = [0] * model.num_operators
            for group_index, nodes in enumerate(groups):
                ops = group_ops[group_index]
                if not ops:
                    continue
                sub = RestrictedModel(model, ops)
                node_caps = tuple(float(caps[i]) for i in nodes)
                local = rod_place(sub, node_caps).assignment
                for j, local_node in zip(ops, local):
                    assignment[j] = nodes[local_node]

        # Phase 4b: per-group conditioning masks.  A sample only counts
        # toward group g's objective if every node *outside* g already
        # fits it under the warm start — so each refinement climbs the
        # global feasible count, holding the other groups fixed.
        masks = self._group_masks(model, caps, total_capacity,
                                  groups, assignment)

        # Phase 4c: refine each group's operators on its own nodes.
        base_seed = self.seed if self.seed is not None else 0
        tasks = []
        task_groups: List[Tuple[int, Tuple[int, ...]]] = []
        for group_index, nodes in enumerate(groups):
            ops = group_ops[group_index]
            if len(ops) < 2 or len(nodes) < 2:
                continue
            if not masks[group_index].any():
                # No sample is feasible outside this group: refinement
                # cannot move the global count, skip the search.
                continue
            node_index = {node: local for local, node in enumerate(nodes)}
            initial_local = tuple(node_index[assignment[j]] for j in ops)
            tasks.append((
                model, ops, tuple(float(caps[i]) for i in nodes),
                total_capacity, self.refine_iterations, self.samples,
                self.score_batch,
                _parallel.derive_seed(base_seed, group_index),
                initial_local, masks[group_index],
            ))
            task_groups.append((group_index, ops))
        locals_per_group = _parallel.parallel_map(
            _refine_group_task, tasks, jobs=self.jobs
        )

        for (group_index, ops), local in zip(task_groups, locals_per_group):
            nodes = groups[group_index]
            for j, local_node in zip(ops, local):
                assignment[j] = nodes[local_node]
        return Placement(
            model=model, capacities=caps, assignment=tuple(assignment)
        )

    def _group_masks(
        self,
        model: LoadModel,
        caps: np.ndarray,
        total_capacity: float,
        groups: List[List[int]],
        assignment: List[int],
    ) -> List[np.ndarray]:
        """Per-group bool masks over the shared refinement sample cloud.

        ``masks[g][s]`` is true when sample ``s`` is feasible on every
        node not in group ``g`` under ``assignment``.  Uses the same
        Halton stream the group refinements score against (one cached
        generation), and the same threshold arithmetic as the annealing
        kernel.
        """
        totals = model.column_totals()
        safe_totals = np.where(totals > 1e-12, totals, 1.0)
        points = qmc.sample_unit_simplex(
            self.samples, model.num_variables, method="halton"
        )
        op_share = model.coefficients / safe_totals
        op_share[:, totals <= 1e-12] = 0.0
        op_dots = points @ op_share.T
        n = caps.shape[0]
        node_dots = np.zeros((self.samples, n))
        np.add.at(
            node_dots.T,
            np.fromiter(assignment, dtype=np.intp, count=len(assignment)),
            op_dots.T,
        )
        thresholds = (1.0 + 1e-12) * caps / total_capacity
        violations = node_dots > thresholds
        total_violations = violations.sum(axis=1)
        masks = []
        for nodes in groups:
            inside = violations[:, nodes].sum(axis=1)
            masks.append(total_violations - inside == 0)
        return masks
