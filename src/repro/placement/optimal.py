"""Exhaustive optimal placement for small instances (Section 7.3.1).

The paper compares ROD against the true volume-maximizing plan "on small
query graphs ... on two nodes", reporting a mean ROD/optimal ratio of 0.95
and a minimum of 0.82.  This placer enumerates every assignment (with a
symmetry reduction for identical nodes) and scores each by exact polytope
volume — or, when the exact computation would be too slow, by QMC ratio
with shared sample points.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core import geometry
from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.volume import polytope, qmc
from .base import Placer

__all__ = ["OptimalPlacer", "enumerate_assignments"]

# Enumerating n^m assignments explodes quickly; refuse clearly above this.
MAX_OPERATORS = 18


def enumerate_assignments(
    num_operators: int, num_nodes: int, homogeneous: bool
) -> Iterator[Tuple[int, ...]]:
    """All operator→node assignments, up to node relabelling if homogeneous.

    For identical nodes the first operator is pinned to node 0 and each
    subsequent operator may only use node indices at most one above the
    highest index used so far — the canonical enumeration of set
    partitions into at most ``num_nodes`` blocks (restricted growth
    strings), which visits each distinct plan exactly once.
    """
    if num_operators < 1:
        raise ValueError("need at least one operator")
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if not homogeneous:
        yield from itertools.product(range(num_nodes), repeat=num_operators)
        return

    def grow(prefix: Tuple[int, ...], max_used: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == num_operators:
            yield prefix
            return
        limit = min(max_used + 1, num_nodes - 1)
        for node in range(limit + 1):
            yield from grow(prefix + (node,), max(max_used, node))

    yield from grow((0,), 0)


class OptimalPlacer(Placer):
    """Brute-force feasible-set-volume maximization."""

    name = "optimal"

    def __init__(
        self,
        objective: str = "exact",
        samples: int = 2048,
        seed: Optional[int] = None,
        max_operators: int = MAX_OPERATORS,
    ) -> None:
        """``objective`` is ``"exact"`` (polytope volume) or ``"qmc"``."""
        if objective not in ("exact", "qmc"):
            raise ValueError(f"unknown objective: {objective!r}")
        self.objective = objective
        self.samples = samples
        self.seed = seed
        self.max_operators = max_operators

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        m = model.num_operators
        if m > self.max_operators:
            raise ValueError(
                f"refusing exhaustive search over {caps.shape[0]}^{m} plans; "
                f"the optimal placer is limited to {self.max_operators} "
                "operators"
            )
        homogeneous = bool(np.all(caps == caps[0]))
        totals = model.column_totals()
        capacity_share = caps / caps.sum()

        points = None
        if self.objective == "qmc":
            points = qmc.sample_unit_simplex(
                self.samples, model.num_variables, method="halton"
            )

        best_assignment: Optional[Tuple[int, ...]] = None
        best_score = -np.inf
        for assignment in enumerate_assignments(
            m, caps.shape[0], homogeneous
        ):
            ln = np.zeros((caps.shape[0], model.num_variables))
            for j, node in enumerate(assignment):
                ln[node] += model.coefficients[j]
            score = self._score(ln, caps, totals, capacity_share, points)
            if score > best_score:
                best_score = score
                best_assignment = assignment
        assert best_assignment is not None
        return Placement(
            model=model, capacities=caps, assignment=best_assignment
        )

    def _score(
        self,
        node_coeffs: np.ndarray,
        caps: np.ndarray,
        totals: np.ndarray,
        capacity_share: np.ndarray,
        points: Optional[np.ndarray],
    ) -> float:
        if self.objective == "exact":
            try:
                return polytope.polytope_volume(node_coeffs, caps)
            except ValueError:
                # Unbounded: some variable unloaded on every node can only
                # happen for models with zero-coefficient variables; treat
                # as maximal (constraint-free direction).
                return np.inf
        weights = geometry.weight_matrix(node_coeffs, caps, totals)
        assert points is not None
        feasible = np.all(points @ weights.T <= 1.0 + 1e-12, axis=1)
        return float(np.mean(feasible))
