"""Exhaustive optimal placement for small instances (Section 7.3.1).

The paper compares ROD against the true volume-maximizing plan "on small
query graphs ... on two nodes", reporting a mean ROD/optimal ratio of 0.95
and a minimum of 0.82.  This placer enumerates every assignment (with a
symmetry reduction for identical nodes) and scores each by exact polytope
volume — or, when the exact computation would be too slow, by QMC ratio
with shared sample points.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.volume import polytope, qmc
from .base import Placer

__all__ = ["OptimalPlacer", "enumerate_assignments"]

# Enumerating n^m assignments explodes quickly; refuse clearly above this.
MAX_OPERATORS = 18


def enumerate_assignments(
    num_operators: int, num_nodes: int, homogeneous: bool
) -> Iterator[Tuple[int, ...]]:
    """All operator→node assignments, up to node relabelling if homogeneous.

    For identical nodes the first operator is pinned to node 0 and each
    subsequent operator may only use node indices at most one above the
    highest index used so far — the canonical enumeration of set
    partitions into at most ``num_nodes`` blocks (restricted growth
    strings), which visits each distinct plan exactly once.
    """
    if num_operators < 1:
        raise ValueError("need at least one operator")
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if not homogeneous:
        yield from itertools.product(range(num_nodes), repeat=num_operators)
        return

    def grow(prefix: Tuple[int, ...], max_used: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == num_operators:
            yield prefix
            return
        limit = min(max_used + 1, num_nodes - 1)
        for node in range(limit + 1):
            yield from grow(prefix + (node,), max(max_used, node))

    yield from grow((0,), 0)


class OptimalPlacer(Placer):
    """Brute-force feasible-set-volume maximization."""

    name = "optimal"

    def __init__(
        self,
        objective: str = "exact",
        samples: int = 2048,
        seed: Optional[int] = None,
        max_operators: int = MAX_OPERATORS,
    ) -> None:
        """``objective`` is ``"exact"`` (polytope volume) or ``"qmc"``."""
        if objective not in ("exact", "qmc"):
            raise ValueError(f"unknown objective: {objective!r}")
        self.objective = objective
        self.samples = samples
        self.seed = seed
        self.max_operators = max_operators

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        m = model.num_operators
        if m > self.max_operators:
            raise ValueError(
                f"refusing exhaustive search over {caps.shape[0]}^{m} plans; "
                f"the optimal placer is limited to {self.max_operators} "
                "operators"
            )
        homogeneous = bool(np.all(caps == caps[0]))

        if self.objective == "qmc":
            assignment = self._search_qmc(model, caps, homogeneous)
        else:
            assignment = self._search_exact(model, caps, homogeneous)
        return Placement(
            model=model, capacities=caps, assignment=assignment
        )

    def _search_exact(
        self, model: LoadModel, caps: np.ndarray, homogeneous: bool
    ) -> Tuple[int, ...]:
        """Enumerate plans scoring each by exact polytope volume.

        Consecutive assignments share a prefix, so ``L^n`` is patched
        from per-depth prefix snapshots rather than rebuilt dense from
        zeros for every candidate.  Each snapshot extends the previous
        one by a single ascending-index row add — exactly the arithmetic
        of a from-scratch accumulation, so scores are bit-identical to
        the naive rebuild.
        """
        m = model.num_operators
        n = caps.shape[0]
        best_assignment: Optional[Tuple[int, ...]] = None
        best_score = -np.inf
        # prefix[j] is L^n with operators 0..j-1 placed.
        prefix = [np.zeros((n, model.num_variables))]
        previous: Optional[Tuple[int, ...]] = None
        for assignment in enumerate_assignments(m, n, homogeneous):
            if previous is None:
                shared = 0
            else:
                shared = m
                for j in range(m):
                    if assignment[j] != previous[j]:
                        shared = j
                        break
            del prefix[shared + 1:]
            for j in range(shared, m):
                ln = prefix[-1].copy()
                ln[assignment[j]] += model.coefficients[j]
                prefix.append(ln)
            ln = prefix[-1]
            previous = assignment
            try:
                score = polytope.polytope_volume(ln, caps)
            except ValueError:
                # Unbounded: some variable unloaded on every node can only
                # happen for models with zero-coefficient variables; treat
                # as maximal (constraint-free direction).
                score = np.inf
            if score > best_score:
                best_score = score
                best_assignment = assignment
        assert best_assignment is not None
        return best_assignment

    def _search_qmc(
        self, model: LoadModel, caps: np.ndarray, homogeneous: bool
    ) -> Tuple[int, ...]:
        """Enumerate plans scoring each by QMC volume, incrementally.

        Same trick as the annealing placer: per-operator sample dots
        ``x . (L^o_j / l)`` are assignment-independent, so they are
        computed once (one matmul) and each candidate's per-node dot
        columns are patched from the previous candidate's — consecutive
        restricted-growth strings share a prefix, so the amortized patch
        cost is a handful of ``O(samples)`` column updates instead of an
        ``O(samples * n * d)`` rescoring matmul per plan.
        """
        m = model.num_operators
        n = caps.shape[0]
        totals = model.column_totals()
        safe_totals = np.where(totals > 1e-12, totals, 1.0)
        capacity_share = caps / caps.sum()
        points = qmc.sample_unit_simplex(
            self.samples, model.num_variables, method="halton"
        )
        op_share = model.coefficients / safe_totals
        op_share[:, totals <= 1e-12] = 0.0
        op_dots = np.asfortranarray(points @ op_share.T)
        thresholds = (1.0 + 1e-12) * capacity_share

        node_dots = np.zeros((self.samples, n), order="F")
        previous: Optional[Tuple[int, ...]] = None
        best_assignment: Optional[Tuple[int, ...]] = None
        best_score = -np.inf
        for assignment in enumerate_assignments(m, n, homogeneous):
            if previous is None:
                changed = 0
            else:
                changed = m
                for j in range(m):
                    if assignment[j] != previous[j]:
                        changed = j
                        break
                for j in range(changed, m):
                    node_dots[:, previous[j]] -= op_dots[:, j]
            for j in range(changed, m):
                node_dots[:, assignment[j]] += op_dots[:, j]
            feasible = np.all(node_dots <= thresholds, axis=1)
            score = float(np.count_nonzero(feasible)) / self.samples
            if score > best_score:
                best_score = score
                best_assignment = assignment
            previous = assignment
        assert best_assignment is not None
        return best_assignment
