"""Random placement baseline (Section 7.2).

Shuffles the operators and deals them out so every node receives an equal
number (±1), mirroring the paper's "random placement while maintaining an
equal number of operators on each node".
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.load_model import LoadModel
from ..core.plans import Placement
from .base import Placer

__all__ = ["RandomPlacer"]


class RandomPlacer(Placer):
    """Uniformly random, count-balanced placement."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        n = caps.shape[0]
        order = list(range(model.num_operators))
        self._rng.shuffle(order)
        assignment = [0] * model.num_operators
        for position, op_index in enumerate(order):
            assignment[op_index] = position % n
        return Placement(
            model=model, capacities=caps, assignment=tuple(assignment)
        )
