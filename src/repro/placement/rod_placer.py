"""Placer adapter around the ROD algorithm.

Lets the experiment harness treat ROD uniformly with the baselines of
Section 7.2.  ROD needs neither a rate point nor a rate history.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from .base import Placer

__all__ = ["RODPlacer"]


class RODPlacer(Placer):
    """Resilient Operator Distribution as a :class:`Placer`."""

    name = "rod"

    def __init__(
        self,
        lower_bound: Optional[Sequence[float]] = None,
        class_one_policy: str = "plane",
        seed: Optional[int] = None,
    ) -> None:
        self.lower_bound = lower_bound
        self.class_one_policy = class_one_policy
        self.seed = seed

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        self._validated(model, capacities)
        return rod_place(
            model,
            capacities,
            lower_bound=self.lower_bound,
            class_one_policy=self.class_one_policy,
            seed=self.seed,
        )
