"""Placer adapter around the ROD algorithm.

Lets the experiment harness treat ROD uniformly with the baselines of
Section 7.2.  ROD needs neither a rate point nor a rate history.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import RodStep, rod_place
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer

__all__ = ["RODPlacer", "emit_rod_steps"]


def emit_rod_steps(tracer: Tracer, steps: Sequence[RodStep]) -> None:
    """Emit one ``placement.step`` trace event per greedy assignment."""
    for index, step in enumerate(steps):
        tracer.emit(
            "placement.step",
            algorithm="rod",
            index=index,
            operator=step.operator,
            node=step.node,
            class_one_size=len(step.class_one),
            chosen_from_class_one=step.chosen_from_class_one,
        )


class RODPlacer(Placer):
    """Resilient Operator Distribution as a :class:`Placer`."""

    name = "rod"

    def __init__(
        self,
        lower_bound: Optional[Sequence[float]] = None,
        class_one_policy: str = "plane",
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.lower_bound = lower_bound
        self.class_one_policy = class_one_policy
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        self._validated(model, capacities)
        tracing = self.tracer.enabled
        steps: Optional[List[RodStep]] = [] if tracing else None
        start = time.perf_counter()
        placement = rod_place(
            model,
            capacities,
            lower_bound=self.lower_bound,
            class_one_policy=self.class_one_policy,
            seed=self.seed,
            steps=steps,
        )
        if tracing and steps is not None:
            emit_rod_steps(self.tracer, steps)
            self.tracer.emit(
                "phase",
                name="placement.rod",
                seconds=time.perf_counter() - start,
                operators=model.num_operators,
            )
        return placement
