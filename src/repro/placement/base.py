"""Common interface for operator placement algorithms.

Every placer consumes a :class:`~repro.core.load_model.LoadModel` and a
capacity vector and returns a :class:`~repro.core.plans.Placement`.  The
load-balancing baselines of Section 7.2 additionally need a *load point*:
the average input rates they balance for.  ROD needs none — that is the
paper's point.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..core import geometry
from ..core.load_model import LoadModel
from ..core.plans import Placement

__all__ = ["Placer", "relative_loads"]


class Placer(abc.ABC):
    """An operator placement algorithm."""

    #: Short identifier used in experiment tables.
    name: str = "placer"

    @abc.abstractmethod
    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        """Assign every operator of ``model`` to a node."""

    def _validated(self, model: LoadModel, capacities: Sequence[float]):
        caps = geometry.validate_capacities(capacities)
        if model.num_operators == 0:
            raise ValueError("cannot place an empty query graph")
        return caps

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def relative_loads(
    node_loads: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Load/capacity per node — the balancing baselines' greedy key."""
    return node_loads / capacities


def resolve_rates(
    model: LoadModel, rates: Optional[Sequence[float]]
) -> np.ndarray:
    """Default the balancers' load point to the all-ones rate vector."""
    if rates is None:
        return np.ones(model.num_variables)
    r = np.asarray(rates, dtype=float)
    if r.shape != (model.num_variables,):
        raise ValueError(
            f"expected {model.num_variables} rates, got shape {r.shape}"
        )
    if np.any(r < 0):
        raise ValueError("rates must be >= 0")
    return r
