"""MILP placement: provably optimal per-stream balance (MMAD's ideal).

ROD's first heuristic (Section 4.1) balances each input stream's load
across nodes in proportion to capacity — equivalently, it minimizes the
largest entry of the weight matrix ``w_ik``.  That objective *is*
expressible as a mixed-integer linear program:

    minimize  z
    s.t.      sum_i a_ij = 1                   for every operator j
              sum_j a_ij * u_ijk <= z          for every node i, stream k
              a_ij in {0, 1}

with ``u_ijk = (l^o_jk / l_k) / (C_i / C_T)`` the weight operator ``j``
would contribute to node ``i`` on stream ``k``.  Solving it (HiGHS via
``scipy.optimize.milp``) gives an upper bound on how well MMAD alone can
ever do — a yardstick for ROD that the paper's exhaustive search cannot
provide beyond toy sizes.

Note the MILP optimizes *balance*, not feasible-set volume: it ignores
MMPD's cross-stream combination concern, so ROD can still beat it on
volume even when it loses on max-weight.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer

__all__ = ["MilpBalancePlacer"]

# n * m binaries beyond this make HiGHS runtimes unpredictable.
MAX_VARIABLES = 600


class MilpBalancePlacer(Placer):
    """Minimize the maximum normalized stream weight over all nodes."""

    name = "milp_balance"

    def __init__(
        self,
        time_limit: Optional[float] = 30.0,
        max_variables: int = MAX_VARIABLES,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.time_limit = time_limit
        self.max_variables = max_variables
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        n, m, d = caps.shape[0], model.num_operators, model.num_variables
        if n * m > self.max_variables:
            raise ValueError(
                f"MILP with {n * m} assignment variables exceeds the "
                f"configured limit of {self.max_variables}"
            )
        totals = model.column_totals()
        capacity_share = caps / caps.sum()

        # Unit weights u_ijk, flattened over variables x = (a_00..a_nm, z)
        # with a_ij at index i * m + j.
        num_vars = n * m + 1
        cost = np.zeros(num_vars)
        cost[-1] = 1.0  # minimize z

        # Each operator placed exactly once.
        assign = np.zeros((m, num_vars))
        for j in range(m):
            for i in range(n):
                assign[j, i * m + j] = 1.0
        assignment_constraint = LinearConstraint(assign, lb=1.0, ub=1.0)

        # Weight constraints for loaded streams only.
        loaded = [k for k in range(d) if totals[k] > 1e-12]
        weight_rows = np.zeros((n * len(loaded), num_vars))
        row = 0
        for i in range(n):
            for k in loaded:
                for j in range(m):
                    unit = (model.coefficients[j, k] / totals[k]) / (
                        capacity_share[i]
                    )
                    weight_rows[row, i * m + j] = unit
                weight_rows[row, -1] = -1.0
                row += 1
        weight_constraint = LinearConstraint(
            weight_rows, lb=-np.inf, ub=0.0
        )

        integrality = np.ones(num_vars)
        integrality[-1] = 0.0
        bounds = Bounds(
            lb=np.zeros(num_vars),
            ub=np.concatenate([np.ones(n * m), [np.inf]]),
        )
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        solve_start = time.perf_counter()
        result = milp(
            c=cost,
            constraints=[assignment_constraint, weight_constraint],
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "placement.milp",
                algorithm="milp_balance",
                seconds=time.perf_counter() - solve_start,
                status=int(result.status),
                variables=num_vars,
                objective=(
                    None if result.x is None else float(result.x[-1])
                ),
            )
        if result.x is None:
            raise RuntimeError(
                f"MILP solve failed: {result.message} "
                f"(status {result.status})"
            )
        a = np.round(result.x[:-1]).reshape(n, m)
        assignment = tuple(int(np.argmax(a[:, j])) for j in range(m))
        return Placement(model=model, capacities=caps, assignment=assignment)
