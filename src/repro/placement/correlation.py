"""Correlation-based load balancing (Section 7.2, from Xing et al. [23]).

The dynamic load distribution scheme the same group proposed at ICDE'05
separates operators whose loads are highly correlated over time: if two
operators spike together, putting them on different nodes lets a burst be
absorbed by several machines.  Here we reproduce the static variant the
paper benchmarks: operators are assigned greedily (heaviest average load
first) to the candidate node whose existing load time series is *least
correlated* with the operator's own load series, among nodes that stay
reasonably balanced.

Operators downstream of the same input stream have perfectly correlated
loads under the linear model, so in practice this baseline spreads each
input's operators across nodes — which is why the paper finds it the
strongest baseline, approximating one of ROD's two heuristics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from .base import Placer

__all__ = ["CorrelationPlacer", "correlation_coefficient"]


def correlation_coefficient(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation, defined as 0 when either series is constant.

    A constant (e.g. all-zero, empty-node) series carries no burst
    information, so it is treated as uncorrelated rather than undefined.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"series shapes differ: {a.shape} vs {b.shape}")
    da = a - a.mean()
    db = b - b.mean()
    denom = np.sqrt((da @ da) * (db @ db))
    if denom <= 1e-15:
        return 0.0
    return float((da @ db) / denom)


class CorrelationPlacer(Placer):
    """Static correlation-based balancing over a rate time series."""

    name = "correlation"

    def __init__(
        self,
        rate_series: np.ndarray,
        balance_slack: float = 0.2,
    ) -> None:
        """``rate_series`` has shape ``(T, d)``: input rates over time.

        ``balance_slack`` is how far above the capacity-proportional
        average a node's load may go and still be a candidate.
        """
        series = np.asarray(rate_series, dtype=float)
        if series.ndim != 2 or series.shape[0] < 2:
            raise ValueError(
                "rate_series must be (T, d) with at least two time steps, "
                f"got shape {series.shape}"
            )
        if np.any(series < 0):
            raise ValueError("rates must be >= 0")
        if balance_slack < 0:
            raise ValueError("balance_slack must be >= 0")
        self.rate_series = series
        self.balance_slack = balance_slack

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        if self.rate_series.shape[1] != model.num_variables:
            raise ValueError(
                f"rate series has {self.rate_series.shape[1]} variables, "
                f"model has {model.num_variables}"
            )
        n = caps.shape[0]
        # (T, m): load of each operator over time.
        op_series = self.rate_series @ model.coefficients.T
        avg_loads = op_series.mean(axis=0)
        order = sorted(
            range(model.num_operators), key=lambda j: (-avg_loads[j], j)
        )

        node_series = np.zeros((self.rate_series.shape[0], n))
        node_avg = np.zeros(n)
        assigned_total = 0.0
        assignment = [0] * model.num_operators

        for j in order:
            assigned_total += avg_loads[j]
            # Nodes still within the (slackened) capacity-fair share of the
            # load assigned so far are balance candidates.
            fair = assigned_total * caps / caps.sum()
            candidates = [
                i
                for i in range(n)
                if node_avg[i] + avg_loads[j]
                <= fair[i] * (1.0 + self.balance_slack) + 1e-15
            ]
            if not candidates:
                candidates = [int(np.argmin(node_avg / caps))]
            node = min(
                candidates,
                key=lambda i: (
                    correlation_coefficient(op_series[:, j], node_series[:, i]),
                    node_avg[i] / caps[i],
                    i,
                ),
            )
            assignment[j] = node
            node_series[:, node] += op_series[:, j]
            node_avg[node] += avg_loads[j]
        return Placement(
            model=model, capacities=caps, assignment=tuple(assignment)
        )
