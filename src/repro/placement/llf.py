"""Largest-Load-First load balancing (Section 7.2).

The classical greedy list-scheduling balancer: order operators by their
load at the observed (average) input rates, descending, and assign each to
the node with the smallest current load relative to its capacity.  It
optimizes for exactly one load point — the behaviour ROD is contrasted
with.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from .base import Placer, resolve_rates

__all__ = ["LLFPlacer"]


class LLFPlacer(Placer):
    """Largest-Load-First balancing at a fixed rate point."""

    name = "llf"

    def __init__(self, rates: Optional[Sequence[float]] = None) -> None:
        """``rates`` is the load point balanced for (default: all ones)."""
        self.rates = rates

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        rates = resolve_rates(model, self.rates)
        loads = model.coefficients @ rates
        order = sorted(
            range(model.num_operators), key=lambda j: (-loads[j], j)
        )
        node_load = np.zeros(caps.shape[0])
        assignment = [0] * model.num_operators
        for j in order:
            node = int(np.argmin(node_load / caps))
            assignment[j] = node
            node_load[node] += loads[j]
        return Placement(
            model=model, capacities=caps, assignment=tuple(assignment)
        )
