"""Placement algorithms: ROD plus the baselines of Section 7.2."""

from .annealing import AnnealingPlacer
from .base import Placer
from .connected import ConnectedPlacer
from .correlation import CorrelationPlacer, correlation_coefficient
from .elastic import ElasticPlacer
from .hierarchical import HierarchicalPlacer, RestrictedModel
from .llf import LLFPlacer
from .milp import MilpBalancePlacer
from .optimal import OptimalPlacer, enumerate_assignments
from .random_placer import RandomPlacer
from .rod_placer import RODPlacer

__all__ = [
    "AnnealingPlacer",
    "ConnectedPlacer",
    "CorrelationPlacer",
    "ElasticPlacer",
    "HierarchicalPlacer",
    "LLFPlacer",
    "MilpBalancePlacer",
    "OptimalPlacer",
    "Placer",
    "RODPlacer",
    "RandomPlacer",
    "RestrictedModel",
    "correlation_coefficient",
    "enumerate_assignments",
]
