"""Simulated-annealing placement: direct feasible-volume search.

A third yardstick for ROD, complementing the exhaustive search (exact
but capped at ~15 operators) and the MILP (scales further but optimizes
balance, not volume): anneal over assignments with the QMC volume ratio
as the objective, evaluated against one fixed set of low-discrepancy
sample points so all candidate plans are scored on identical ground.

Moves reassign one random operator to a random other node; temperature
decays geometrically.  Starting from ROD's plan measures how much *pure
search time* improves on the greedy answer; starting from random
measures how much the greedy structure itself is worth.

Scoring is *incremental*.  A candidate's weight-matrix row for node
``i`` is ``w_i = (L^n_i / l) / (C_i / C_T)``, and a sample ``x`` is
feasible iff ``x . w_i <= 1`` for every node — equivalently, iff the
*unscaled* per-node dot ``x . (L^n_i / l)`` stays below the node's
capacity share.  Because ``L^n_i`` is a sum of operator rows, that dot
is a sum of per-operator dots ``x . (L^o_j / l)``, which depend on
neither the assignment nor the node.  So the placer computes all
``samples x m`` operator dots once (one matmul), keeps per-node dot
columns plus a per-sample count of violated nodes, and updates a move
by adding/subtracting one operator-dot column on the source and target
nodes — ``O(samples)`` per iteration instead of the full
``O(samples * n * d)`` rescoring matmul, with bit-identical acceptance
decisions for the same seed.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..core.volume import qmc
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer

__all__ = ["AnnealingPlacer"]


class AnnealingPlacer(Placer):
    """Metropolis search over placements, maximizing QMC volume ratio."""

    name = "annealing"

    def __init__(
        self,
        iterations: int = 5000,
        samples: int = 2048,
        initial_temperature: float = 0.05,
        cooling: float = 0.999,
        start: str = "rod",
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        trace_every: int = 250,
    ) -> None:
        """``start`` is ``"rod"`` (polish the greedy plan) or
        ``"random"`` (search from scratch).  With a ``tracer``, a
        ``placement.iteration`` event is emitted every ``trace_every``
        iterations and whenever the search finds a new best plan."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        if initial_temperature < 0:
            raise ValueError("initial temperature must be >= 0")
        if start not in ("rod", "random"):
            raise ValueError(f"unknown start {start!r}")
        if trace_every < 1:
            raise ValueError("trace_every must be >= 1")
        self.iterations = iterations
        self.samples = samples
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.start = start
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_every = trace_every

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        n = caps.shape[0]
        if n == 1:
            # Only one assignment exists; nothing to search.
            return rod_place(model, caps)
        m = model.num_operators
        rng = random.Random(self.seed)
        samples = self.samples
        totals = model.column_totals()
        safe_totals = np.where(totals > 1e-12, totals, 1.0)
        capacity_share = caps / caps.sum()
        # Fixed evaluation points: identical ground for every candidate.
        points = qmc.sample_unit_simplex(
            samples, model.num_variables, method="halton"
        )

        if self.start == "rod":
            assignment = list(rod_place(model, caps).assignment)
        else:
            assignment = [rng.randrange(n) for _ in range(m)]

        # Assignment-independent per-operator dots: column j holds
        # x . (L^o_j / l) for every sample x.  One matmul, reused by all
        # self.iterations candidate evaluations.
        op_share = model.coefficients / safe_totals
        op_share[:, totals <= 1e-12] = 0.0
        op_dots = np.asfortranarray(points @ op_share.T)
        # Feasibility of node i at sample x:
        #   (x . sum_{j on i} op_share_j) / capacity_share_i <= 1 + eps
        # folded into a per-node threshold on the unscaled dot.
        thresholds = (1.0 + 1e-12) * capacity_share

        # Per-node dot columns, per-node violation flags, and the
        # per-sample count of violated nodes — the full scoring state.
        node_dots = np.zeros((samples, n), order="F")
        for j, node in enumerate(assignment):
            node_dots[:, node] += op_dots[:, j]
        violations = np.empty((samples, n), dtype=np.int8, order="F")
        for i in range(n):
            violations[:, i] = node_dots[:, i] > thresholds[i]
        violation_count = violations.sum(axis=1, dtype=np.int16)

        current = float(samples - np.count_nonzero(violation_count)) / samples
        best = current
        best_assignment = tuple(assignment)
        temperature = self.initial_temperature
        tracer = self.tracer
        tracing = tracer.enabled

        def emit_iteration(iteration: int, improved: bool) -> None:
            tracer.emit(
                "placement.iteration",
                algorithm="annealing",
                iteration=iteration,
                current=current,
                best=best,
                temperature=temperature,
                improved=improved,
            )

        for iteration in range(self.iterations):
            j = rng.randrange(m)
            source = assignment[j]
            target = rng.randrange(n - 1)
            if target >= source:
                target += 1
            moved = op_dots[:, j]
            source_dots = node_dots[:, source] - moved
            target_dots = node_dots[:, target] + moved
            source_viol = source_dots > thresholds[source]
            target_viol = target_dots > thresholds[target]
            # int8 view of the bool flags: same bytes, subtractable.
            count_delta = np.subtract(
                source_viol.view(np.int8), violations[:, source]
            )
            count_delta += target_viol.view(np.int8)
            count_delta -= violations[:, target]
            new_count = violation_count + count_delta
            candidate = float(samples - np.count_nonzero(new_count)) / samples
            delta = candidate - current
            improved = False
            if delta >= 0 or (
                temperature > 0
                and rng.random() < math.exp(delta / temperature)
            ):
                assignment[j] = target
                current = candidate
                node_dots[:, source] = source_dots
                node_dots[:, target] = target_dots
                violations[:, source] = source_viol.view(np.int8)
                violations[:, target] = target_viol.view(np.int8)
                violation_count = new_count
                if current > best:
                    best = current
                    best_assignment = tuple(assignment)
                    improved = True
            temperature *= self.cooling
            if tracing and (improved or iteration % self.trace_every == 0):
                emit_iteration(iteration, improved)

        return Placement(
            model=model, capacities=caps, assignment=best_assignment
        )
