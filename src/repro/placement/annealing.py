"""Simulated-annealing placement: direct feasible-volume search.

A third yardstick for ROD, complementing the exhaustive search (exact
but capped at ~15 operators) and the MILP (scales further but optimizes
balance, not volume): anneal over assignments with the QMC volume ratio
as the objective, evaluated against one fixed set of low-discrepancy
sample points so all candidate plans are scored on identical ground.

Moves reassign one random operator to a random other node; temperature
decays geometrically.  Starting from ROD's plan measures how much *pure
search time* improves on the greedy answer; starting from random
measures how much the greedy structure itself is worth.

Scoring is *incremental*.  A candidate's weight-matrix row for node
``i`` is ``w_i = (L^n_i / l) / (C_i / C_T)``, and a sample ``x`` is
feasible iff ``x . w_i <= 1`` for every node — equivalently, iff the
*unscaled* per-node dot ``x . (L^n_i / l)`` stays below the node's
capacity share.  Because ``L^n_i`` is a sum of operator rows, that dot
is a sum of per-operator dots ``x . (L^o_j / l)``, which depend on
neither the assignment nor the node.  So the placer computes all
``samples x m`` operator dots once (one matmul), keeps per-node dot
columns plus a per-sample count of violated nodes, and updates a move
by adding/subtracting one operator-dot column on the source and target
nodes — ``O(samples)`` per iteration instead of the full
``O(samples * n * d)`` rescoring matmul, with bit-identical acceptance
decisions for the same seed.

With ``score_batch=K > 1`` the search draws K proposals per round,
scores them all from the *current* state (optionally fanned out through
:func:`repro.parallel.parallel_map` with ``jobs > 1``, amortizing the
pool round-trip over the whole batch), then walks them in draw order
and applies the first accepted move; the round's remaining proposals
are discarded because their scores went stale the moment one was
applied.  The default ``score_batch=1`` keeps the classic
one-proposal-per-iteration loop bit-identical to previous releases.

``total_capacity`` overrides the denominator ``C_T`` of the capacity
shares.  The hierarchical placer uses this to refine a node *group*
in isolation while scoring against the cluster-wide normalization, so
per-group volume ratios remain comparable across groups.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..core.volume import qmc
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer

__all__ = ["AnnealingPlacer"]


def _candidate_violation_count(
    task: Tuple[np.ndarray, np.ndarray, np.ndarray, float, float,
                np.ndarray, np.ndarray, np.ndarray],
) -> int:
    """Samples left violated by one candidate move (pool-friendly task).

    The task carries only the columns the move touches — the moved
    operator's dot column, the source/target node dot columns and
    violation flags, the two thresholds, and the per-sample violation
    count — so a batch of K candidates ships K such bundles per pool
    round-trip instead of the full scoring state.
    """
    (moved, source_col, target_col, thr_source, thr_target,
     viol_source, viol_target, violation_count) = task
    source_viol = (source_col - moved) > thr_source
    target_viol = (target_col + moved) > thr_target
    count_delta = np.subtract(source_viol.view(np.int8), viol_source)
    count_delta += target_viol.view(np.int8)
    count_delta -= viol_target
    return int(np.count_nonzero(violation_count + count_delta))


class AnnealingPlacer(Placer):
    """Metropolis search over placements, maximizing QMC volume ratio."""

    name = "annealing"

    def __init__(
        self,
        iterations: int = 5000,
        samples: int = 2048,
        initial_temperature: float = 0.05,
        cooling: float = 0.999,
        start: str = "rod",
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        trace_every: int = 250,
        score_batch: int = 1,
        jobs: int = 1,
        total_capacity: Optional[float] = None,
        initial_assignment: Optional[Sequence[int]] = None,
        sample_mask: Optional[np.ndarray] = None,
    ) -> None:
        """``start`` is ``"rod"`` (polish the greedy plan) or
        ``"random"`` (search from scratch).  With a ``tracer``, a
        ``placement.iteration`` event is emitted every ``trace_every``
        iterations and whenever the search finds a new best plan.
        ``score_batch`` draws and scores K proposals per round (first
        accepted wins); ``jobs > 1`` fans a round's candidate scoring
        through :func:`repro.parallel.parallel_map`.  ``total_capacity``
        overrides the normalization denominator ``C_T`` (hierarchical
        refinement scores a node group against the cluster-wide total).
        ``initial_assignment`` overrides ``start`` with an explicit
        warm-start assignment.  ``sample_mask`` (bool per sample)
        excludes masked-out samples from the objective — the
        hierarchical placer masks samples already infeasible *outside*
        the group being refined, so each group optimizes the global
        feasible count rather than its local one."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        if initial_temperature < 0:
            raise ValueError("initial temperature must be >= 0")
        if start not in ("rod", "random"):
            raise ValueError(f"unknown start {start!r}")
        if trace_every < 1:
            raise ValueError("trace_every must be >= 1")
        if score_batch < 1:
            raise ValueError("score_batch must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if total_capacity is not None and total_capacity <= 0:
            raise ValueError("total_capacity must be > 0")
        if sample_mask is not None:
            sample_mask = np.asarray(sample_mask, dtype=bool)
            if sample_mask.shape != (samples,):
                raise ValueError(
                    f"sample mask shape {sample_mask.shape} does not "
                    f"match samples={samples}"
                )
        self.iterations = iterations
        self.samples = samples
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.start = start
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_every = trace_every
        self.score_batch = score_batch
        self.jobs = jobs
        self.total_capacity = total_capacity
        self.initial_assignment = (
            None if initial_assignment is None
            else tuple(int(i) for i in initial_assignment)
        )
        self.sample_mask = sample_mask

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        n = caps.shape[0]
        if n == 1:
            # Only one assignment exists; nothing to search.
            return rod_place(model, caps)
        m = model.num_operators
        rng = random.Random(self.seed)
        samples = self.samples
        totals = model.column_totals()
        safe_totals = np.where(totals > 1e-12, totals, 1.0)
        total_capacity = (
            self.total_capacity
            if self.total_capacity is not None
            else float(caps.sum())
        )
        capacity_share = caps / total_capacity
        # Fixed evaluation points: identical ground for every candidate.
        points = qmc.sample_unit_simplex(
            samples, model.num_variables, method="halton"
        )

        if self.initial_assignment is not None:
            if len(self.initial_assignment) != m:
                raise ValueError(
                    f"initial assignment covers "
                    f"{len(self.initial_assignment)} operators but the "
                    f"model has {m}"
                )
            assignment = list(self.initial_assignment)
        elif self.start == "rod":
            assignment = list(rod_place(model, caps).assignment)
        else:
            assignment = [rng.randrange(n) for _ in range(m)]

        # Assignment-independent per-operator dots: column j holds
        # x . (L^o_j / l) for every sample x.  One matmul, reused by all
        # self.iterations candidate evaluations.
        op_share = model.coefficients / safe_totals
        op_share[:, totals <= 1e-12] = 0.0
        op_dots = np.asfortranarray(points @ op_share.T)
        # Feasibility of node i at sample x:
        #   (x . sum_{j on i} op_share_j) / capacity_share_i <= 1 + eps
        # folded into a per-node threshold on the unscaled dot.
        thresholds = (1.0 + 1e-12) * capacity_share

        # Per-node dot columns, per-node violation flags, and the
        # per-sample count of violated nodes — the full scoring state.
        node_dots = np.zeros((samples, n), order="F")
        for j, node in enumerate(assignment):
            node_dots[:, node] += op_dots[:, j]
        violations = np.empty((samples, n), dtype=np.int8, order="F")
        for i in range(n):
            violations[:, i] = node_dots[:, i] > thresholds[i]
        violation_count = violations.sum(axis=1, dtype=np.int16)
        if self.sample_mask is not None:
            # Masked-out samples carry a permanent phantom violation:
            # every incremental delta still applies, but they can never
            # count as feasible, so the objective becomes the feasible
            # count *within the mask* with no extra bookkeeping.
            violation_count += np.logical_not(self.sample_mask)

        current = float(samples - np.count_nonzero(violation_count)) / samples
        best = current
        best_assignment = tuple(assignment)
        temperature = self.initial_temperature
        tracer = self.tracer
        tracing = tracer.enabled

        if self.score_batch > 1:
            return self._place_batched(
                model, caps, rng, assignment, op_dots, thresholds,
                node_dots, violations, violation_count, current,
            )

        def emit_iteration(iteration: int, improved: bool) -> None:
            tracer.emit(
                "placement.iteration",
                algorithm="annealing",
                iteration=iteration,
                current=current,
                best=best,
                temperature=temperature,
                improved=improved,
            )

        for iteration in range(self.iterations):
            j = rng.randrange(m)
            source = assignment[j]
            target = rng.randrange(n - 1)
            if target >= source:
                target += 1
            moved = op_dots[:, j]
            source_dots = node_dots[:, source] - moved
            target_dots = node_dots[:, target] + moved
            source_viol = source_dots > thresholds[source]
            target_viol = target_dots > thresholds[target]
            # int8 view of the bool flags: same bytes, subtractable.
            count_delta = np.subtract(
                source_viol.view(np.int8), violations[:, source]
            )
            count_delta += target_viol.view(np.int8)
            count_delta -= violations[:, target]
            new_count = violation_count + count_delta
            candidate = float(samples - np.count_nonzero(new_count)) / samples
            delta = candidate - current
            improved = False
            if delta >= 0 or (
                temperature > 0
                and rng.random() < math.exp(delta / temperature)
            ):
                assignment[j] = target
                current = candidate
                node_dots[:, source] = source_dots
                node_dots[:, target] = target_dots
                violations[:, source] = source_viol.view(np.int8)
                violations[:, target] = target_viol.view(np.int8)
                violation_count = new_count
                if current > best:
                    best = current
                    best_assignment = tuple(assignment)
                    improved = True
            temperature *= self.cooling
            if tracing and (improved or iteration % self.trace_every == 0):
                emit_iteration(iteration, improved)

        return Placement(
            model=model, capacities=caps, assignment=best_assignment
        )

    def _place_batched(
        self,
        model: LoadModel,
        caps: np.ndarray,
        rng: random.Random,
        assignment: List[int],
        op_dots: np.ndarray,
        thresholds: np.ndarray,
        node_dots: np.ndarray,
        violations: np.ndarray,
        violation_count: np.ndarray,
        current: float,
    ) -> Placement:
        """Metropolis search scoring ``score_batch`` proposals per round.

        Each round draws K independent proposals from the current state,
        scores them all (through :func:`repro.parallel.parallel_map`
        when ``jobs > 1``), then walks the proposals in draw order and
        applies the *first* one that passes the acceptance test; the
        rest are discarded, their scores having gone stale.  Temperature
        decays once per scored proposal, so a run of ``iterations``
        proposals explores the same cooling schedule as the classic
        loop, just K at a time.
        """
        n = caps.shape[0]
        m = model.num_operators
        samples = self.samples
        batch = self.score_batch
        best = current
        best_assignment = tuple(assignment)
        temperature = self.initial_temperature
        tracer = self.tracer
        tracing = tracer.enabled
        proposals_scored = 0

        while proposals_scored < self.iterations:
            take = min(batch, self.iterations - proposals_scored)
            moves: List[Tuple[int, int, int]] = []
            for _ in range(take):
                j = rng.randrange(m)
                source = assignment[j]
                target = rng.randrange(n - 1)
                if target >= source:
                    target += 1
                moves.append((j, source, target))

            if self.jobs > 1:
                from .. import parallel as _parallel

                tasks = [
                    (op_dots[:, j], node_dots[:, source],
                     node_dots[:, target], thresholds[source],
                     thresholds[target], violations[:, source],
                     violations[:, target], violation_count)
                    for j, source, target in moves
                ]
                counts = _parallel.parallel_map(
                    _candidate_violation_count, tasks, jobs=self.jobs
                )
            else:
                # Vectorized over the whole batch: gather the touched
                # columns side by side and count violated samples per
                # candidate in one pass.
                js = np.fromiter(
                    (mv[0] for mv in moves), dtype=np.intp, count=take
                )
                sources = np.fromiter(
                    (mv[1] for mv in moves), dtype=np.intp, count=take
                )
                targets = np.fromiter(
                    (mv[2] for mv in moves), dtype=np.intp, count=take
                )
                moved_cols = op_dots[:, js]
                source_viols = (
                    node_dots[:, sources] - moved_cols
                ) > thresholds[sources]
                target_viols = (
                    node_dots[:, targets] + moved_cols
                ) > thresholds[targets]
                deltas = np.subtract(
                    source_viols.view(np.int8), violations[:, sources]
                )
                deltas += target_viols.view(np.int8)
                deltas -= violations[:, targets]
                deltas += violation_count[:, None]
                counts = np.count_nonzero(deltas, axis=0)

            # The whole batch was scored, whether or not the walk below
            # reaches every proposal — all of it counts against the
            # iteration budget.
            proposals_scored += take
            improved = False
            walked = 0
            for (j, source, target), bad in zip(moves, counts):
                walked += 1
                candidate = float(samples - bad) / samples
                delta = candidate - current
                accept = delta >= 0 or (
                    temperature > 0
                    and rng.random() < math.exp(delta / temperature)
                )
                temperature *= self.cooling
                if not accept:
                    continue
                # Apply the accepted move and close the round: every
                # later proposal was scored against a stale state.
                moved = op_dots[:, j]
                node_dots[:, source] -= moved
                node_dots[:, target] += moved
                source_viol = node_dots[:, source] > thresholds[source]
                target_viol = node_dots[:, target] > thresholds[target]
                count_delta = np.subtract(
                    source_viol.view(np.int8), violations[:, source]
                )
                count_delta += target_viol.view(np.int8)
                count_delta -= violations[:, target]
                violation_count += count_delta
                violations[:, source] = source_viol.view(np.int8)
                violations[:, target] = target_viol.view(np.int8)
                assignment[j] = target
                current = candidate
                if current > best:
                    best = current
                    best_assignment = tuple(assignment)
                    improved = True
                break
            # Proposals past the accepted one were scored but never
            # walked; keep the cooling schedule a function of proposals
            # *scored* so batch size does not stretch the search.
            if walked < take:
                temperature *= self.cooling ** (take - walked)
            if tracing and (
                improved
                or (proposals_scored // batch) % self.trace_every == 0
            ):
                tracer.emit(
                    "placement.iteration",
                    algorithm="annealing",
                    iteration=proposals_scored,
                    current=current,
                    best=best,
                    temperature=temperature,
                    improved=improved,
                )

        return Placement(
            model=model, capacities=caps, assignment=best_assignment
        )
