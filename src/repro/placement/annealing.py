"""Simulated-annealing placement: direct feasible-volume search.

A third yardstick for ROD, complementing the exhaustive search (exact
but capped at ~15 operators) and the MILP (scales further but optimizes
balance, not volume): anneal over assignments with the QMC volume ratio
as the objective, evaluated against one fixed set of low-discrepancy
sample points so all candidate plans are scored on identical ground.

Moves reassign one random operator to a random other node; temperature
decays geometrically.  Starting from ROD's plan measures how much *pure
search time* improves on the greedy answer; starting from random
measures how much the greedy structure itself is worth.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..core.volume import qmc
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer

__all__ = ["AnnealingPlacer"]


class AnnealingPlacer(Placer):
    """Metropolis search over placements, maximizing QMC volume ratio."""

    name = "annealing"

    def __init__(
        self,
        iterations: int = 5000,
        samples: int = 2048,
        initial_temperature: float = 0.05,
        cooling: float = 0.999,
        start: str = "rod",
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        trace_every: int = 250,
    ) -> None:
        """``start`` is ``"rod"`` (polish the greedy plan) or
        ``"random"`` (search from scratch).  With a ``tracer``, a
        ``placement.iteration`` event is emitted every ``trace_every``
        iterations and whenever the search finds a new best plan."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        if initial_temperature < 0:
            raise ValueError("initial temperature must be >= 0")
        if start not in ("rod", "random"):
            raise ValueError(f"unknown start {start!r}")
        if trace_every < 1:
            raise ValueError("trace_every must be >= 1")
        self.iterations = iterations
        self.samples = samples
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.start = start
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_every = trace_every

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        n = caps.shape[0]
        if n == 1:
            # Only one assignment exists; nothing to search.
            return rod_place(model, caps)
        m = model.num_operators
        d = model.num_variables
        rng = random.Random(self.seed)
        totals = model.column_totals()
        safe_totals = np.where(totals > 1e-12, totals, 1.0)
        capacity_share = caps / caps.sum()
        # Fixed evaluation points: identical ground for every candidate.
        points = qmc.sample_unit_simplex(self.samples, d, method="halton")

        if self.start == "rod":
            assignment = list(rod_place(model, caps).assignment)
        else:
            assignment = [rng.randrange(n) for _ in range(m)]

        node_coeffs = np.zeros((n, d))
        for j, node in enumerate(assignment):
            node_coeffs[node] += model.coefficients[j]

        def score(coeffs: np.ndarray) -> float:
            share = coeffs / safe_totals
            share[:, totals <= 1e-12] = 0.0
            weights = share / capacity_share[:, None]
            feasible = np.all(points @ weights.T <= 1.0 + 1e-12, axis=1)
            return float(np.mean(feasible))

        current = score(node_coeffs)
        best = current
        best_assignment = tuple(assignment)
        temperature = self.initial_temperature
        tracer = self.tracer
        tracing = tracer.enabled

        def emit_iteration(iteration: int, improved: bool) -> None:
            tracer.emit(
                "placement.iteration",
                algorithm="annealing",
                iteration=iteration,
                current=current,
                best=best,
                temperature=temperature,
                improved=improved,
            )

        for iteration in range(self.iterations):
            j = rng.randrange(m)
            source = assignment[j]
            target = rng.randrange(n - 1)
            if target >= source:
                target += 1
            row = model.coefficients[j]
            node_coeffs[source] -= row
            node_coeffs[target] += row
            candidate = score(node_coeffs)
            delta = candidate - current
            improved = False
            if delta >= 0 or (
                temperature > 0
                and rng.random() < math.exp(delta / temperature)
            ):
                assignment[j] = target
                current = candidate
                if current > best:
                    best = current
                    best_assignment = tuple(assignment)
                    improved = True
            else:
                node_coeffs[source] += row
                node_coeffs[target] -= row
            temperature *= self.cooling
            if tracing and (improved or iteration % self.trace_every == 0):
                emit_iteration(iteration, improved)

        return Placement(
            model=model, capacities=caps, assignment=best_assignment
        )
