"""Connected load balancing (Section 7.2).

Balances load while preferring to co-locate connected operators, to
minimize data communication:

1. assign the most loaded unassigned operator to the currently least
   loaded node ``N_s``;
2. keep assigning operators *connected to operators already on* ``N_s``
   to ``N_s`` as long as its load stays below the per-node average;
3. repeat until everything is placed.

The paper finds this fares worst on resilience: a spike on one input
cannot be absorbed collectively because the whole downstream chain sits on
one machine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from .base import Placer, resolve_rates

__all__ = ["ConnectedPlacer"]


class ConnectedPlacer(Placer):
    """Connectivity-preserving load balancing at a fixed rate point."""

    name = "connected"

    def __init__(self, rates: Optional[Sequence[float]] = None) -> None:
        self.rates = rates

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        rates = resolve_rates(model, self.rates)
        loads = model.coefficients @ rates
        graph = model.graph
        n = caps.shape[0]
        # Per-node load target, capacity-proportional ("the average load").
        total_load = float(loads.sum())
        targets = total_load * caps / caps.sum()

        unassigned: Set[int] = set(range(model.num_operators))
        node_load = np.zeros(n)
        assignment = [0] * model.num_operators

        def neighbors_on_node(node_ops: Set[int]) -> List[int]:
            """Unassigned operators adjacent to any operator on the node,
            most loaded first."""
            found: Set[int] = set()
            for op_index in node_ops:
                name = model.operator_names[op_index]
                for other in (
                    graph.upstream_operators(name)
                    + graph.downstream_operators(name)
                ):
                    other_index = model.operator_index(other)
                    if other_index in unassigned:
                        found.add(other_index)
            return sorted(found, key=lambda j: (-loads[j], j))

        while unassigned:
            # Step 1: heaviest remaining operator to the least loaded node.
            seed_op = max(unassigned, key=lambda j: (loads[j], -j))
            node = int(np.argmin(node_load / caps))
            assignment[seed_op] = node
            node_load[node] += loads[seed_op]
            unassigned.discard(seed_op)
            on_node = {seed_op}
            # Step 2: pull connected operators while under the target.
            while True:
                candidates = neighbors_on_node(on_node)
                progressed = False
                # Suppression justified: neighbors_on_node returns
                # sorted(...), so this order is deterministic; the
                # analyzer cannot see through the nested call.
                for j in candidates:  # noqa: REPRO600
                    if node_load[node] + loads[j] <= targets[node]:
                        assignment[j] = node
                        node_load[node] += loads[j]
                        unassigned.discard(j)
                        on_node.add(j)
                        progressed = True
                        break
                if not progressed:
                    break
        return Placement(
            model=model, capacities=caps, assignment=tuple(assignment)
        )
