"""Elastic placement: split the bottleneck, re-place, merge the cold.

The paper's placement treats each operator as indivisible, so a single
hot operator caps the whole feasible set: no allocation matrix can serve
rate points whose load on that one operator exceeds one node's capacity.
:class:`ElasticPlacer` removes that ceiling.  It wraps any base placer
and, while the placement's feasible-volume ratio stays below a target,
splits the operator with the largest coefficient mass into
key-partitioned parallel instances — extending ``L^o`` surgically via
:func:`~repro.core.load_model.partition_load_model`, never re-deriving
the model — then re-places *incrementally*: surviving operators keep
their nodes and only the new routes/instances/merge are placed by a
min-max greedy.  Splits that fail to grow the ratio are rolled back.
Existing partition groups can be escalated (merged and re-split wider),
and a final pass merges groups whose load share has gone cold, paying
back their routing/merge overhead.

Skew awareness: per-operator :class:`~repro.elastic.skew.KeyHistogram`
objects supply balanced hash-range fractions, so a split of a skewed
key space yields load-balanced instances instead of uniform ranges.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.load_model import (
    LoadModel,
    merge_load_model,
    partition_load_model,
)
from ..core.plans import Placement, placement_from_mapping
from ..graphs.operators import LinearOperator
from ..graphs.partition import (
    DEFAULT_MERGE_COST,
    DEFAULT_ROUTE_COST,
    derived_partition_names,
)
from ..obs.trace import NULL_TRACER, Tracer
from .base import Placer
from .rod_placer import RODPlacer

__all__ = ["ElasticPlacer"]


class ElasticPlacer(Placer):
    """Wraps a base placer with split/merge elasticity.

    Parameters
    ----------
    base:
        Placer producing the initial (and only full) placement; defaults
        to :class:`~repro.placement.rod_placer.RODPlacer`.
    target_ratio:
        Stop splitting once the feasible-volume ratio reaches this.
    ways:
        Instances per split; escalating an existing group doubles it.
    max_splits:
        Bound on split attempts per ``place`` call.
    max_ways:
        Ceiling on any one group's parallelism.
    min_gain:
        A split must grow the ratio by more than this to be kept; a
        merge must not shrink it by more than this.
    cold_share:
        Groups whose coefficient-mass share falls below this are merge
        candidates in the final pass.
    histograms:
        Optional per-operator key histograms; a split of a listed
        operator uses skew-balanced fractions instead of uniform.
    """

    name = "elastic"

    def __init__(
        self,
        base: Optional[Placer] = None,
        target_ratio: float = 0.5,
        ways: int = 2,
        max_splits: int = 4,
        max_ways: int = 8,
        samples: int = 2048,
        seed: Optional[int] = 0,
        min_gain: float = 1e-3,
        cold_share: float = 0.02,
        route_cost: float = DEFAULT_ROUTE_COST,
        merge_cost: float = DEFAULT_MERGE_COST,
        histograms: Optional[Mapping[str, object]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not 0.0 < target_ratio <= 1.0:
            raise ValueError("target_ratio must be in (0, 1]")
        if ways < 2:
            raise ValueError("ways must be >= 2")
        if max_splits < 0:
            raise ValueError("max_splits must be >= 0")
        self.base = base if base is not None else RODPlacer()
        self.target_ratio = target_ratio
        self.ways = ways
        self.max_splits = max_splits
        self.max_ways = max_ways
        self.samples = samples
        self.seed = seed
        self.min_gain = min_gain
        self.cold_share = cold_share
        self.route_cost = route_cost
        self.merge_cost = merge_cost
        self.histograms = dict(histograms or {})
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Split/merge decisions of the most recent ``place`` call.
        self.history: List[Dict[str, object]] = []

    # ---------------------------------------------------------------- place

    def place(
        self, model: LoadModel, capacities: Sequence[float]
    ) -> Placement:
        caps = self._validated(model, capacities)
        self.history = []
        placement = self.base.place(model, list(caps))
        ratio = self._ratio(placement)
        splits = 0
        while ratio < self.target_ratio and splits < self.max_splits:
            step = self._try_split(placement.model, caps, placement, ratio)
            if step is None:
                break
            placement, ratio, kept = step
            splits += 1
            if not kept:
                break
        placement, ratio = self._merge_cold(placement.model, caps,
                                            placement, ratio)
        return placement

    # ---------------------------------------------------------------- split

    def _try_split(
        self,
        model: LoadModel,
        caps: Sequence[float],
        placement: Placement,
        ratio: float,
    ) -> Optional[Tuple[Placement, float, bool]]:
        candidate = self._bottleneck_candidate(model)
        if candidate is None:
            return None
        operator_name, group_ways = candidate
        if group_ways:
            # Escalate an existing group: collapse it, split it wider.
            new_ways = min(group_ways * 2, self.max_ways)
            merged = merge_load_model(model, operator_name)
            merged_mapping = self._inherit_mapping(
                placement.to_mapping(), merged, placement
            )
            trial_model = self._partitioned(merged, operator_name,
                                            new_ways)
            base_mapping = merged_mapping
        else:
            new_ways = self.ways
            trial_model = self._partitioned(model, operator_name,
                                            new_ways)
            base_mapping = placement.to_mapping()
        trial_mapping = self._inherit_mapping(base_mapping, trial_model,
                                              placement)
        trial = placement_from_mapping(trial_model, caps, trial_mapping)
        trial_ratio = self._ratio(trial)
        kept = trial_ratio > ratio + self.min_gain
        entry: Dict[str, object] = {
            "action": "split",
            "operator": operator_name,
            "ways": new_ways,
            "ratio_before": ratio,
            "ratio_after": trial_ratio,
            "kept": kept,
        }
        self.history.append(entry)
        if self.tracer.enabled:
            self.tracer.emit(
                "elastic.split",
                operator=operator_name,
                ways=new_ways,
                ratio_before=ratio,
                ratio_after=trial_ratio,
                kept=kept,
                fractions=[
                    float(f)
                    for f in trial_model.graph
                    .partition_groups[operator_name].fractions
                ],
            )
        if not kept:
            return placement, ratio, False
        return trial, trial_ratio, True

    def _partitioned(
        self, model: LoadModel, operator_name: str, ways: int
    ) -> LoadModel:
        histogram = self.histograms.get(operator_name)
        fractions = None
        if histogram is not None:
            # The model's fraction is the tuple-mass share a route
            # passes, not its key-range width: convert the balanced
            # cut's widths into the shares observed under the
            # histogram's own key distribution (≈ uniform by
            # construction, exactly balanced when cuts land cleanly).
            fractions = histogram.observed_shares(
                histogram.fractions(ways)
            )
        return partition_load_model(
            model, operator_name, ways,
            route_cost=self.route_cost, merge_cost=self.merge_cost,
            fractions=fractions,
        )

    def _bottleneck_candidate(
        self, model: LoadModel
    ) -> Optional[Tuple[str, int]]:
        """(operator, existing ways or 0) with the largest row mass.

        Plain operators compete by their own coefficient mass; an
        existing group competes by its widest instance's mass (that
        instance is what still binds a node) and is only offered while
        it can grow within ``max_ways``.  Ties keep the first-in-graph
        candidate.
        """
        graph = model.graph
        derived = derived_partition_names(graph)
        masses = model.coefficients.sum(axis=1)
        part_of: Dict[str, str] = {}
        for base in sorted(graph.partition_groups):
            for part in graph.partition_groups[base].parts:
                part_of[part] = base
        best: Optional[Tuple[str, int]] = None
        best_mass = 0.0
        for index, name in enumerate(model.operator_names):
            mass = float(masses[index])
            if mass <= best_mass:
                continue
            if name in derived:
                base = part_of.get(name)
                if base is None:
                    continue
                group = graph.partition_groups[base]
                if group.ways * 2 > self.max_ways:
                    continue
                best = (base, group.ways)
            else:
                op = graph.operator(name)
                if not (
                    isinstance(op, LinearOperator) and op.arity == 1
                ):
                    continue
                best = (name, 0)
            best_mass = mass
        return best

    # ---------------------------------------------------------------- merge

    def _merge_cold(
        self,
        model: LoadModel,
        caps: Sequence[float],
        placement: Placement,
        ratio: float,
    ) -> Tuple[Placement, float]:
        for base in sorted(model.graph.partition_groups):
            group = model.graph.partition_groups[base]
            total = float(model.coefficients.sum())
            if total <= 0.0:
                break
            share = sum(
                float(
                    model.coefficients[model.operator_index(name)].sum()
                )
                for name in group.derived
            ) / total
            if share >= self.cold_share:
                continue
            merged_model = merge_load_model(model, base)
            merged_mapping = self._inherit_mapping(
                placement.to_mapping(), merged_model, placement
            )
            merged = placement_from_mapping(merged_model, caps,
                                            merged_mapping)
            merged_ratio = self._ratio(merged)
            kept = merged_ratio + self.min_gain >= ratio
            self.history.append({
                "action": "merge",
                "operator": base,
                "ratio_before": ratio,
                "ratio_after": merged_ratio,
                "kept": kept,
            })
            if self.tracer.enabled:
                self.tracer.emit(
                    "elastic.merge",
                    operator=base,
                    ratio_before=ratio,
                    ratio_after=merged_ratio,
                    kept=kept,
                )
            if kept:
                model, placement, ratio = (merged_model, merged,
                                           merged_ratio)
        return placement, ratio

    # ------------------------------------------------------------ internals

    def _ratio(self, placement: Placement) -> float:
        return placement.volume_ratio(samples=self.samples,
                                      seed=self.seed)

    def _inherit_mapping(
        self,
        old_mapping: Mapping[str, int],
        model: LoadModel,
        placement: Placement,
    ) -> Dict[str, int]:
        """Keep surviving operators in place; greedily slot new ones.

        New operators land in descending coefficient-mass order (ties
        first-in-graph) on the node minimizing the resulting worst
        per-variable utilization — the same min-max yardstick ROD's
        greedy uses, restricted to the handful of new rows.
        """
        caps = np.asarray(placement.capacities, dtype=float)
        node_coeffs = np.zeros((len(caps), model.num_variables))
        mapping: Dict[str, int] = {}
        new_ops: List[Tuple[float, int, str]] = []
        for index, name in enumerate(model.operator_names):
            if name in old_mapping:
                node = int(old_mapping[name])
                mapping[name] = node
                node_coeffs[node] += model.coefficients[index]
            else:
                mass = float(model.coefficients[index].sum())
                new_ops.append((-mass, index, name))
        for _, index, name in sorted(new_ops):
            row = model.coefficients[index]
            best_node = 0
            best_score = float("inf")
            for node in range(len(caps)):
                trial = (node_coeffs[node] + row) / caps[node]
                score = float(trial.max()) if trial.size else 0.0
                if score < best_score - 1e-12:
                    best_score = score
                    best_node = node
            mapping[name] = best_node
            node_coeffs[best_node] += row
        return mapping
