"""Skew-aware runtime repartitioning of partitioned operators.

Where :class:`~repro.dynamics.controller.LoadBalancingController` moves
whole operators between nodes, the :class:`ElasticityController`
rebalances *within* a partitioned operator: when one key-partitioned
instance runs hot (the key distribution drifted away from whatever the
partition fractions assumed), it reassigns key-range fractions across
the group's instances instead of paying a full operator migration.  The
engine applies a :class:`Repartition` by swapping the group's router
selectivities in place — a migration-like reconfiguration that stalls
the group's host nodes for a state-handoff pause but never changes the
operator-to-node assignment.

Fraction targets come from an observed
:class:`~repro.elastic.skew.KeyHistogram` when one is registered for the
operator (exact balanced hash ranges), and otherwise from the
proportional correction of :func:`~repro.elastic.skew.rebalanced_fractions`
(size each range inversely to its measured load density).

Decision audit: deliberations are recorded like any controller's, with
trigger ``split`` when a hot instance forced a rebalance and ``merge``
when a cold group was reset to uniform fractions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.load_model import LoadModel
from ..elastic.skew import rebalanced_fractions
from ..obs.log import get_logger
from .controller import MigrationController
from .state import MigrationCostModel

__all__ = ["Repartition", "ElasticityController"]

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class Repartition:
    """Reassign key-range fractions across one partition group.

    ``fractions[i]`` is the key-space share the group's ``i``-th
    instance should own after the reconfiguration.  The group's host
    nodes stall for ``pause_seconds`` while key ranges (and any keyed
    state) hand over.
    """

    operator: str
    fractions: Tuple[float, ...]
    pause_seconds: float


class ElasticityController(MigrationController):
    """Rebalances key ranges inside partition groups; never migrates.

    Parameters
    ----------
    hot_threshold:
        A group rebalances when its hottest instance's load exceeds
        ``hot_threshold`` times the group mean.
    cold_load:
        A group whose total measured load is below this (CPU fraction)
        while its fractions are skewed is reset to uniform — the merge
        analogue: skew corrections are not worth tracking on a cold
        group.
    cooldown:
        Seconds a just-rebalanced group is pinned (default
        ``5 * period``).
    min_fraction:
        Floor on any instance's key-range share.
    histograms:
        Optional ``{base operator: KeyHistogram}``; listed groups get
        exact balanced ranges instead of the proportional correction.
    """

    def __init__(
        self,
        period: float = 1.0,
        hot_threshold: float = 1.5,
        cold_load: float = 0.05,
        cooldown: Optional[float] = None,
        min_fraction: float = 0.01,
        smoothing: float = 0.5,
        cost_model: Optional[MigrationCostModel] = None,
        state_tuples: Optional[Mapping[str, float]] = None,
        histograms: Optional[Mapping[str, object]] = None,
        slo_watcher: Optional[object] = None,
    ) -> None:
        super().__init__(period)
        if hot_threshold <= 1.0:
            raise ValueError("hot_threshold must be > 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.hot_threshold = hot_threshold
        self.cold_load = cold_load
        self.cooldown = 5.0 * period if cooldown is None else float(cooldown)
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.min_fraction = min_fraction
        self.smoothing = smoothing
        self.cost_model = cost_model or MigrationCostModel()
        self.state_tuples: Dict[str, float] = dict(state_tuples or {})
        self.histograms = dict(histograms or {})
        self.slo_watcher = slo_watcher
        #: Every repartition this controller issued, in time order.
        self.history: List[Repartition] = []
        #: Current fractions per group (authoritative once we reconfigure).
        self._fractions: Dict[str, Tuple[float, ...]] = {}
        self._last_action: Dict[str, float] = {}
        self._smoothed_loads: Dict[str, float] = {}

    def decide(
        self,
        now: float,
        utilizations: np.ndarray,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        operator_loads: Optional[Mapping[str, float]] = None,
    ) -> List[Repartition]:
        record = None
        if self.telemetry is not None:
            watcher = self.slo_watcher
            burning = watcher is not None and watcher.burning
            record = self.telemetry.begin(
                trigger="slo-burn" if burning else "periodic",
                controller="elastic",
                loads=[float(value) for value in utilizations],
                burn_rate=(
                    float(watcher.last_burn_rate) if burning else None
                ),
            )
        groups = model.graph.partition_groups
        if not groups:
            if record is not None:
                record.reason = "no-partition-groups"
            return []
        if operator_loads:
            for name in operator_loads:
                value = float(operator_loads[name])
                previous = self._smoothed_loads.get(name, value)
                self._smoothed_loads[name] = (
                    self.smoothing * value
                    + (1 - self.smoothing) * previous
                )
        actions: List[Repartition] = []
        saw_split = False
        saw_cooldown = False
        for base in sorted(groups):
            group = groups[base]
            current = self._fractions.get(base, tuple(group.fractions))
            loads = [
                self._smoothed_loads.get(part, 0.0)
                for part in group.parts
            ]
            total = sum(loads)
            if total <= 0.0:
                continue
            mean = total / group.ways
            hottest = max(range(group.ways), key=lambda i: (loads[i], -i))
            coldest = min(range(group.ways), key=lambda i: (loads[i], i))
            imbalance = loads[hottest] / mean
            uniform_gap = max(
                abs(f - 1.0 / group.ways) for f in current
            )
            hot = imbalance > self.hot_threshold
            cold_reset = (
                total < self.cold_load and uniform_gap > 1e-6
            )
            if not hot and not cold_reset:
                continue
            cooling = (
                now - self._last_action.get(base, -math.inf)
                < self.cooldown
            )
            if cooling:
                saw_cooldown = True
                if record is not None:
                    record.add_candidate(
                        base, hottest, coldest, -imbalance,
                        "cooldown-pinned",
                    )
                continue
            if hot:
                histogram = self.histograms.get(base)
                if histogram is not None:
                    # Route selectivities are tuple-mass shares; the
                    # histogram's balanced cut is expressed in key-range
                    # widths, so convert via its observed distribution.
                    fractions = histogram.observed_shares(
                        histogram.fractions(group.ways)
                    )
                else:
                    fractions = rebalanced_fractions(
                        current, loads, min_fraction=self.min_fraction
                    )
                saw_split = True
            else:
                fractions = (1.0 / group.ways,) * group.ways
            pause = self.cost_model.pause_seconds(
                self.state_tuples.get(base, 0.0)
            )
            move = Repartition(
                operator=base,
                fractions=tuple(float(f) for f in fractions),
                pause_seconds=pause,
            )
            _LOG.debug(
                "t=%.2fs repartition %s: imbalance %.3f, fractions %s "
                "(pause %.3fs)",
                now, base, imbalance, fractions, pause,
            )
            actions.append(move)
            self._fractions[base] = move.fractions
            self._last_action[base] = now
            if record is not None:
                record.add_candidate(
                    base, hottest, coldest, -imbalance, "chosen"
                )
        if record is not None:
            record.actions = len(actions)
            if actions:
                record.trigger = "split" if saw_split else "merge"
                record.reason = "repartition"
            elif saw_cooldown:
                record.reason = "repartition-cooldown"
            else:
                record.reason = "partitions-balanced"
        self.history.extend(actions)
        return actions
