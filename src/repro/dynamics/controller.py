"""Dynamic operator migration controllers.

The alternative the paper argues against for short-term variations:
watch node loads and move operators at run time.  A controller is polled
by the simulator every ``period`` seconds with the utilization each node
accumulated over the last period and may return migrations; each
migration stalls both endpoint nodes for a state-dependent pause
(:class:`~repro.dynamics.state.MigrationCostModel`).

:class:`LoadBalancingController` reproduces the classic reactive scheme:
when the most loaded node exceeds the least loaded by more than a
threshold, move the best-fitting operator across.  Its weakness is
exactly the paper's point — by the time a short burst is observed, paying
hundreds of milliseconds of stall to chase it makes latency worse.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..core.load_model import LoadModel
from ..obs.log import get_logger
from .state import MigrationCostModel

__all__ = ["Migration", "MigrationController", "LoadBalancingController"]

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class Migration:
    """One operator move decided by a controller."""

    operator: str
    source: int
    target: int
    pause_seconds: float


class MigrationController(abc.ABC):
    """Interface the simulator polls for migration decisions."""

    def __init__(self, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError("control period must be > 0")
        self.period = period
        #: Decision-audit collector (``repro.obs.decisions``).  The
        #: simulator attaches one only while tracing is enabled;
        #: controllers must guard every record-building line on
        #: ``self.telemetry is not None`` so an untraced run allocates
        #: no decision records at all.
        self.telemetry: Optional[object] = None
        #: Optional :class:`repro.obs.slo.SloWatcher`; when it reports
        #: ``burning``, deliberations are recorded as SLO-triggered.
        self.slo_watcher: Optional[object] = None

    @abc.abstractmethod
    def decide(
        self,
        now: float,
        utilizations: np.ndarray,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        operator_loads: Optional[Mapping[str, float]] = None,
    ) -> List[Migration]:
        """Return migrations to apply at time ``now`` (may be empty).

        ``operator_loads`` carries each operator's measured CPU demand
        (fraction of one CPU) over the last control period — the per-
        operator statistics a Borealis-style monitor provides.
        """


class LoadBalancingController(MigrationController):
    """Reactive pairwise balancing with state-aware migration costs."""

    def __init__(
        self,
        period: float = 1.0,
        imbalance_threshold: float = 0.2,
        max_moves_per_period: int = 1,
        cooldown: Optional[float] = None,
        cost_model: Optional[MigrationCostModel] = None,
        state_tuples: Optional[Mapping[str, float]] = None,
        slo_watcher: Optional[object] = None,
    ) -> None:
        """``state_tuples`` maps operator name to estimated state size
        (see :func:`repro.dynamics.state.graph_state_tuples`); operators
        not listed are treated as stateless.  ``cooldown`` (default
        ``5 * period``) is how long a just-moved operator is pinned, the
        usual anti-thrashing guard in reactive balancers.
        ``slo_watcher``, if given, marks deliberations that happen while
        the watcher is burning as SLO-triggered in the decision audit
        (the simulator feeds the watcher every sink latency sample)."""
        super().__init__(period)
        self.slo_watcher = slo_watcher
        if imbalance_threshold < 0:
            raise ValueError("imbalance threshold must be >= 0")
        if max_moves_per_period < 1:
            raise ValueError("max_moves_per_period must be >= 1")
        self.imbalance_threshold = imbalance_threshold
        self.max_moves_per_period = max_moves_per_period
        self.cooldown = 5.0 * period if cooldown is None else float(cooldown)
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.cost_model = cost_model or MigrationCostModel()
        self.state_tuples: Dict[str, float] = dict(state_tuples or {})
        #: EWMA factor for utilization smoothing; reactive balancers must
        #: filter per-period measurement noise or they chase it.
        self.smoothing = 0.5
        #: All migrations this controller has issued, for inspection.
        self.history: List[Migration] = []
        self._last_moved: Dict[str, float] = {}
        self._smoothed: Optional[np.ndarray] = None
        self._smoothed_loads: Dict[str, float] = {}

    def decide(
        self,
        now: float,
        utilizations: np.ndarray,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        operator_loads: Optional[Mapping[str, float]] = None,
    ) -> List[Migration]:
        moves: List[Migration] = []
        raw = np.asarray(utilizations, dtype=float)
        # Decision audit: build a record only when the simulator attached
        # a telemetry collector (tracing on) — the untraced path must not
        # allocate anything here.
        record = None
        if self.telemetry is not None:
            watcher = self.slo_watcher
            burning = watcher is not None and watcher.burning
            record = self.telemetry.begin(
                trigger="slo-burn" if burning else "periodic",
                controller="balance",
                loads=[float(value) for value in raw],
                burn_rate=(
                    float(watcher.last_burn_rate) if burning else None
                ),
            )
        if self._smoothed is None or self._smoothed.shape != raw.shape:
            self._smoothed = raw.copy()
        else:
            self._smoothed = (
                self.smoothing * raw + (1 - self.smoothing) * self._smoothed
            )
        utilizations = self._smoothed.copy()
        if operator_loads is not None:
            for name, value in operator_loads.items():
                previous = self._smoothed_loads.get(name, float(value))
                self._smoothed_loads[name] = (
                    self.smoothing * float(value)
                    + (1 - self.smoothing) * previous
                )
        working = dict(assignment)

        def load_of(name: str) -> float:
            measured = self._smoothed_loads.get(name)
            if measured is not None:
                return measured
            # Monitoring fallback, per operator: apportion demand by
            # coefficient mass when this operator has no measured
            # statistics yet (other operators having some must not make
            # an unmeasured one look idle and unmovable).
            return float(model.coefficients[model.operator_index(name)].sum())

        noop_reason = "below-threshold"
        exhausted = False
        for _ in range(self.max_moves_per_period):
            busiest = int(np.argmax(utilizations))
            calmest = int(np.argmin(utilizations))
            gap = utilizations[busiest] - utilizations[calmest]
            if busiest == calmest or gap < self.imbalance_threshold:
                noop_reason = "below-threshold"
                break
            # Move the operator whose measured demand best matches half
            # the gap — the standard even-out move.  Never move more than
            # the whole gap (that would just flip the imbalance), and
            # never a zero-demand operator (nothing to even out) — such
            # candidates are skipped, not allowed to abandon the period.
            target = gap / 2.0 * capacities[busiest]
            candidates = []
            for name, node in working.items():
                if node != busiest:
                    continue
                cooling = (
                    now - self._last_moved.get(name, -math.inf)
                    < self.cooldown
                )
                if cooling:
                    if record is not None:
                        record.add_candidate(
                            name, busiest, calmest,
                            -abs(load_of(name) - target),
                            "cooldown-pinned",
                        )
                else:
                    candidates.append(name)
            if not candidates:
                noop_reason = "cooldown-pinned"
                _LOG.debug(
                    "t=%.2fs gap %.3f over threshold but node %d has no "
                    "movable operator (all cooling down)",
                    now, gap, busiest,
                )
                break
            weighed = [
                (name, load_of(name) / capacities[busiest])
                for name in candidates
            ]
            movable = [
                (name, transfer)
                for name, transfer in weighed
                if 0.0 < transfer <= gap
            ]
            if record is not None:
                in_range = {name for name, _ in movable}
                for name, transfer in weighed:
                    if name not in in_range:
                        record.add_candidate(
                            name, busiest, calmest,
                            -abs(
                                transfer * capacities[busiest] - target
                            ),
                            "out-of-range",
                        )
            if not movable:
                noop_reason = "no-valid-candidate"
                _LOG.debug(
                    "t=%.2fs gap %.3f over threshold but every candidate "
                    "transfer on node %d is zero or exceeds the gap",
                    now, gap, busiest,
                )
                break
            best, transfer = min(
                movable,
                key=lambda item: abs(
                    item[1] * capacities[busiest] - target
                ),
            )
            if record is not None:
                for name, option in movable:
                    record.add_candidate(
                        name, busiest, calmest,
                        -abs(option * capacities[busiest] - target),
                        "chosen" if name == best else "outscored",
                    )
            pause = self.cost_model.pause_seconds(
                self.state_tuples.get(best, 0.0)
            )
            move = Migration(
                operator=best, source=busiest, target=calmest,
                pause_seconds=pause,
            )
            _LOG.debug(
                "t=%.2fs migrate %s: node %d -> %d (gap %.3f, "
                "transfer %.3f, pause %.3fs)",
                now, best, busiest, calmest, gap, transfer, pause,
            )
            moves.append(move)
            self._last_moved[best] = now
            working[best] = calmest
            utilizations[busiest] -= transfer
            utilizations[calmest] += (
                transfer * capacities[busiest] / capacities[calmest]
            )
        else:
            exhausted = True
        if record is not None:
            record.actions = len(moves)
            if moves:
                # "max-moves-exhausted" with actions > 0 flags that the
                # per-period budget — not restored balance — stopped the
                # deliberation.
                record.reason = (
                    "max-moves-exhausted" if exhausted else "migrate"
                )
            else:
                record.reason = noop_reason
        self.history.extend(moves)
        return moves
