"""Operator state-size modelling for migration costs.

Section 1 of the paper grounds why static resilient placement matters:
"reactive load distribution requires costly operator state migration and
multi-node synchronization.  In our stream processing prototype, the
base overhead of run-time operator migration is on the order of a few
hundred milliseconds.  Operators with large states will have longer
migration times depending on the amount of state transferred."

This module estimates how much state each operator holds at given input
rates, in tuples:

* stateless per-tuple operators (map, filter, union, delay) hold none;
* a window aggregate holds roughly one window of input, ``1/selectivity``
  tuples (a tumbling window of ``k`` tuples has selectivity ``1/k``);
* a window join holds both input windows, ``window * (r_u + r_v)``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..graphs.operators import (
    Aggregate,
    Operator,
    VariableSelectivityOp,
    WindowJoin,
)
from ..graphs.query_graph import QueryGraph

__all__ = ["operator_state_tuples", "graph_state_tuples", "MigrationCostModel"]


def operator_state_tuples(
    operator: Operator, input_rates: Sequence[float]
) -> float:
    """Estimated tuples of state held by an operator at the given rates."""
    if isinstance(operator, WindowJoin):
        r_u, r_v = (float(r) for r in input_rates)
        return operator.window * (r_u + r_v)
    if isinstance(operator, Aggregate):
        s = operator.selectivities[0]
        return 1.0 / s if s > 0 else 0.0
    if isinstance(operator, VariableSelectivityOp):
        return 0.0
    return 0.0


def graph_state_tuples(
    graph: QueryGraph, input_rates: Sequence[float]
) -> Dict[str, float]:
    """Per-operator state estimates at steady-state stream rates."""
    rates = graph.stream_rates(input_rates)
    return {
        op.name: operator_state_tuples(
            op, [rates[s] for s in graph.inputs_of(op.name)]
        )
        for op in graph.operators()
    }


class MigrationCostModel:
    """Turns state size into a migration pause (seconds of node stall).

    ``pause = base_overhead + state_tuples * per_tuple_transfer``.  The
    default base of 300 ms matches the paper's "few hundred milliseconds"
    prototype measurement.  Both the source and destination node stall
    for the pause (state serialization on one side, installation on the
    other), and the operator's queued work waits.
    """

    def __init__(
        self,
        base_overhead: float = 0.3,
        per_tuple_transfer: float = 2e-5,
    ) -> None:
        if base_overhead < 0 or per_tuple_transfer < 0:
            raise ValueError("migration cost parameters must be >= 0")
        self.base_overhead = base_overhead
        self.per_tuple_transfer = per_tuple_transfer

    def pause_seconds(self, state_tuples: float) -> float:
        if state_tuples < 0:
            raise ValueError("state size must be >= 0")
        return self.base_overhead + self.per_tuple_transfer * state_tuples
