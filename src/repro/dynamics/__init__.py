"""Dynamic operator migration — the alternative the paper argues against
for short-term load variations (Section 1) — and fault-driven failover
(:mod:`repro.dynamics.failover`), which even a static-resilient
deployment needs when a node crashes outright."""

from .controller import LoadBalancingController, Migration, MigrationController
from .elasticity import ElasticityController, Repartition
from .failover import (
    FAILOVER_POLICIES,
    FailoverController,
    residual_volume_ratio,
)
from .state import (
    MigrationCostModel,
    graph_state_tuples,
    operator_state_tuples,
)

__all__ = [
    "ElasticityController",
    "FAILOVER_POLICIES",
    "FailoverController",
    "LoadBalancingController",
    "Repartition",
    "Migration",
    "MigrationController",
    "MigrationCostModel",
    "graph_state_tuples",
    "operator_state_tuples",
    "residual_volume_ratio",
]
