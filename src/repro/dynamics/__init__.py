"""Dynamic operator migration — the alternative the paper argues against
for short-term load variations (Section 1)."""

from .controller import LoadBalancingController, Migration, MigrationController
from .state import (
    MigrationCostModel,
    graph_state_tuples,
    operator_state_tuples,
)

__all__ = [
    "LoadBalancingController",
    "Migration",
    "MigrationController",
    "MigrationCostModel",
    "graph_state_tuples",
    "operator_state_tuples",
]
