"""Failover: reassigning operators off crashed nodes.

Where :class:`~repro.dynamics.controller.LoadBalancingController` chases
load, a :class:`FailoverController` reacts to *faults*: the engine calls
``on_node_failed`` the instant a ``node.crash`` fault fires, before any
new work lands, and the controller returns migrations that move the dead
node's operators to survivors.  Crashed state is lost, so each move pays
only the base migration overhead (re-install from scratch) and stalls
only the destination node.

Two target policies:

* ``"volume"`` — the ROD-aware policy.  A crash deletes the failed
  node's hyperplane row from the feasible set; each displaced operator
  goes to the surviving node that maximizes the *residual* feasible-set
  volume ratio (QMC, deterministic), i.e. the reassignment that keeps
  the degraded cluster resilient to the most workloads.
* ``"least_loaded"`` — the classic baseline: each displaced operator
  goes to the survivor with the smallest coefficient-mass load per unit
  capacity.

With ``failback=True`` the controller also moves displaced operators
back to their original node on ``node.recover`` (paying a full
state-dependent pause this time — the operator is live and has state).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.feasible_set import FeasibleSet
from ..core.load_model import LoadModel
from ..obs.log import get_logger
from .controller import Migration, MigrationController
from .state import MigrationCostModel

__all__ = ["FAILOVER_POLICIES", "FailoverController", "residual_volume_ratio"]

FAILOVER_POLICIES = ("volume", "least_loaded")

_LOG = get_logger(__name__)


def residual_volume_ratio(
    model: LoadModel,
    capacities: Sequence[float],
    assignment: Mapping[str, int],
    failed_nodes: Sequence[int] = (),
    samples: int = 512,
    ignore_stranded: bool = False,
) -> float:
    """Feasible-set/ideal volume ratio of the surviving sub-cluster.

    Dropping a node deletes its hyperplane row *and* its capacity from
    the feasible set.  An operator still assigned to a failed node is
    *stranded*: no input-rate point that routes work through it can be
    served, so any stranded operator with nonzero coefficient mass
    collapses the ratio to ``0.0`` — which is exactly why an
    un-failed-over plan scores so poorly here.  ``ignore_stranded=True``
    instead drops stranded operators from the constraint rows (the
    controller's incremental target search rescues them one at a time
    and must not see the not-yet-rescued ones as fatal).  The ideal set
    (the denominator) keeps the full column totals: the ratio is
    measured against what the intact cluster could have served.
    """
    failed = set(int(node) for node in failed_nodes)
    capacities = np.asarray(capacities, dtype=float)
    alive = [n for n in range(capacities.shape[0]) if n not in failed]
    if not alive:
        return 0.0
    rows = np.zeros((len(alive), model.num_variables))
    index_of = {node: i for i, node in enumerate(alive)}
    for name, node in assignment.items():
        if node in failed:
            if not ignore_stranded and float(
                model.coefficients[model.operator_index(name)].sum()
            ) > 0.0:
                return 0.0
            continue
        rows[index_of[node]] += model.coefficients[
            model.operator_index(name)
        ]
    feasible = FeasibleSet(
        node_coefficients=rows,
        capacities=capacities[alive],
        column_totals=model.column_totals(),
    )
    return float(feasible.volume_ratio(samples=samples))


class FailoverController(MigrationController):
    """Reassigns operators off failed nodes; no-op between faults."""

    def __init__(
        self,
        period: float = 1.0,
        policy: str = "volume",
        samples: int = 512,
        cost_model: Optional[MigrationCostModel] = None,
        state_tuples: Optional[Mapping[str, float]] = None,
        failback: bool = False,
    ) -> None:
        """``samples`` sizes the QMC residual-volume estimate per
        candidate target (the ``"volume"`` policy tries every surviving
        node for every displaced operator)."""
        super().__init__(period)
        if policy not in FAILOVER_POLICIES:
            raise ValueError(
                f"unknown failover policy {policy!r}; "
                f"expected one of {FAILOVER_POLICIES}"
            )
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.policy = policy
        self.samples = samples
        self.cost_model = cost_model or MigrationCostModel()
        self.state_tuples: Dict[str, float] = dict(state_tuples or {})
        self.failback = failback
        #: Every migration this controller issued, in time order.
        self.history: List[Migration] = []
        #: Pre-fault home node per operator (captured on first callback).
        self._home: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------- polling

    def decide(
        self,
        now: float,
        utilizations: np.ndarray,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        operator_loads: Optional[Mapping[str, float]] = None,
    ) -> List[Migration]:
        """Failover is event-driven; periodic polls never move anything."""
        self._capture_home(assignment)
        if self.telemetry is not None:
            record = self.telemetry.begin(
                trigger="periodic",
                controller="failover",
                loads=[float(value) for value in utilizations],
            )
            record.reason = "event-driven-idle"
        return []

    # ------------------------------------------------------- fault hooks

    def on_node_failed(
        self,
        now: float,
        node: int,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        failed_nodes: Sequence[int],
    ) -> List[Migration]:
        """Migrations evacuating ``node``; called before new work lands.

        ``assignment`` is the routing table at the instant of the crash
        (the evacuated operators are still mapped to ``node``);
        ``failed_nodes`` includes ``node`` itself.
        """
        self._capture_home(assignment)
        record = None
        if self.telemetry is not None:
            record = self.telemetry.begin(
                trigger="fault", controller="failover", loads=(),
                node=int(node),
            )
        failed = set(int(n) for n in failed_nodes) | {int(node)}
        alive = [
            n for n in range(len(capacities)) if n not in failed
        ]
        if not alive:
            _LOG.debug(
                "t=%.2fs node %d failed but no survivors remain", now, node
            )
            if record is not None:
                record.reason = "no-survivors"
            return []
        displaced = sorted(
            (name for name, host in assignment.items() if host == node),
            key=lambda name: (
                -float(model.coefficients[model.operator_index(name)].sum()),
                name,
            ),
        )
        if record is not None and not displaced:
            record.reason = "nothing-displaced"
        working = dict(assignment)
        moves: List[Migration] = []
        for name in displaced:
            # Score every surviving candidate (higher is better): the
            # volume policy scores by residual feasible-volume ratio, the
            # baseline by negated load per unit capacity.
            if self.policy == "volume":
                scored = self._volume_scores(
                    name, working, model, capacities,
                    tuple(sorted(failed)), alive,
                )
            else:
                scored = self._least_loaded_scores(
                    working, model, capacities, alive
                )
            target = scored[0][0]
            best_score = -float("inf")
            for candidate, score in scored:
                if score > best_score + 1e-12:
                    best_score = score
                    target = candidate
            if record is not None:
                for candidate, score in scored:
                    record.add_candidate(
                        name, int(node), candidate, score,
                        "chosen" if candidate == target else "outscored",
                    )
            # Crashed state is lost: pay only the base overhead, and only
            # the destination stalls (nothing to serialize on a dead node).
            pause = self.cost_model.pause_seconds(0.0)
            move = Migration(
                operator=name, source=node, target=target,
                pause_seconds=pause,
            )
            _LOG.debug(
                "t=%.2fs failover %s: node %d -> %d (%s policy)",
                now, name, node, target, self.policy,
            )
            moves.append(move)
            working[name] = target
        if record is not None and displaced:
            record.actions = len(moves)
            record.reason = "migrate"
        self.history.extend(moves)
        return moves

    def on_node_recovered(
        self,
        now: float,
        node: int,
        assignment: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        failed_nodes: Sequence[int],
    ) -> List[Migration]:
        """Optional failback: return displaced operators to ``node``."""
        record = None
        if self.telemetry is not None:
            record = self.telemetry.begin(
                trigger="recover", controller="failover", loads=(),
                node=int(node),
            )
        if not self.failback or self._home is None:
            if record is not None:
                record.reason = (
                    "failback-disabled" if not self.failback
                    else "nothing-displaced"
                )
            return []
        moves: List[Migration] = []
        for name, host in assignment.items():
            if self._home.get(name) == node and host != node:
                pause = self.cost_model.pause_seconds(
                    self.state_tuples.get(name, 0.0)
                )
                moves.append(
                    Migration(
                        operator=name, source=host, target=node,
                        pause_seconds=pause,
                    )
                )
                if record is not None:
                    record.add_candidate(
                        name, int(host), int(node), 0.0, "chosen"
                    )
        if record is not None:
            record.actions = len(moves)
            record.reason = "migrate" if moves else "nothing-displaced"
        self.history.extend(moves)
        return moves

    # ------------------------------------------------------------ internals

    def _capture_home(self, assignment: Mapping[str, int]) -> None:
        if self._home is None:
            self._home = dict(assignment)

    def _volume_scores(
        self,
        name: str,
        working: Dict[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        failed: Sequence[int],
        alive: List[int],
    ) -> List[tuple]:
        """(candidate, residual-volume ratio) for every survivor."""
        scored = []
        for candidate in alive:
            trial = dict(working)
            trial[name] = candidate
            ratio = residual_volume_ratio(
                model, capacities, trial,
                failed_nodes=failed, samples=self.samples,
                ignore_stranded=True,
            )
            scored.append((candidate, ratio))
        return scored

    @staticmethod
    def _least_loaded_scores(
        working: Mapping[str, int],
        model: LoadModel,
        capacities: np.ndarray,
        alive: List[int],
    ) -> List[tuple]:
        """(candidate, negated load per capacity) for every survivor."""
        load = {n: 0.0 for n in alive}
        for op_name, host in working.items():
            if host in load:
                load[host] += float(
                    model.coefficients[model.operator_index(op_name)].sum()
                )
        return [
            (n, -load[n] / float(capacities[n])) for n in alive
        ]
