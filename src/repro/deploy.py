"""High-level deployment facade.

Ties the whole pipeline — linearize, (optionally) cluster, place,
analyze, simulate, grow — behind one object, so the common path is three
lines:

>>> from repro.deploy import Deployment
>>> from repro.graphs import monitoring_graph
>>> deployment = Deployment.plan(monitoring_graph(2, seed=1), [1.0, 1.0])
>>> 0.0 < deployment.volume_ratio() <= 1.0
True

Everything the facade does is available piecemeal in ``repro.core`` /
``repro.placement`` / ``repro.simulator``; this module only composes.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from .check import check_artifact
from .core.analysis import resilience_summary
from .core.clustering import communication_feasible_set, search_clusterings
from .core.load_model import LoadModel, build_load_model
from .core.plans import Placement
from .core.rod import RodStep, rod_extend, rod_place
from .graphs.query_graph import QueryGraph
from .obs import Observability
from .obs.runs import RunWriter, config_digest, snapshot_from_result
from .obs.trace import JsonlSink, Tracer
from .placement import (
    ConnectedPlacer,
    CorrelationPlacer,
    LLFPlacer,
    MilpBalancePlacer,
    OptimalPlacer,
    RandomPlacer,
)
from .placement.rod_placer import emit_rod_steps
from .simulator.engine import Simulator
from .simulator.feasibility import FeasibilityProbe
from .simulator.metrics import SimulationResult
from .workload.rates import rate_series

__all__ = ["Deployment"]

TransferCosts = Union[float, Mapping[str, float]]

STRATEGIES = (
    "rod", "llf", "connected", "correlation", "random", "optimal", "milp",
)


def _digest_array(array: np.ndarray) -> str:
    """Short content hash of a rate series for run manifests."""
    return config_digest(array.tolist())


def _build_baseline(
    strategy: str,
    model: LoadModel,
    seed: Optional[int],
    tracer: Optional[Tracer] = None,
):
    if strategy == "llf":
        return LLFPlacer()
    if strategy == "connected":
        return ConnectedPlacer()
    if strategy == "random":
        return RandomPlacer(seed=seed)
    if strategy == "correlation":
        return CorrelationPlacer(
            rate_series(model.num_variables, 128, seed=seed or 0)
        )
    if strategy == "optimal":
        return OptimalPlacer()
    if strategy == "milp":
        return MilpBalancePlacer(tracer=tracer)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
    )


class Deployment:
    """A placed query graph plus everything you do with it afterwards."""

    def __init__(
        self,
        placement: Placement,
        transfer_costs: TransferCosts = 0.0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.placement = placement
        self.transfer_costs = transfer_costs
        #: Observability bundle (metrics registry + tracer) every phase
        #: of this deployment records into; defaults to a fresh registry
        #: with tracing disabled.
        self.obs = obs if obs is not None else Observability()

    # ------------------------------------------------------------- planning

    @classmethod
    def plan(
        cls,
        graph: QueryGraph,
        capacities: Sequence[float],
        strategy: str = "rod",
        lower_bound: Optional[Sequence[float]] = None,
        transfer_costs: TransferCosts = 0.0,
        cluster: Optional[bool] = None,
        seed: Optional[int] = None,
        verify: bool = True,
        obs: Optional[Observability] = None,
    ) -> "Deployment":
        """Plan a deployment of ``graph`` onto a cluster.

        ``strategy`` picks the placement algorithm (``"rod"`` by
        default).  Non-linear graphs are linearized automatically.  When
        ``transfer_costs`` are non-zero, operator clustering (Section
        6.3) runs before ROD by default (``cluster=None`` means "auto");
        pass ``cluster=False`` to skip it or ``cluster=True`` to force
        it.  Clustering is only supported with the ROD strategy.

        With ``verify=True`` (the default) the static verifiers of
        :mod:`repro.check` gate both ends of planning: the graph and
        derived load model before placement, the finished plan after.
        Error-severity diagnostics raise
        :class:`~repro.check.CheckError` instead of surfacing later as
        NumPy shape errors or silently-wrong volumes.

        ``obs``, if given, profiles every planning phase (model build,
        verification, placement search) into its metrics registry and —
        when its tracer is enabled — streams per-assignment
        ``placement.step`` events; the resulting deployment keeps the
        bundle, so ``summary()`` reports where planning time went.
        """
        obs = obs if obs is not None else Observability()
        with obs.phase("plan.load_model"):
            model = build_load_model(graph)
        if verify:
            with obs.phase("plan.verify_model"):
                check_artifact(model).raise_if_errors()
        nonzero_transfer = (
            any(float(v) > 0 for v in transfer_costs.values())
            if isinstance(transfer_costs, Mapping)
            else float(transfer_costs) > 0
        )
        use_clustering = (
            nonzero_transfer if cluster is None else bool(cluster)
        )
        if use_clustering and strategy != "rod":
            raise ValueError(
                "operator clustering is only supported with the ROD "
                "strategy"
            )
        if use_clustering and not nonzero_transfer:
            raise ValueError(
                "clustering was requested but transfer costs are zero"
            )
        if strategy == "rod":
            if use_clustering:
                with obs.phase("plan.place.rod+clustering"):
                    result = search_clusterings(
                        model,
                        capacities,
                        transfer_costs,
                        lower_bound=lower_bound,
                    )
                    placement = result.placement
            else:
                tracing = obs.tracer.enabled
                steps: Optional[List[RodStep]] = [] if tracing else None
                with obs.phase("plan.place.rod"):
                    placement = rod_place(
                        model, capacities, lower_bound=lower_bound,
                        seed=seed, steps=steps,
                    )
                if tracing and steps is not None:
                    emit_rod_steps(obs.tracer, steps)
        else:
            if lower_bound is not None:
                raise ValueError(
                    "lower bounds are only supported with the ROD strategy"
                )
            placer = _build_baseline(strategy, model, seed, obs.tracer)
            with obs.phase(f"plan.place.{strategy}"):
                placement = placer.place(model, capacities)
        if verify:
            with obs.phase("plan.verify_plan"):
                check_artifact(placement).raise_if_errors()
        return cls(placement, transfer_costs=transfer_costs, obs=obs)

    def grow(self, new_graph: QueryGraph) -> "Deployment":
        """Add new operators without moving deployed ones (rod_extend)."""
        with self.obs.phase("plan.grow"):
            new_model = build_load_model(new_graph)
            extended = rod_extend(
                self.placement,
                new_model,
                lower_bound=self.placement.lower_bound,
            )
        return Deployment(
            extended, transfer_costs=self.transfer_costs, obs=self.obs
        )

    # -------------------------------------------------------------- metrics

    @property
    def model(self) -> LoadModel:
        return self.placement.model

    def volume_ratio(self, samples: int = 4096) -> float:
        """Feasible-set size relative to the ideal, communication-aware
        when transfer costs were declared.

        The QMC sampling is profiled as the ``feasible_set.volume_ratio``
        phase (sample count attached to the trace event).
        """
        with self.obs.phase(
            "feasible_set.volume_ratio", samples=samples
        ):
            if self._has_transfer():
                return communication_feasible_set(
                    self.placement, self.transfer_costs
                ).volume_ratio(samples=samples)
            return self.placement.volume_ratio(samples=samples)

    def summary(self) -> str:
        """Placement, resilience analysis, headline metrics and — when
        phases were profiled — where the wall-clock time went."""
        parts = [self.placement.describe(), ""]
        parts.append(resilience_summary(self.placement))
        parts.append("")
        parts.append(
            f"feasible-set ratio to ideal: {self.volume_ratio():.4f}"
        )
        if self._has_transfer():
            parts.append(
                f"inter-node arcs: {self.placement.inter_node_arcs()}"
            )
        profile = self.obs.phase_report()
        if profile:
            parts.append("")
            parts.append("profile (wall-clock per phase):")
            parts.append(profile)
        return "\n".join(parts)

    def _has_transfer(self) -> bool:
        if isinstance(self.transfer_costs, Mapping):
            return any(float(v) > 0 for v in self.transfer_costs.values())
        return float(self.transfer_costs) > 0

    # ------------------------------------------------------------ execution

    def simulate(
        self,
        rate_series: Optional[np.ndarray] = None,
        rates: Optional[Sequence[float]] = None,
        duration: Optional[float] = None,
        trace_out: Optional[str] = None,
        runs_root: Optional[str] = None,
        run_id: Optional[str] = None,
        run_labels: Optional[Mapping[str, str]] = None,
        **simulator_kwargs,
    ) -> SimulationResult:
        """Replay a workload through the discrete-event simulator.

        ``trace_out`` names a JSONL file to stream the run's structured
        events to (see :mod:`repro.obs.trace`); parse it back with
        :func:`repro.obs.read_trace` and render it with
        ``repro.obs.timeline`` or ``repro-rod trace``.  Without it, the
        deployment's own tracer applies (disabled by default, so the
        simulator hot path pays nothing).  Run counters land in
        ``self.obs.registry`` either way.

        ``runs_root`` records the whole invocation as a run directory in
        the run registry (:mod:`repro.obs.runs`): a provenance manifest,
        the JSONL trace (written there automatically unless
        ``trace_out`` or an explicit ``tracer`` claimed the stream), the
        ``result.json`` metrics snapshot and the registry dump.  Browse
        with ``repro-rod runs list``, diff with ``repro-rod compare``,
        render with ``repro-rod report``.  ``run_id`` overrides the
        generated timestamp-digest id; ``run_labels`` attaches free-form
        provenance labels.
        """
        tracer = simulator_kwargs.pop("tracer", None)
        sink = None
        if trace_out is not None:
            if tracer is not None:
                raise ValueError(
                    "pass either trace_out or an explicit tracer, not both"
                )
            sink = JsonlSink(trace_out)
            tracer = Tracer(sink)
        writer: Optional[RunWriter] = None
        if runs_root is not None:
            config: dict = {
                "graph": self.model.graph.name,
                "step_seconds": simulator_kwargs.get("step_seconds", 0.1),
                "scheduling": simulator_kwargs.get("scheduling", "fifo"),
                "arrival_kind": simulator_kwargs.get(
                    "arrival_kind", "deterministic"
                ),
            }
            if rates is not None:
                config["rates"] = [float(r) for r in rates]
                config["duration"] = duration
            elif rate_series is not None:
                series = np.asarray(rate_series, dtype=float)
                config["rate_series_shape"] = list(series.shape)
                config["rate_series_digest"] = _digest_array(series)
            writer = RunWriter(
                root=runs_root,
                kind="simulate",
                run_id=run_id,
                config=config,
                seed=simulator_kwargs.get("seed"),
                placement=self.placement.to_document(),
                labels=run_labels,
            )
            if tracer is None:
                tracer = Tracer(writer.trace_sink())
        if tracer is None:
            tracer = self.obs.tracer
        metrics = simulator_kwargs.pop("metrics", self.obs.registry)
        try:
            simulator = Simulator(
                self.placement,
                transfer_costs=self.transfer_costs,
                tracer=tracer,
                metrics=metrics,
                **simulator_kwargs,
            )
            with self.obs.phase("simulator.run"):
                result = simulator.run(
                    rate_series=rate_series, rates=rates, duration=duration
                )
            if writer is not None:
                writer.finish(
                    snapshot=snapshot_from_result(result),
                    registry=metrics,
                    sim_seconds=result.duration,
                )
                writer = None
            return result
        finally:
            if sink is not None:
                sink.close()
            if writer is not None:
                # The simulator raised before the run completed; seal the
                # directory with what exists so the registry never holds
                # an unreadable half-run.
                writer.finish()

    def probe(
        self,
        input_rates: Sequence[float],
        duration: float = 10.0,
    ) -> bool:
        """Borealis-style feasibility probe at a constant rate point."""
        probe = FeasibilityProbe(
            duration=duration,
            transfer_costs=self.transfer_costs,
            tracer=self.obs.tracer,
        )
        with self.obs.phase("feasibility.probe"):
            return probe.is_feasible(self.placement, input_rates)

    def __repr__(self) -> str:
        return (
            f"Deployment({self.model.graph.name!r}, "
            f"nodes={self.placement.num_nodes}, "
            f"operators={self.model.num_operators})"
        )
