"""High-level deployment facade.

Ties the whole pipeline — linearize, (optionally) cluster, place,
analyze, simulate, grow — behind one object, so the common path is three
lines:

>>> from repro.deploy import Deployment
>>> from repro.graphs import monitoring_graph
>>> deployment = Deployment.plan(monitoring_graph(2, seed=1), [1.0, 1.0])
>>> 0.0 < deployment.volume_ratio() <= 1.0
True

Everything the facade does is available piecemeal in ``repro.core`` /
``repro.placement`` / ``repro.simulator``; this module only composes.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from .check import check_artifact
from .core.analysis import resilience_summary
from .core.clustering import communication_feasible_set, search_clusterings
from .core.load_model import LoadModel, build_load_model
from .core.plans import Placement
from .core.rod import rod_extend, rod_place
from .graphs.query_graph import QueryGraph
from .placement import (
    ConnectedPlacer,
    CorrelationPlacer,
    LLFPlacer,
    MilpBalancePlacer,
    OptimalPlacer,
    RandomPlacer,
)
from .simulator.engine import Simulator
from .simulator.feasibility import FeasibilityProbe
from .simulator.metrics import SimulationResult
from .workload.rates import rate_series

__all__ = ["Deployment"]

TransferCosts = Union[float, Mapping[str, float]]

STRATEGIES = (
    "rod", "llf", "connected", "correlation", "random", "optimal", "milp",
)


def _build_baseline(strategy: str, model: LoadModel, seed: Optional[int]):
    if strategy == "llf":
        return LLFPlacer()
    if strategy == "connected":
        return ConnectedPlacer()
    if strategy == "random":
        return RandomPlacer(seed=seed)
    if strategy == "correlation":
        return CorrelationPlacer(
            rate_series(model.num_variables, 128, seed=seed or 0)
        )
    if strategy == "optimal":
        return OptimalPlacer()
    if strategy == "milp":
        return MilpBalancePlacer()
    raise ValueError(
        f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
    )


class Deployment:
    """A placed query graph plus everything you do with it afterwards."""

    def __init__(
        self,
        placement: Placement,
        transfer_costs: TransferCosts = 0.0,
    ) -> None:
        self.placement = placement
        self.transfer_costs = transfer_costs

    # ------------------------------------------------------------- planning

    @classmethod
    def plan(
        cls,
        graph: QueryGraph,
        capacities: Sequence[float],
        strategy: str = "rod",
        lower_bound: Optional[Sequence[float]] = None,
        transfer_costs: TransferCosts = 0.0,
        cluster: Optional[bool] = None,
        seed: Optional[int] = None,
        verify: bool = True,
    ) -> "Deployment":
        """Plan a deployment of ``graph`` onto a cluster.

        ``strategy`` picks the placement algorithm (``"rod"`` by
        default).  Non-linear graphs are linearized automatically.  When
        ``transfer_costs`` are non-zero, operator clustering (Section
        6.3) runs before ROD by default (``cluster=None`` means "auto");
        pass ``cluster=False`` to skip it or ``cluster=True`` to force
        it.  Clustering is only supported with the ROD strategy.

        With ``verify=True`` (the default) the static verifiers of
        :mod:`repro.check` gate both ends of planning: the graph and
        derived load model before placement, the finished plan after.
        Error-severity diagnostics raise
        :class:`~repro.check.CheckError` instead of surfacing later as
        NumPy shape errors or silently-wrong volumes.
        """
        model = build_load_model(graph)
        if verify:
            check_artifact(model).raise_if_errors()
        nonzero_transfer = (
            any(float(v) > 0 for v in transfer_costs.values())
            if isinstance(transfer_costs, Mapping)
            else float(transfer_costs) > 0
        )
        use_clustering = (
            nonzero_transfer if cluster is None else bool(cluster)
        )
        if use_clustering and strategy != "rod":
            raise ValueError(
                "operator clustering is only supported with the ROD "
                "strategy"
            )
        if use_clustering and not nonzero_transfer:
            raise ValueError(
                "clustering was requested but transfer costs are zero"
            )
        if strategy == "rod":
            if use_clustering:
                result = search_clusterings(
                    model,
                    capacities,
                    transfer_costs,
                    lower_bound=lower_bound,
                )
                placement = result.placement
            else:
                placement = rod_place(
                    model, capacities, lower_bound=lower_bound, seed=seed
                )
        else:
            if lower_bound is not None:
                raise ValueError(
                    "lower bounds are only supported with the ROD strategy"
                )
            placement = _build_baseline(strategy, model, seed).place(
                model, capacities
            )
        if verify:
            check_artifact(placement).raise_if_errors()
        return cls(placement, transfer_costs=transfer_costs)

    def grow(self, new_graph: QueryGraph) -> "Deployment":
        """Add new operators without moving deployed ones (rod_extend)."""
        new_model = build_load_model(new_graph)
        extended = rod_extend(
            self.placement,
            new_model,
            lower_bound=self.placement.lower_bound,
        )
        return Deployment(extended, transfer_costs=self.transfer_costs)

    # -------------------------------------------------------------- metrics

    @property
    def model(self) -> LoadModel:
        return self.placement.model

    def volume_ratio(self, samples: int = 4096) -> float:
        """Feasible-set size relative to the ideal, communication-aware
        when transfer costs were declared."""
        if self._has_transfer():
            return communication_feasible_set(
                self.placement, self.transfer_costs
            ).volume_ratio(samples=samples)
        return self.placement.volume_ratio(samples=samples)

    def summary(self) -> str:
        """Placement, resilience analysis and headline metrics."""
        parts = [self.placement.describe(), ""]
        parts.append(resilience_summary(self.placement))
        parts.append("")
        parts.append(
            f"feasible-set ratio to ideal: {self.volume_ratio():.4f}"
        )
        if self._has_transfer():
            parts.append(
                f"inter-node arcs: {self.placement.inter_node_arcs()}"
            )
        return "\n".join(parts)

    def _has_transfer(self) -> bool:
        if isinstance(self.transfer_costs, Mapping):
            return any(float(v) > 0 for v in self.transfer_costs.values())
        return float(self.transfer_costs) > 0

    # ------------------------------------------------------------ execution

    def simulate(
        self,
        rate_series: Optional[np.ndarray] = None,
        rates: Optional[Sequence[float]] = None,
        duration: Optional[float] = None,
        **simulator_kwargs,
    ) -> SimulationResult:
        """Replay a workload through the discrete-event simulator."""
        simulator = Simulator(
            self.placement,
            transfer_costs=self.transfer_costs,
            **simulator_kwargs,
        )
        return simulator.run(
            rate_series=rate_series, rates=rates, duration=duration
        )

    def probe(
        self,
        input_rates: Sequence[float],
        duration: float = 10.0,
    ) -> bool:
        """Borealis-style feasibility probe at a constant rate point."""
        probe = FeasibilityProbe(
            duration=duration, transfer_costs=self.transfer_costs
        )
        return probe.is_feasible(self.placement, input_rates)

    def __repr__(self) -> str:
        return (
            f"Deployment({self.model.graph.name!r}, "
            f"nodes={self.placement.num_nodes}, "
            f"operators={self.model.num_operators})"
        )
