"""Declarative, seeded fault schedules for the simulator.

The paper's resiliency argument is about load you did not predict; this
module extends the reproduction to *system* behaviour you did not
predict.  A :class:`FaultSchedule` is an ordered list of timed
:class:`FaultEvent` records the simulator engine applies at event-queue
priority, ahead of controller polls at the same timestamp:

* ``node.crash`` — the node fail-stops: it finishes its in-flight batch
  (fail-stop at batch granularity) and then serves nothing until a
  matching ``node.recover``.  Operators assigned to it strand their
  queued work unless a failover controller reassigns them.
* ``node.recover`` — the node rejoins and resumes serving its queue.
* ``node.degrade`` — brownout: the node's capacity is multiplied by
  ``factor`` (< 1 slows it down) for ``duration`` seconds, or until the
  end of the run when ``duration`` is omitted.
* ``operator.slowdown`` — the named operator's per-batch CPU cost is
  multiplied by ``factor`` for ``duration`` seconds (hot key, GC storm,
  poison input).
* ``rate.spike`` — every input's arrival rate is multiplied by
  ``factor`` over ``[time, time + duration)``; applied to the rate
  series before arrivals are generated, so it composes with any
  workload scenario.

Schedules are plain data: load one from JSON (``FaultSchedule.
from_json_obj`` / ``load_fault_schedule``), or generate one with the
seeded chaos mode (:func:`chaos_schedule`), which is deterministic in
its seed — the same seed always yields the same schedule, which is what
makes chaos runs bit-identical across repeats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "chaos_schedule",
    "load_fault_schedule",
]

#: Fault kinds the engine understands.
FAULT_KINDS = (
    "node.crash",
    "node.recover",
    "node.degrade",
    "operator.slowdown",
    "rate.spike",
)

_NODE_KINDS = frozenset({"node.crash", "node.recover", "node.degrade"})
_FACTOR_KINDS = frozenset(
    {"node.degrade", "operator.slowdown", "rate.spike"}
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.  Field relevance depends on ``kind``.

    Attributes
    ----------
    time:
        Simulated seconds at which the fault takes effect.
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        Target node index (``node.*`` kinds).
    operator:
        Target operator name (``operator.slowdown``).
    factor:
        Multiplier: capacity for ``node.degrade``, per-batch cost for
        ``operator.slowdown``, arrival rate for ``rate.spike``.
    duration:
        Seconds the effect lasts (``node.degrade`` /
        ``operator.slowdown`` / ``rate.spike``); ``None`` means "until
        the end of the run".  Crashes last until an explicit
        ``node.recover``.
    """

    time: float
    kind: str
    node: Optional[int] = None
    operator: Optional[str] = None
    factor: Optional[float] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if not (self.time >= 0.0):
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind in _NODE_KINDS:
            if self.node is None or self.node < 0:
                raise ValueError(
                    f"{self.kind} needs a non-negative node index"
                )
        if self.kind == "operator.slowdown" and not self.operator:
            raise ValueError("operator.slowdown needs an operator name")
        if self.kind in _FACTOR_KINDS:
            if self.factor is None or self.factor <= 0:
                raise ValueError(f"{self.kind} needs a factor > 0")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be > 0 when given")

    def to_json_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"time": self.time, "kind": self.kind}
        for key in ("node", "operator", "factor", "duration"):
            value = getattr(self, key)
            if value is not None:
                obj[key] = value
        return obj

    @classmethod
    def from_json_obj(cls, obj: Dict[str, object]) -> "FaultEvent":
        known = {"time", "kind", "node", "operator", "factor", "duration"}
        extra = sorted(set(obj) - known)
        if extra:
            raise ValueError(f"fault event has unknown keys: {extra}")
        if "time" not in obj or "kind" not in obj:
            raise ValueError("fault event needs 'time' and 'kind'")
        node = obj.get("node")
        return cls(
            time=float(obj["time"]),  # type: ignore[arg-type]
            kind=str(obj["kind"]),
            node=None if node is None else int(node),  # type: ignore[arg-type]
            operator=(
                None if obj.get("operator") is None
                else str(obj["operator"])
            ),
            factor=(
                None if obj.get("factor") is None
                else float(obj["factor"])  # type: ignore[arg-type]
            ),
            duration=(
                None if obj.get("duration") is None
                else float(obj["duration"])  # type: ignore[arg-type]
            ),
        )

    def describe(self) -> str:
        parts = [f"t={self.time:g}s {self.kind}"]
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.operator is not None:
            parts.append(f"operator={self.operator}")
        if self.factor is not None:
            parts.append(f"factor={self.factor:g}")
        if self.duration is not None:
            parts.append(f"duration={self.duration:g}s")
        return " ".join(parts)


class FaultSchedule:
    """An immutable, time-ordered collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(
            events, key=lambda e: (e.time, FAULT_KINDS.index(e.kind))
        )
        self.events: Tuple[FaultEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ---------------------------------------------------------- validation

    def validate(
        self,
        num_nodes: int,
        operator_names: Sequence[str] = (),
    ) -> None:
        """Check the schedule against a cluster/graph shape.

        Raises ``ValueError`` on out-of-range node indices, unknown
        operator names, recovery of a node that is not down, or any
        instant at which every node would be crashed (a cluster with no
        survivors has no defined failover target).
        """
        known_ops = set(operator_names)
        down: set = set()
        for event in self.events:
            if event.node is not None and event.node >= num_nodes:
                raise ValueError(
                    f"{event.describe()}: node out of range for "
                    f"{num_nodes} node(s)"
                )
            if (
                event.kind == "operator.slowdown"
                and known_ops
                and event.operator not in known_ops
            ):
                raise ValueError(
                    f"{event.describe()}: unknown operator"
                )
            if event.kind == "node.crash":
                if event.node in down:
                    raise ValueError(
                        f"{event.describe()}: node is already down"
                    )
                down.add(event.node)
                if len(down) >= num_nodes:
                    raise ValueError(
                        f"{event.describe()}: schedule crashes every "
                        "node at once"
                    )
            elif event.kind == "node.recover":
                if event.node not in down:
                    raise ValueError(
                        f"{event.describe()}: node is not down"
                    )
                down.discard(event.node)

    # --------------------------------------------------------- application

    def apply_rate_events(
        self, series: np.ndarray, step_seconds: float
    ) -> np.ndarray:
        """Fold ``rate.spike`` events into a rate series (copy-on-write).

        Rows covering ``[time, time + duration)`` are multiplied by the
        event's factor; without a duration the spike lasts to the end.
        Non-rate events leave the series untouched.
        """
        spikes = [e for e in self.events if e.kind == "rate.spike"]
        if not spikes:
            return series
        out = np.array(series, dtype=float, copy=True)
        steps = out.shape[0]
        for event in spikes:
            start = min(steps, int(round(event.time / step_seconds)))
            if event.duration is None:
                stop = steps
            else:
                stop = min(
                    steps,
                    int(round((event.time + event.duration) / step_seconds)),
                )
            out[start:stop] *= float(event.factor or 1.0)
        return out

    # ------------------------------------------------------- serialization

    def to_json_obj(self) -> List[Dict[str, object]]:
        return [event.to_json_obj() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), indent=2, sort_keys=True)

    @classmethod
    def from_json_obj(cls, obj: object) -> "FaultSchedule":
        if isinstance(obj, dict):
            obj = obj.get("faults", obj.get("events"))
        if not isinstance(obj, list):
            raise ValueError(
                "fault schedule JSON must be a list of events (or an "
                "object with a 'faults' list)"
            )
        return cls(FaultEvent.from_json_obj(item) for item in obj)

    def describe(self) -> str:
        if not self.events:
            return "(empty fault schedule)"
        return "\n".join(event.describe() for event in self.events)


def load_fault_schedule(path: str) -> FaultSchedule:
    """Parse a fault-schedule JSON file (see ``docs/robustness.md``)."""
    with open(path) as handle:
        return FaultSchedule.from_json_obj(json.load(handle))


def chaos_schedule(
    num_nodes: int,
    horizon: float,
    seed: int,
    operator_names: Sequence[str] = (),
    intensity: float = 1.0,
) -> FaultSchedule:
    """A seeded pseudo-random fault schedule (chaos mode).

    Deterministic in ``(num_nodes, horizon, seed, operator_names,
    intensity)`` — the same arguments always produce the same schedule,
    so a chaos run is exactly repeatable.  ``intensity`` scales how many
    faults land in the horizon (1.0 ≈ one crash/recovery cycle plus a
    brownout, a slowdown and a rate spike over a 20 s run).

    Crash/recovery cycles are staggered into disjoint downtime windows,
    so at most one node is down at any instant: no matter how high
    ``intensity`` pushes the cycle count — even when every node of a
    2-node cluster is scheduled to crash — the cluster keeps a survivor
    and chaos runs drain.  A 1-node cluster gets no crashes at all (its
    only node *is* the survivor).  All times are quantized to 1 ms, and
    durations are clamped to at least 1 ms so arbitrarily small
    horizons still produce valid events.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    if intensity <= 0:
        raise ValueError("intensity must be > 0")
    rng = np.random.default_rng(seed)
    events: List[FaultEvent] = []

    def _ms(seconds: float) -> int:
        return int(round(seconds * 1000.0))

    def window(lo_frac: float = 0.05, hi_frac: float = 0.8) -> float:
        return _ms(rng.uniform(lo_frac, hi_frac) * horizon) / 1000.0

    def span(lo_frac: float, hi_frac: float) -> float:
        """A duration drawn as a horizon fraction, never rounding to 0."""
        return max(1, _ms(rng.uniform(lo_frac, hi_frac) * horizon)) / 1000.0

    count = max(1, int(round(intensity)))

    # Crash/recovery cycles.  Each cycle gets a disjoint slot of the
    # [5%, 90%] band of the horizon and its downtime stays inside the
    # slot, so downtime windows never overlap and a survivor always
    # exists.  Integer-millisecond scheduling keeps crash < recover <
    # next crash strict even when rounding would otherwise collide;
    # sub-millisecond slots saturate past the band, which only pushes
    # late cycles beyond the horizon (they simply never fire).
    if num_nodes > 1:
        band_lo, band_hi = _ms(0.05 * horizon), _ms(0.90 * horizon)
        slot = max((band_hi - band_lo) // count, 2)
        cursor = band_lo
        for _ in range(count):
            victim = int(rng.integers(num_nodes))
            start = cursor + _ms(rng.uniform(0.0, 0.4) * slot / 1000.0)
            start = max(start, cursor)
            downtime = max(1, _ms(rng.uniform(0.2, 0.5) * slot / 1000.0))
            recover = start + downtime
            events.append(FaultEvent(
                time=start / 1000.0, kind="node.crash", node=victim,
            ))
            events.append(FaultEvent(
                time=recover / 1000.0, kind="node.recover", node=victim,
            ))
            cursor = max(cursor + slot, recover + 1)

    # Brownouts.
    for _ in range(count):
        events.append(
            FaultEvent(
                time=window(),
                kind="node.degrade",
                node=int(rng.integers(num_nodes)),
                factor=float(np.round(rng.uniform(0.3, 0.8), 3)),
                duration=span(0.05, 0.2),
            )
        )

    # Operator slowdowns.
    names = list(operator_names)
    if names:
        for _ in range(count):
            events.append(
                FaultEvent(
                    time=window(),
                    kind="operator.slowdown",
                    operator=names[int(rng.integers(len(names)))],
                    factor=float(np.round(rng.uniform(1.5, 4.0), 3)),
                    duration=span(0.05, 0.2),
                )
            )

    # Input-rate spikes.
    for _ in range(count):
        events.append(
            FaultEvent(
                time=window(),
                kind="rate.spike",
                factor=float(np.round(rng.uniform(1.2, 2.5), 3)),
                duration=span(0.05, 0.15),
            )
        )

    schedule = FaultSchedule(events)
    schedule.validate(num_nodes, operator_names)
    return schedule
