"""Observability: metrics, structured tracing, profiling, logging.

One consistent instrumentation API threaded through every runtime layer
of the reproduction:

``repro.obs.metrics``
    Zero-dependency metrics registry (counters, gauges, histograms with
    labels) with JSON and Prometheus-text exporters.
``repro.obs.trace``
    Typed structured events written as JSONL, behind a no-op null sink
    so disabled tracing costs nothing on hot paths.
``repro.obs.timer``
    ``perf_counter`` phase timers feeding both the registry and the
    trace stream.
``repro.obs.log``
    The package's configured logger (``repro.*`` namespace); library
    code logs through it instead of ``print()`` (lint rule REPRO505).
``repro.obs.timeline``
    Per-node utilization timelines rendered from traces (imported
    lazily by tooling; not re-exported here to keep this package free
    of any dependency on the workload layer).
``repro.obs.runs``
    The run registry: persistent ``runs/<run_id>/`` directories holding
    a provenance manifest, the JSONL trace, a metrics snapshot and the
    flat ``result.json`` the diff engine compares.
``repro.obs.analyze`` / ``repro.obs.diff`` / ``repro.obs.report_html``
    Trace analytics (per-node/per-operator breakdowns, exact latency
    reconstruction), regression diffing between run snapshots, and the
    self-contained HTML run report.  Like ``timeline``, these are
    imported on demand by tooling rather than re-exported here — they
    pull in layers (simulator metrics) this package core must not
    depend on.

:class:`Observability` bundles one registry and one tracer — the unit a
:class:`~repro.deploy.Deployment` owns and threads through planning,
analysis and simulation.
"""

from __future__ import annotations

from typing import Optional

from .log import configure, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .runs import (
    Run,
    RunManifest,
    RunWriter,
    config_digest,
    find_run,
    list_runs,
    load_run,
)
from .schema import (
    EVENT_SCHEMAS,
    METRIC_SCHEMAS,
    EventSchema,
    MetricSchema,
    validate_event,
    validate_metric,
)
from .timer import PHASE_METRIC, PhaseTimer, phase_report
from .trace import (
    EVENT_TYPES,
    JsonlSink,
    MemorySink,
    NullSink,
    NULL_SINK,
    NULL_TRACER,
    TraceEvent,
    TraceSink,
    Tracer,
    read_trace,
    trace_digest,
)

__all__ = [
    "Counter",
    "EVENT_SCHEMAS",
    "EVENT_TYPES",
    "EventSchema",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "METRIC_SCHEMAS",
    "MemorySink",
    "MetricFamily",
    "MetricSchema",
    "MetricsRegistry",
    "NULL_SINK",
    "NULL_TRACER",
    "NullSink",
    "Observability",
    "PHASE_METRIC",
    "PhaseTimer",
    "Run",
    "RunManifest",
    "RunWriter",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "config_digest",
    "configure",
    "find_run",
    "get_logger",
    "list_runs",
    "load_run",
    "phase_report",
    "read_trace",
    "trace_digest",
    "validate_event",
    "validate_metric",
]


class Observability:
    """A metrics registry plus a tracer, passed around as one handle."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def phase(self, name: str, **fields: object) -> PhaseTimer:
        """Time a named phase into the registry and the trace stream."""
        return PhaseTimer(
            name, registry=self.registry, tracer=self.tracer, fields=fields
        )

    def phase_report(self) -> str:
        """Accumulated phase-timing table (``""`` when nothing ran)."""
        return phase_report(self.registry)

    def __repr__(self) -> str:
        return (
            f"Observability(metrics={len(self.registry)}, "
            f"tracing={'on' if self.tracer.enabled else 'off'})"
        )
