"""Trace analytics: structured breakdowns computed from JSONL traces.

Where :mod:`repro.obs.timeline` renders traces for a terminal,
``analyze`` turns them into numbers tooling can diff and report on:

* per-node breakdowns — busy/stall CPU-seconds, batches served, peak
  outstanding queue depth, mean/peak utilization;
* per-operator breakdowns — tuples in/out, work seconds, the nodes the
  operator ran on (more than one after a migration);
* the migration timeline (applied moves in simulated-time order);
* end-to-end latency percentiles rebuilt from the ``latency`` field the
  engine attaches to sink ``batch.serviced`` events.

The analyzer is **exact**, not approximate: ``busy_seconds`` per node
reproduces ``SimulationResult.node_busy`` bit for bit (the same
invariant ``timeline.busy_totals`` asserts), and the rebuilt
:class:`~repro.simulator.metrics.LatencyStats` records the same samples
in the same order as the engine did, so every aggregate —
mean/p50/p95/p99/max — matches the in-process result exactly
(``tests/test_analyze.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simulator.metrics import LatencyStats
from .decisions import DecisionView, decision_snapshot, decisions_from_trace
from .drift import drift_snapshot
from .trace import TraceEvent
from .timeline import trace_metadata

__all__ = [
    "NodeBreakdown",
    "OperatorBreakdown",
    "MigrationRecord",
    "FaultRecord",
    "TraceAnalysis",
    "analyze_trace",
]


@dataclass
class NodeBreakdown:
    """What one node did over the run, summed from its trace events."""

    busy_seconds: float = 0.0       # all served CPU work, stalls included
    stall_seconds: float = 0.0      # the migration-pause share of busy
    batches_serviced: int = 0
    batches_enqueued: int = 0
    tuples_processed: int = 0
    peak_outstanding: int = 0       # max simultaneously queued/served batches
    idle_transitions: int = 0
    _outstanding: int = field(default=0, repr=False)

    @property
    def service_seconds(self) -> float:
        """Busy time net of migration stalls."""
        return self.busy_seconds - self.stall_seconds


@dataclass
class OperatorBreakdown:
    """One operator's activity, possibly spread over several nodes."""

    tuples_in: int = 0
    tuples_out: int = 0
    work_seconds: float = 0.0
    batches: int = 0
    nodes: List[int] = field(default_factory=list)

    def _saw_node(self, node: int) -> None:
        if node not in self.nodes:
            self.nodes.append(node)


@dataclass(frozen=True)
class MigrationRecord:
    """One applied operator move."""

    t: float
    operator: str
    source: int
    target: int
    pause: float


@dataclass(frozen=True)
class FaultRecord:
    """One injected (or reverted) fault event."""

    t: float
    kind: str
    node: Optional[int] = None
    operator: Optional[str] = None
    factor: Optional[float] = None
    duration: Optional[float] = None
    reverted: bool = False


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` derives from one trace."""

    meta: Dict[str, object]
    nodes: List[NodeBreakdown]
    operators: Dict[str, OperatorBreakdown]
    migrations: List[MigrationRecord]
    latency: LatencyStats
    sink_latency: Dict[str, LatencyStats]
    tuples_out: int
    events_by_type: Dict[str, int]
    faults: List[FaultRecord] = field(default_factory=list)
    #: Controller decision audit rows (``decision.evaluated`` events).
    decisions: List[DecisionView] = field(default_factory=list)
    #: Drift detections (``drift.detected`` event fields plus ``t``).
    drift: List[Dict[str, object]] = field(default_factory=list)
    decision_summary: Dict[str, object] = field(default_factory=dict)
    drift_summary: Dict[str, object] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def busy_totals(self) -> np.ndarray:
        """CPU-seconds served per node — equals ``SimulationResult.node_busy``."""
        return np.asarray([n.busy_seconds for n in self.nodes])

    def utilization(self) -> np.ndarray:
        """Mean utilization per node over the run horizon."""
        capacities = np.asarray(self.meta["capacities"], dtype=float)
        horizon = float(self.meta["horizon"])
        if horizon <= 0:
            return np.zeros(self.num_nodes)
        return self.busy_totals() / (capacities * horizon)

    def to_json_obj(self) -> Dict[str, object]:
        """Flat, diffable JSON view (used by run snapshots and reports)."""
        util = self.utilization()
        return {
            "meta": dict(self.meta),
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "nodes": [
                {
                    "busy_seconds": n.busy_seconds,
                    "stall_seconds": n.stall_seconds,
                    "service_seconds": n.service_seconds,
                    "batches_serviced": n.batches_serviced,
                    "batches_enqueued": n.batches_enqueued,
                    "tuples_processed": n.tuples_processed,
                    "peak_outstanding": n.peak_outstanding,
                    "idle_transitions": n.idle_transitions,
                    "utilization": float(util[i]),
                }
                for i, n in enumerate(self.nodes)
            ],
            "operators": {
                name: {
                    "tuples_in": op.tuples_in,
                    "tuples_out": op.tuples_out,
                    "work_seconds": op.work_seconds,
                    "batches": op.batches,
                    "nodes": list(op.nodes),
                }
                for name, op in sorted(self.operators.items())
            },
            "migrations": [
                {
                    "t": m.t,
                    "operator": m.operator,
                    "source": m.source,
                    "target": m.target,
                    "pause": m.pause,
                }
                for m in self.migrations
            ],
            "faults": [
                {
                    "t": f.t,
                    "kind": f.kind,
                    "node": f.node,
                    "operator": f.operator,
                    "factor": f.factor,
                    "duration": f.duration,
                    "reverted": f.reverted,
                }
                for f in self.faults
            ],
            "latency": {
                "mean": self.latency.mean(),
                "max": self.latency.maximum(),
                "tuples": self.latency.total_tuples,
                **self.latency.percentiles(),
            },
            "sink_latency": {
                sink: {"mean": stats.mean(), **stats.percentiles()}
                for sink, stats in sorted(self.sink_latency.items())
            },
            "tuples_out": self.tuples_out,
            "decisions": dict(self.decision_summary),
            "drift": dict(self.drift_summary),
        }


def analyze_trace(
    events: Sequence[TraceEvent],
    num_nodes: Optional[int] = None,
) -> TraceAnalysis:
    """Compute a :class:`TraceAnalysis` from parsed trace events.

    Works on any event list (filters applied, hand-built traces); the
    run geometry comes from the ``sim.start`` header via
    :func:`repro.obs.timeline.trace_metadata`, inferred when absent.
    """
    meta = trace_metadata(events)
    n = int(num_nodes if num_nodes is not None else meta["nodes"])
    nodes = [NodeBreakdown() for _ in range(n)]
    operators: Dict[str, OperatorBreakdown] = {}
    migrations: List[MigrationRecord] = []
    faults: List[FaultRecord] = []
    latency = LatencyStats()
    sink_latency: Dict[str, LatencyStats] = {}
    tuples_out = 0
    events_by_type: Dict[str, int] = {}

    for event in events:
        events_by_type[event.type] = events_by_type.get(event.type, 0) + 1
        f = event.fields
        if event.type == "batch.enqueued":
            node = nodes[int(f["node"])]
            node.batches_enqueued += 1
            node._outstanding += 1
            node.peak_outstanding = max(
                node.peak_outstanding, node._outstanding
            )
        elif event.type == "batch.serviced":
            node_index = int(f["node"])
            node = nodes[node_index]
            work = float(f.get("work", 0.0))
            count = int(f.get("count", 0))
            node.busy_seconds += work
            node.batches_serviced += 1
            node.tuples_processed += count
            node._outstanding = max(0, node._outstanding - 1)
            name = str(f.get("operator", "?"))
            op = operators.get(name)
            if op is None:
                op = operators[name] = OperatorBreakdown()
            op.tuples_in += count
            op.tuples_out += int(f.get("out", 0))
            op.work_seconds += work
            op.batches += 1
            op._saw_node(node_index)
            sink = f.get("sink")
            if sink is not None:
                out = int(f.get("out", 0))
                sample = float(f.get("latency", 0.0))
                tuples_out += out
                # Same (value, weight) pairs in the same order as the
                # engine recorded them — aggregates match exactly.
                latency.record(sample, out)
                sink_latency.setdefault(
                    str(sink), LatencyStats()
                ).record(sample, out)
        elif event.type == "node.stall":
            node = nodes[int(f["node"])]
            work = float(f.get("work", 0.0))
            node.busy_seconds += work
            node.stall_seconds += work
        elif event.type == "node.idle":
            nodes[int(f["node"])].idle_transitions += 1
        elif event.type == "migration.applied":
            migrations.append(MigrationRecord(
                t=0.0 if event.t is None else float(event.t),
                operator=str(f.get("operator", "?")),
                source=int(f.get("source", -1)),
                target=int(f.get("target", -1)),
                pause=float(f.get("pause", 0.0)),
            ))
        elif event.type in ("fault.injected", "fault.reverted"):
            node_value = f.get("node")
            factor_value = f.get("factor")
            duration_value = f.get("duration")
            faults.append(FaultRecord(
                t=0.0 if event.t is None else float(event.t),
                kind=str(f.get("kind", "?")),
                node=None if node_value is None else int(node_value),
                operator=(
                    None if f.get("operator") is None
                    else str(f["operator"])
                ),
                factor=(
                    None if factor_value is None else float(factor_value)
                ),
                duration=(
                    None if duration_value is None
                    else float(duration_value)
                ),
                reverted=event.type == "fault.reverted",
            ))

    return TraceAnalysis(
        meta=meta,
        nodes=nodes,
        operators=operators,
        migrations=migrations,
        latency=latency,
        sink_latency=sink_latency,
        tuples_out=tuples_out,
        events_by_type=events_by_type,
        faults=faults,
        decisions=decisions_from_trace(events),
        drift=[
            dict(event.fields, t=event.t)
            for event in events
            if event.type == "drift.detected"
        ],
        decision_summary=decision_snapshot(events),
        drift_summary=drift_snapshot(events),
    )
