"""Render per-node utilization timelines from simulation traces.

Works entirely from a parsed JSONL trace (:func:`repro.obs.trace.read_trace`):
the ``sim.start`` header event supplies the geometry (node count, step
width, horizon, capacities), the ``batch.serviced`` / ``node.stall``
events supply the CPU-seconds each node served, and
:mod:`repro.workload.textplot` turns the binned series into terminal
sparklines — the Figure-2-style view of where load actually went.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workload.textplot import sparkline
from .trace import TraceEvent

__all__ = [
    "WORK_EVENT_TYPES",
    "filter_events",
    "trace_metadata",
    "busy_totals",
    "work_timeline",
    "utilization_timeline",
    "trace_summary",
    "render_trace_report",
]

#: Event types that carry served CPU work in a ``work`` field.
WORK_EVENT_TYPES = ("batch.serviced", "node.stall")


def trace_metadata(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Run geometry from the ``sim.start`` header, inferred if absent.

    Returns ``nodes``, ``step_seconds``, ``horizon`` and ``capacities``;
    traces written by this package always carry the header, but the
    fallback lets hand-built event lists render too.
    """
    for event in events:
        if event.type == "sim.start":
            meta = dict(event.fields)
            nodes = int(meta.get("nodes", 1))
            return {
                "nodes": nodes,
                "step_seconds": float(meta.get("step_seconds", 0.1)),
                "horizon": float(meta.get("horizon", 0.0)),
                "capacities": _pad_capacities(
                    meta.get("capacities", ()), nodes
                ),
            }
    nodes = 0
    last_t = 0.0
    for event in events:
        node = event.fields.get("node")
        if node is not None:
            nodes = max(nodes, int(node) + 1)
        if event.t is not None:
            last_t = max(last_t, float(event.t))
    nodes = max(nodes, 1)
    return {
        "nodes": nodes,
        "step_seconds": 0.1,
        "horizon": last_t,
        "capacities": [1.0] * nodes,
    }


def _pad_capacities(raw: object, nodes: int) -> List[float]:
    """Capacity list padded with 1.0 to ``nodes`` entries.

    A header without (or with a short) ``capacities`` list used to
    default to a single entry regardless of the node count, silently
    mis-scaling utilization for every node past the first.
    """
    capacities = [float(c) for c in raw]  # type: ignore[union-attr]
    if len(capacities) < nodes:
        capacities.extend([1.0] * (nodes - len(capacities)))
    return capacities


def filter_events(
    events: Sequence[TraceEvent],
    types: Optional[Sequence[str]] = None,
    nodes: Optional[Sequence[int]] = None,
    since: Optional[float] = None,
    spans: Optional[Sequence[int]] = None,
    operators: Optional[Sequence[str]] = None,
) -> List[TraceEvent]:
    """Subset of ``events`` matching every given filter.

    ``types`` keeps only the listed event types; ``nodes`` keeps only
    events carrying a ``node`` field with one of the listed indices
    (events without a node field — migrations, phases, headers — are
    dropped when a node filter is active); ``since`` keeps events whose
    simulated time is ``>= since`` (events with no sim clock, ``t is
    None``, are kept — they have no position in the window).

    ``spans`` and ``operators`` follow the node-filter convention:
    ``spans`` keeps only events carrying a ``span`` field with one of
    the listed ids (pass a lineage closure from
    :func:`repro.obs.spans.span_lineage` to pull one batch's history);
    ``operators`` keeps only events whose ``operator`` field matches.
    Events lacking the filtered field are dropped while that filter is
    active.
    """
    type_set = None if types is None else frozenset(types)
    node_set = None if nodes is None else frozenset(int(n) for n in nodes)
    span_set = None if spans is None else frozenset(int(s) for s in spans)
    operator_set = (
        None if operators is None else frozenset(str(o) for o in operators)
    )
    kept = []
    for event in events:
        if type_set is not None and event.type not in type_set:
            continue
        if node_set is not None:
            node = event.fields.get("node")
            if node is None or int(node) not in node_set:
                continue
        if span_set is not None:
            span = event.fields.get("span")
            if span is None or int(span) not in span_set:
                continue
        if operator_set is not None:
            operator = event.fields.get("operator")
            if operator is None or str(operator) not in operator_set:
                continue
        if (since is not None and event.t is not None
                and float(event.t) < since):
            continue
        kept.append(event)
    return kept


def busy_totals(
    events: Sequence[TraceEvent], num_nodes: Optional[int] = None
) -> np.ndarray:
    """CPU-seconds served per node, summed over the work events.

    Matches ``SimulationResult.node_busy`` exactly: the engine emits one
    work-carrying event per completion, stalls included.
    """
    if num_nodes is None:
        num_nodes = int(trace_metadata(events)["nodes"])
    totals = np.zeros(num_nodes)
    for event in events:
        if event.type in WORK_EVENT_TYPES:
            totals[int(event.fields["node"])] += float(
                event.fields.get("work", 0.0)
            )
    return totals


def work_timeline(
    events: Sequence[TraceEvent],
    step_seconds: Optional[float] = None,
    num_nodes: Optional[int] = None,
    horizon: Optional[float] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> np.ndarray:
    """Served CPU-seconds per ``(time bin, node)``.

    Bins are ``step_seconds`` wide over ``[0, horizon)``; work completed
    after the horizon folds into the last bin (same convention as the
    engine's ``work_timeline``).  ``metadata`` overrides the header
    lookup — pass the full trace's :func:`trace_metadata` when rendering
    a filtered subset that may no longer contain ``sim.start``.
    """
    meta = metadata if metadata is not None else trace_metadata(events)
    step = float(step_seconds or meta["step_seconds"])
    n = int(num_nodes or meta["nodes"])
    end = float(horizon or meta["horizon"])
    if step <= 0:
        raise ValueError("step_seconds must be > 0")
    if end <= 0:
        # No horizon known: span the events.
        times = [
            float(e.t) for e in events
            if e.type in WORK_EVENT_TYPES and e.t is not None
        ]
        end = max(times) + step if times else step
    steps = max(1, int(round(end / step)))
    timeline = np.zeros((steps, n))
    for event in events:
        if event.type not in WORK_EVENT_TYPES or event.t is None:
            continue
        bin_index = min(int(float(event.t) / step), steps - 1)
        timeline[bin_index, int(event.fields["node"])] += float(
            event.fields.get("work", 0.0)
        )
    return timeline


def utilization_timeline(
    events: Sequence[TraceEvent],
    step_seconds: Optional[float] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> np.ndarray:
    """Per-bin utilization (served work / capacity / bin width)."""
    meta = metadata if metadata is not None else trace_metadata(events)
    step = float(step_seconds or meta["step_seconds"])
    capacities = np.asarray(meta["capacities"], dtype=float)
    timeline = work_timeline(events, step_seconds=step, metadata=meta)
    return timeline / (capacities[None, :] * step)


def trace_summary(
    events: Sequence[TraceEvent],
) -> Dict[str, object]:
    """Event counts by type plus the simulated time span."""
    by_type: Dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for event in events:
        by_type[event.type] = by_type.get(event.type, 0) + 1
        if event.t is not None:
            t = float(event.t)
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "span": (t_min, t_max),
    }


def _migration_lines(events: Sequence[TraceEvent]) -> List[str]:
    lines = []
    for event in events:
        if event.type != "migration.applied":
            continue
        f = event.fields
        lines.append(
            f"  t={0.0 if event.t is None else float(event.t):g}s "
            f"{f.get('operator', '?')}: node {f.get('source', '?')} -> "
            f"{f.get('target', '?')} (pause {float(f.get('pause', 0.0)):g}s)"
        )
    return lines


def render_trace_report(
    events: Sequence[TraceEvent],
    width: int = 60,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Human-readable report: counts, per-node timelines, migrations."""
    if not events:
        raise ValueError("cannot render an empty trace")
    if width < 1:
        raise ValueError("width must be >= 1")
    meta = metadata if metadata is not None else trace_metadata(events)
    summary = trace_summary(events)
    utilization = utilization_timeline(events, metadata=meta)
    totals = busy_totals(events, num_nodes=int(meta["nodes"]))
    capacities = np.asarray(meta["capacities"], dtype=float)
    horizon = float(meta["horizon"])
    if horizon <= 0:
        horizon = utilization.shape[0] * float(meta["step_seconds"])

    parts = [
        f"trace: {summary['events']} events over "
        f"{horizon:g}s simulated ({meta['nodes']} nodes, "
        f"step {meta['step_seconds']:g}s)",
        "",
        "events by type:",
    ]
    by_type: Dict[str, int] = summary["by_type"]  # type: ignore[assignment]
    for name, count in by_type.items():
        parts.append(f"  {name}: {count}")
    parts.append("")
    parts.append("per-node utilization (served work / capacity):")
    for node in range(int(meta["nodes"])):
        series = utilization[:, node]
        mean_util = totals[node] / (capacities[node] * horizon)
        line = sparkline(series, width=min(width, series.size))
        parts.append(
            f"  node {node} |{line}| "
            f"mean={mean_util:.2f} peak={series.max():.2f}"
        )
    migrations = _migration_lines(events)
    if migrations:
        parts.append("")
        parts.append(f"migrations applied ({len(migrations)}):")
        parts.extend(migrations)
    return "\n".join(parts)
