"""Critical-path latency attribution from causal span traces.

:mod:`repro.obs.analyze` can say *that* end-to-end latency rose;
this module says *where it went*.  It rebuilds the per-batch causal
forest a traced run emitted (:mod:`repro.obs.spans`) and charges every
second of every sink tuple's end-to-end latency to an
``(operator, phase)`` pair:

``service``
    Time the batch spent being processed on its node
    (``close.t - close.start``).
``migration-pause``
    The part of the batch's queue wait that overlapped a migration
    stall being served on its node (``node.stall`` events carry their
    service ``start`` so the pause windows are exact intervals).
``stall``
    The part of the wait that overlapped a crash window on the node
    (``fault.injected kind=node.crash`` .. ``kind=node.recover``),
    net of any overlap already charged to ``migration-pause``.
``enqueue-wait``
    The remainder of the wait — plain queueing behind other work.

Per batch, the four phases sum to exactly ``close.t - open.t``, and
chained over a sink tuple's lineage those windows telescope to the
end-to-end latency the engine measured — so the weighted phase totals
account for (essentially all of) the latency mass, and the analyzer
reports the ``attributed_ratio`` so tooling can gate on it.

Like :mod:`repro.obs.analyze`, the reconciliation with the in-process
result is **exact**, not approximate: sink ``span.close`` events carry
the identical latency float the engine recorded, consumed in the same
order, so the rebuilt :class:`~repro.simulator.metrics.LatencyStats`
matches ``SimulationResult.latency`` bit for bit
(``tests/test_spans.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..simulator.metrics import LatencyStats
from .spans import SpanRecord, spans_from_trace, validate_span_dag
from .trace import TraceEvent

__all__ = [
    "PHASES",
    "CriticalPathAnalysis",
    "analyze_critical_path",
    "render_critical_path_report",
]

#: Attribution phases, in reporting order.
PHASES: Tuple[str, ...] = (
    "enqueue-wait", "service", "migration-pause", "stall",
)

_Interval = Tuple[float, float]


def _overlap(a: float, b: float, intervals: Iterable[_Interval]) -> float:
    """Total measure of ``[a, b]`` covered by ``intervals``.

    Intervals on one node never overlap each other (a node serves one
    entry at a time; crash windows alternate crash/recover), so plain
    summation is exact.
    """
    total = 0.0
    for start, end in intervals:
        lo = a if a > start else start
        hi = b if b < end else end
        if hi > lo:
            total += hi - lo
    return total


def _intersections(
    first: Sequence[_Interval], second: Sequence[_Interval]
) -> List[_Interval]:
    """Pairwise interval intersections (small lists; O(n*m) is fine)."""
    out: List[_Interval] = []
    for a_start, a_end in first:
        for b_start, b_end in second:
            lo = max(a_start, b_start)
            hi = min(a_end, b_end)
            if hi > lo:
                out.append((lo, hi))
    return out


@dataclass
class CriticalPathAnalysis:
    """Latency mass charged to ``(operator, phase)`` pairs.

    ``attributed`` holds tuple-weighted seconds: each span's phase
    windows multiplied by the number of sink tuples that causally
    descend from it.  Dividing by ``latency.total_tuples`` turns any
    entry into mean seconds per sink tuple.
    """

    #: Rebuilt end-to-end stats — bit-identical to the engine's.
    latency: LatencyStats
    #: Sink tuples produced (== sum of sink close ``out`` counts).
    tuples_out: int = 0
    #: (operator, phase) -> tuple-weighted seconds.
    attributed: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: Total latency mass: sum of (latency * out) over sink closes.
    total_latency_seconds: float = 0.0
    spans_total: int = 0
    spans_closed: int = 0
    #: Stranded batches: opened but never serviced (crashed nodes).
    unclosed_spans: int = 0
    #: Tuples riding those stranded batches.
    stranded_tuples: int = 0
    #: Lineage defects from :func:`repro.obs.spans.validate_span_dag`.
    problems: List[str] = field(default_factory=list)

    @property
    def attributed_seconds(self) -> float:
        """Total latency mass charged to (operator, phase) pairs."""
        return float(sum(self.attributed.values()))

    @property
    def attributed_ratio(self) -> float:
        """Charged mass / measured mass — 1.0 means fully explained."""
        if self.total_latency_seconds <= 0.0:
            return 1.0
        return self.attributed_seconds / self.total_latency_seconds

    def phase_totals(self) -> Dict[str, float]:
        """Tuple-weighted seconds per phase, every phase present."""
        totals = {phase: 0.0 for phase in PHASES}
        for (_, phase), seconds in self.attributed.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def operator_totals(self) -> Dict[str, float]:
        """Tuple-weighted seconds per operator, all phases folded."""
        totals: Dict[str, float] = {}
        for (operator, _), seconds in self.attributed.items():
            totals[operator] = totals.get(operator, 0.0) + seconds
        return totals

    def top_operators(self, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` operators carrying the most latency, descending."""
        ranked = sorted(
            self.operator_totals().items(),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    def mean_seconds(self, operator: str, phase: str) -> float:
        """Mean seconds per sink tuple charged to one (op, phase)."""
        weight = self.latency.total_tuples
        if weight == 0:
            return 0.0
        return self.attributed.get((operator, phase), 0.0) / weight

    def to_json_obj(self) -> Dict[str, object]:
        """Diffable snapshot section (``critical_path.*`` keys).

        Keys are chosen to pair with the direction-aware defaults in
        :mod:`repro.obs.diff`: per-phase means and shares rising is a
        regression (more latency charged there), while
        ``attributed_ratio`` falling is (unexplained latency appeared).
        Raw counts stay out — a longer run is not a worse run.
        """
        weight = self.latency.total_tuples
        attributed = self.attributed_seconds
        phase_totals = self.phase_totals()
        operators: Dict[str, object] = {}
        for name, seconds in sorted(self.operator_totals().items()):
            operators[name] = {
                "seconds": seconds / weight if weight else 0.0,
                "share": seconds / attributed if attributed else 0.0,
                "phases": {
                    phase: self.mean_seconds(name, phase)
                    for phase in PHASES
                    if (name, phase) in self.attributed
                },
            }
        return {
            "attributed_ratio": self.attributed_ratio,
            "mean_seconds": {
                phase: total / weight if weight else 0.0
                for phase, total in phase_totals.items()
            },
            "phase_share": {
                phase: total / attributed if attributed else 0.0
                for phase, total in phase_totals.items()
            },
            "operators": operators,
            "unclosed_spans": self.unclosed_spans,
        }


def _stall_intervals(
    events: Sequence[TraceEvent],
) -> Dict[int, List[_Interval]]:
    """Per-node migration-pause service windows from ``node.stall``."""
    intervals: Dict[int, List[_Interval]] = {}
    for event in events:
        if event.type != "node.stall":
            continue
        start = event.fields.get("start")
        if start is None or event.t is None:
            continue  # pre-span trace without interval bounds
        node = int(event.fields["node"])  # type: ignore[call-overload]
        intervals.setdefault(node, []).append(
            (float(start), float(event.t))  # type: ignore[arg-type]
        )
    return intervals


def _crash_windows(
    events: Sequence[TraceEvent],
) -> Dict[int, List[_Interval]]:
    """Per-node [crash, recover) windows from fault events."""
    windows: Dict[int, List[_Interval]] = {}
    open_at: Dict[int, float] = {}
    for event in events:
        if event.type != "fault.injected":
            continue
        kind = event.fields.get("kind")
        if kind not in ("node.crash", "node.recover"):
            continue
        node = int(event.fields["node"])  # type: ignore[call-overload]
        t = 0.0 if event.t is None else float(event.t)
        if kind == "node.crash":
            open_at[node] = t
        else:
            crashed = open_at.pop(node, None)
            if crashed is not None:
                windows.setdefault(node, []).append((crashed, t))
    for node, crashed in open_at.items():
        # Never recovered: the window runs to the end of the run.
        windows.setdefault(node, []).append((crashed, math.inf))
    return windows


def analyze_critical_path(
    events: Sequence[TraceEvent],
) -> CriticalPathAnalysis:
    """Attribute end-to-end latency to operators and phases.

    Sink-tuple weights propagate rootward over the span forest: a sink
    close weighs its ``out`` count, every other span weighs the sum of
    its children.  Because span ids are allocated in creation order
    (``parent < span`` always), a single descending-id pass suffices.
    """
    spans = spans_from_trace(events)
    problems = validate_span_dag(spans)
    stalls = _stall_intervals(events)
    crashes = _crash_windows(events)
    # migration-pause and stall can overlap when a crash interrupts an
    # in-flight stall; charge the overlap once (to migration-pause).
    double_counted: Dict[int, List[_Interval]] = {
        node: _intersections(stalls.get(node, ()), crashes.get(node, ()))
        for node in set(stalls) | set(crashes)
    }

    # Rebuild the engine's LatencyStats: identical floats, identical
    # order (sink closes appear in the trace in completion order).
    latency = LatencyStats()
    tuples_out = 0
    total_mass = 0.0
    for event in events:
        if event.type != "span.close":
            continue
        f = event.fields
        if f.get("sink") is None:
            continue
        sample = float(f.get("latency", 0.0))  # type: ignore[arg-type]
        out = int(f.get("out", 0))  # type: ignore[call-overload]
        latency.record(sample, out)
        tuples_out += out
        total_mass += sample * out

    # Sink-tuple weight per span, propagated leafward -> rootward.
    weight: Dict[int, int] = {span_id: 0 for span_id in spans}
    for span_id in sorted(spans, reverse=True):
        record = spans[span_id]
        if record.closed and record.is_sink:
            weight[span_id] += record.out
        parent = record.parent
        if parent is not None and parent in weight:
            weight[parent] += weight[span_id]

    attributed: Dict[Tuple[str, str], float] = {}

    def charge(operator: str, phase: str, seconds: float) -> None:
        if seconds:
            key = (operator, phase)
            attributed[key] = attributed.get(key, 0.0) + seconds

    unclosed = 0
    stranded = 0
    for span_id, record in spans.items():
        if not record.closed:
            unclosed += 1
            stranded += record.count
            continue
        w = weight[span_id]
        if w == 0:
            continue  # no sink tuple descends from this span
        charge(record.operator, "service", w * record.service_seconds)
        wait_start, wait_end = record.open_t, record.start
        if wait_end <= wait_start:
            continue
        node = record.node
        pause = _overlap(wait_start, wait_end, stalls.get(node, ()))
        crash = _overlap(wait_start, wait_end, crashes.get(node, ()))
        crash -= _overlap(wait_start, wait_end,
                          double_counted.get(node, ()))
        # The remainder definition keeps the three wait phases summing
        # to exactly (start - open_t), preserving telescoping.
        remainder = (wait_end - wait_start) - pause - crash
        charge(record.operator, "migration-pause", w * pause)
        charge(record.operator, "stall", w * crash)
        charge(record.operator, "enqueue-wait", w * remainder)

    return CriticalPathAnalysis(
        latency=latency,
        tuples_out=tuples_out,
        attributed=attributed,
        total_latency_seconds=total_mass,
        spans_total=len(spans),
        spans_closed=sum(1 for r in spans.values() if r.closed),
        unclosed_spans=unclosed,
        stranded_tuples=stranded,
        problems=problems,
    )


def _table(rows: Sequence[Sequence[str]]) -> List[str]:
    """Aligned text table with a rule under the header row."""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths).rstrip())
    return lines


def render_critical_path_report(
    analysis: CriticalPathAnalysis, top_k: int = 5
) -> str:
    """The ``repro-rod explain`` text view: phases, then top operators."""
    mean = analysis.latency.mean()
    weight = analysis.latency.total_tuples
    parts = [
        f"critical path: {analysis.tuples_out} sink tuples over "
        f"{analysis.spans_total} spans "
        f"({analysis.spans_closed} closed), "
        f"mean end-to-end latency {mean * 1e3:.3f}ms",
        f"attributed {analysis.attributed_ratio:.4%} of the latency "
        "mass to (operator, phase) pairs",
        "",
        "phase breakdown (mean per sink tuple):",
    ]
    phase_totals = analysis.phase_totals()
    attributed = analysis.attributed_seconds
    rows = [("phase", "mean", "share")]
    for phase in PHASES:
        total = phase_totals[phase]
        rows.append((
            phase,
            f"{(total / weight if weight else 0.0) * 1e3:.3f}ms",
            f"{(total / attributed if attributed else 0.0):.1%}",
        ))
    parts.extend(_table(rows))
    parts.append("")
    parts.append(f"top {top_k} critical operators:")
    op_rows = [("operator", "mean", "share") + PHASES]
    for name, seconds in analysis.top_operators(top_k):
        op_rows.append((
            name,
            f"{(seconds / weight if weight else 0.0) * 1e3:.3f}ms",
            f"{(seconds / attributed if attributed else 0.0):.1%}",
        ) + tuple(
            f"{analysis.mean_seconds(name, phase) * 1e3:.3f}ms"
            for phase in PHASES
        ))
    parts.extend(_table(op_rows))
    if analysis.unclosed_spans:
        parts.append("")
        parts.append(
            f"{analysis.unclosed_spans} span(s) never closed "
            f"({analysis.stranded_tuples} stranded tuple(s) — work lost "
            "to crashed nodes with no failover)"
        )
    if analysis.problems:
        parts.append("")
        parts.append(f"lineage problems ({len(analysis.problems)}):")
        parts.extend(f"  {problem}" for problem in analysis.problems)
    return "\n".join(parts)
