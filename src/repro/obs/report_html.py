"""Self-contained static HTML reports for recorded runs.

``render_html_report`` turns one :class:`~repro.obs.runs.Run` into a
single HTML document with **zero external dependencies** — no script
tags, no CSS/font/image URLs, nothing fetched from the network.  Charts
are inline SVG generated here: per-node utilization sparklines, a
time × node utilization heatmap, and migration markers.  The file can be
archived as a CI artifact or mailed around and will render identically
anywhere.

The terminal view (``repro-rod trace`` / ``repro.obs.timeline``) stays
the quick-look tool; this module is the durable, shareable sibling
behind ``repro-rod report RUN``.
"""

from __future__ import annotations

import html
import json
import time
from typing import List, Mapping, Optional, Sequence

import numpy as np

from .analyze import TraceAnalysis, analyze_trace
from .critical_path import (
    PHASES,
    CriticalPathAnalysis,
    analyze_critical_path,
)
from .runs import Run
from .timeline import utilization_timeline

__all__ = ["render_html_report", "write_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e;
       line-height: 1.45; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #2563eb;
     padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #d4d4e0; padding: .25rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #eef1f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f2f3f7; padding: .05rem .3rem; border-radius: 3px;
       font-size: .85em; }
.meta { color: #555; font-size: .85rem; }
svg { display: block; }
.legend { font-size: .75rem; color: #555; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}g}"


def _utilization_color(value: float) -> str:
    """Blue ramp for [0, 1], switching to red past saturation."""
    v = max(0.0, float(value))
    if v > 1.0:
        over = min(1.0, v - 1.0)
        red = 220
        green = int(80 - 60 * over)
        blue = int(80 - 60 * over)
        return f"rgb({red},{max(green, 20)},{max(blue, 20)})"
    light = 245 - int(190 * v)
    return f"rgb({light},{light + 5},250)"


def _svg_sparkline(
    values: Sequence[float],
    width: int = 260,
    height: int = 32,
    ceiling: Optional[float] = None,
) -> str:
    """Inline SVG polyline of a series, with a dashed 1.0 reference."""
    series = [max(0.0, float(v)) for v in values] or [0.0]
    top = max(ceiling if ceiling is not None else 0.0, max(series), 1e-9)
    n = len(series)
    points = []
    for i, v in enumerate(series):
        x = (i / max(n - 1, 1)) * (width - 2) + 1
        y = height - 1 - (min(v, top) / top) * (height - 2)
        points.append(f"{x:.1f},{y:.1f}")
    ref = ""
    if top >= 1.0:
        ref_y = height - 1 - (1.0 / top) * (height - 2)
        ref = (
            f'<line x1="1" y1="{ref_y:.1f}" x2="{width - 1}" '
            f'y2="{ref_y:.1f}" stroke="#c33" stroke-width="1" '
            'stroke-dasharray="3,3"/>'
        )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} '
        f'{height}" role="img">'
        f'<rect width="{width}" height="{height}" fill="#f7f8fc"/>'
        f"{ref}"
        f'<polyline fill="none" stroke="#2563eb" stroke-width="1.5" '
        f'points="{" ".join(points)}"/>'
        "</svg>"
    )


def _svg_heatmap(
    matrix: np.ndarray,
    migrations: Sequence[object] = (),
    horizon: float = 0.0,
    cell_width_total: int = 640,
    row_height: int = 18,
    faults: Sequence[object] = (),
) -> str:
    """Time × node utilization heatmap with migration/fault markers."""
    steps, nodes = matrix.shape
    if steps == 0 or nodes == 0:
        return "<p class='meta'>no timeline data</p>"
    label_pad = 52
    width = cell_width_total + label_pad
    height = nodes * row_height + 18
    cell = cell_width_total / steps
    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} '
        f'{height}" role="img">'
    ]
    for node in range(nodes):
        y = node * row_height
        parts.append(
            f'<text x="0" y="{y + row_height - 5}" font-size="11" '
            f'fill="#333">node {node}</text>'
        )
        for step in range(steps):
            color = _utilization_color(float(matrix[step, node]))
            x = label_pad + step * cell
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{cell + 0.5:.2f}" '
                f'height="{row_height - 2}" fill="{color}"/>'
            )
    if horizon > 0:
        for m in migrations:
            x = label_pad + (float(m.t) / horizon) * cell_width_total
            parts.append(
                f'<line x1="{x:.2f}" y1="0" x2="{x:.2f}" '
                f'y2="{nodes * row_height - 2}" stroke="#111" '
                'stroke-width="1.5" stroke-dasharray="2,2"/>'
            )
        for fault in faults:
            if getattr(fault, "reverted", False):
                continue
            x = label_pad + (
                float(fault.t) / horizon
            ) * cell_width_total
            parts.append(
                f'<line x1="{x:.2f}" y1="0" x2="{x:.2f}" '
                f'y2="{nodes * row_height - 2}" stroke="#c0392b" '
                'stroke-width="1.5"/>'
            )
            parts.append(
                f'<text x="{x + 2:.2f}" y="10" font-size="9" '
                f'fill="#c0392b">{_esc(fault.kind)}</text>'
            )
    parts.append(
        f'<text x="{label_pad}" y="{height - 4}" font-size="10" '
        'fill="#777">t = 0</text>'
    )
    parts.append(
        f'<text x="{width - 40}" y="{height - 4}" font-size="10" '
        f'fill="#777">{_fmt(horizon)}s</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _kv_table(pairs: Sequence[tuple]) -> str:
    rows = "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>" for k, v in pairs
    )
    return f"<table>{rows}</table>"


def _manifest_section(run: Run) -> str:
    m = run.manifest
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(m.created_wall)
    )
    pairs = [
        ("run id", m.run_id),
        ("kind", m.kind),
        ("created", created),
        ("package version", m.version or "?"),
        ("config digest", m.config_digest or "?"),
        ("seed", "none" if m.seed is None else m.seed),
        ("wall seconds", "?" if m.wall_seconds is None
         else _fmt(m.wall_seconds)),
        ("simulated seconds", "?" if m.sim_seconds is None
         else _fmt(m.sim_seconds)),
    ]
    if m.argv:
        pairs.append(("argv", " ".join(m.argv)))
    for key, value in sorted(m.labels.items()):
        pairs.append((f"label:{key}", value))
    parts = ["<h2>Provenance</h2>", _kv_table(pairs)]
    if m.config:
        parts.append(
            "<details><summary class='meta'>configuration</summary>"
            f"<pre><code>{_esc(json.dumps(m.config, indent=2, sort_keys=True, default=str))}"
            "</code></pre></details>"
        )
    return "".join(parts)


def _headline_section(result: Mapping[str, object]) -> str:
    keys = (
        "duration", "tuples_in", "tuples_out", "max_utilization",
        "migrations", "volume_ratio",
    )
    pairs = [(k, result[k]) for k in keys if k in result]
    latency = result.get("latency")
    if isinstance(latency, Mapping):
        for name in ("mean", "p50", "p95", "p99", "max"):
            if name in latency:
                value = float(latency[name])  # type: ignore[arg-type]
                pairs.append((f"latency {name}", f"{value * 1e3:.2f} ms"))
    if not pairs:
        return ""
    return "<h2>Headline metrics</h2>" + _kv_table(pairs)


def _nodes_section(analysis: TraceAnalysis,
                   utilization: np.ndarray) -> str:
    util_means = analysis.utilization()
    rows = []
    for index, node in enumerate(analysis.nodes):
        series = (
            utilization[:, index] if utilization.size else np.zeros(1)
        )
        rows.append(
            "<tr>"
            f"<td>node {index}</td>"
            f"<td class='num'>{_fmt(node.busy_seconds)}</td>"
            f"<td class='num'>{_fmt(node.stall_seconds)}</td>"
            f"<td class='num'>{node.batches_serviced}</td>"
            f"<td class='num'>{node.peak_outstanding}</td>"
            f"<td class='num'>{_fmt(float(util_means[index]), 3)}</td>"
            f"<td class='num'>{_fmt(float(series.max()), 3)}</td>"
            f"<td>{_svg_sparkline(series, ceiling=1.0)}</td>"
            "</tr>"
        )
    return (
        "<h2>Per-node utilization</h2>"
        "<table><tr><th>node</th><th>busy s</th><th>stall s</th>"
        "<th>batches</th><th>peak queue</th><th>mean util</th>"
        "<th>peak util</th><th>timeline</th></tr>"
        + "".join(rows) + "</table>"
        "<p class='legend'>sparkline ceiling at utilization 1.0 "
        "(dashed red line = saturation)</p>"
    )


def _operators_section(analysis: TraceAnalysis) -> str:
    if not analysis.operators:
        return ""
    rows = []
    for name, op in sorted(analysis.operators.items()):
        nodes = ", ".join(str(n) for n in op.nodes)
        rows.append(
            "<tr>"
            f"<td><code>{_esc(name)}</code></td>"
            f"<td class='num'>{op.tuples_in}</td>"
            f"<td class='num'>{op.tuples_out}</td>"
            f"<td class='num'>{_fmt(op.work_seconds)}</td>"
            f"<td class='num'>{op.batches}</td>"
            f"<td>{_esc(nodes)}</td>"
            "</tr>"
        )
    return (
        "<h2>Per-operator activity</h2>"
        "<table><tr><th>operator</th><th>tuples in</th><th>tuples out</th>"
        "<th>work s</th><th>batches</th><th>nodes</th></tr>"
        + "".join(rows) + "</table>"
    )


def _migrations_section(analysis: TraceAnalysis) -> str:
    if not analysis.migrations:
        return ""
    rows = "".join(
        "<tr>"
        f"<td class='num'>{_fmt(m.t)}</td>"
        f"<td><code>{_esc(m.operator)}</code></td>"
        f"<td class='num'>{m.source}</td>"
        f"<td class='num'>{m.target}</td>"
        f"<td class='num'>{_fmt(m.pause)}</td>"
        "</tr>"
        for m in analysis.migrations
    )
    return (
        f"<h2>Migrations ({len(analysis.migrations)})</h2>"
        "<table><tr><th>t (s)</th><th>operator</th><th>from</th>"
        "<th>to</th><th>pause (s)</th></tr>" + rows + "</table>"
    )


def _decisions_section(analysis: TraceAnalysis, max_rows: int = 200) -> str:
    """Decision timeline: every controller deliberation, in time order.

    The summary line carries the trigger and no-op breakdowns; each row
    shows what the controller saw (loads), what it weighed (candidate
    count), and what it did (actions or the structured no-op reason).
    """
    if not analysis.decisions:
        return ""
    summary = analysis.decision_summary
    triggers = ", ".join(
        f"{name}={count}"
        for name, count in summary.get("triggers", {}).items()
    )
    no_op = ", ".join(
        f"{name}={count}"
        for name, count in summary.get("no_op", {}).items()
    )
    rows = []
    for view in analysis.decisions[:max_rows]:
        loads = ", ".join(f"{float(v):.2f}" for v in view.loads)
        volumes = ""
        if view.volume_before is not None:
            after = (
                "" if view.volume_after is None
                else f" &rarr; {float(view.volume_after):.3f}"
            )
            volumes = f"{float(view.volume_before):.3f}{after}"
        rows.append(
            "<tr>"
            f"<td class='num'>{_fmt(view.t)}</td>"
            f"<td class='num'>{view.decision}</td>"
            f"<td><code>{_esc(view.trigger)}</code></td>"
            f"<td><code>{_esc(view.controller)}</code></td>"
            f"<td><code>{_esc(view.reason)}</code></td>"
            f"<td class='num'>{view.actions}</td>"
            f"<td class='num'>{len(view.candidates)}</td>"
            f"<td>[{_esc(loads)}]</td>"
            f"<td class='num'>{volumes}</td>"
            "</tr>"
        )
    truncated = (
        f"<p>… and {len(analysis.decisions) - max_rows} more decisions"
        "</p>" if len(analysis.decisions) > max_rows else ""
    )
    return (
        f"<h2>Decision timeline ({len(analysis.decisions)})</h2>"
        f"<p>triggers: {_esc(triggers) or '—'}"
        + (f" · no-op reasons: {_esc(no_op)}" if no_op else "")
        + "</p>"
        "<table><tr><th>t (s)</th><th>#</th><th>trigger</th>"
        "<th>controller</th><th>outcome</th><th>moves</th>"
        "<th>candidates</th><th>loads</th><th>volume</th></tr>"
        + "".join(rows) + "</table>" + truncated
    )


def _drift_section(analysis: TraceAnalysis) -> str:
    if not analysis.drift:
        return ""
    rows = "".join(
        "<tr>"
        f"<td class='num'>{_fmt(float(d.get('t', 0.0)))}</td>"
        f"<td><code>{_esc(str(d.get('signal')))}</code></td>"
        f"<td class='num'>"
        f"{'' if d.get('input') is None else d.get('input')}</td>"
        f"<td><code>{_esc(str(d.get('direction')))}</code></td>"
        f"<td class='num'>{_fmt(float(d.get('observed', 0.0)))}</td>"
        f"<td class='num'>{_fmt(float(d.get('baseline', 0.0)))}</td>"
        f"<td class='num'>{_fmt(float(d.get('statistic', 0.0)))}</td>"
        "</tr>"
        for d in analysis.drift
    )
    return (
        f"<h2>Drift detections ({len(analysis.drift)})</h2>"
        "<table><tr><th>t (s)</th><th>signal</th><th>input</th>"
        "<th>direction</th><th>observed</th><th>baseline</th>"
        "<th>statistic</th></tr>" + rows + "</table>"
    )


def _faults_section(analysis: TraceAnalysis) -> str:
    injected = [f for f in analysis.faults if not f.reverted]
    if not injected:
        return ""
    rows = "".join(
        "<tr>"
        f"<td class='num'>{_fmt(f.t)}</td>"
        f"<td><code>{_esc(f.kind)}</code></td>"
        f"<td class='num'>{'' if f.node is None else f.node}</td>"
        f"<td>{_esc(f.operator or '')}</td>"
        f"<td class='num'>{'' if f.factor is None else _fmt(f.factor)}"
        "</td>"
        f"<td class='num'>"
        f"{'' if f.duration is None else _fmt(f.duration)}</td>"
        "</tr>"
        for f in injected
    )
    return (
        f"<h2>Injected faults ({len(injected)})</h2>"
        "<table><tr><th>t (s)</th><th>kind</th><th>node</th>"
        "<th>operator</th><th>factor</th><th>duration (s)</th></tr>"
        + rows + "</table>"
    )


#: Phase fill colors for the latency waterfall (stable order: PHASES).
_PHASE_COLORS = {
    "enqueue-wait": "#f59e0b",
    "service": "#2563eb",
    "migration-pause": "#8b5cf6",
    "stall": "#dc2626",
}


def _critical_path_section(
    analysis: CriticalPathAnalysis, top_k: int = 8
) -> str:
    """Latency waterfall: stacked per-phase bars for the top operators.

    Each row is one operator's mean per-sink-tuple latency contribution,
    split into phase segments — the flame-graph view of where an
    end-to-end millisecond actually went.  Bars share one scale so row
    lengths compare directly.
    """
    if analysis.spans_closed == 0:
        return ""
    top = analysis.top_operators(top_k)
    if not top:
        return ""
    weight = analysis.latency.total_tuples or 1
    scale = max(seconds / weight for _, seconds in top)
    if scale <= 0:
        return ""
    bar_width, row_height, label_pad = 420, 22, 120
    width = bar_width + label_pad + 80
    height = len(top) * row_height + 4
    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} '
        f'{height}" role="img">'
    ]
    for row, (operator, seconds) in enumerate(top):
        y = row * row_height
        parts.append(
            f'<text x="0" y="{y + row_height - 8}" font-size="11" '
            f'fill="#333">{_esc(operator)}</text>'
        )
        x = float(label_pad)
        for phase in PHASES:
            mean = analysis.mean_seconds(operator, phase)
            segment = (mean / scale) * bar_width
            if segment <= 0:
                continue
            parts.append(
                f'<rect x="{x:.2f}" y="{y + 2}" width="{segment:.2f}" '
                f'height="{row_height - 8}" '
                f'fill="{_PHASE_COLORS[phase]}"/>'
            )
            x += segment
        parts.append(
            f'<text x="{x + 4:.2f}" y="{y + row_height - 8}" '
            f'font-size="10" fill="#555">'
            f"{seconds / weight * 1e3:.3f} ms</text>"
        )
    parts.append("</svg>")
    legend = " &middot; ".join(
        f'<span style="color:{_PHASE_COLORS[p]}">&#9632;</span> {_esc(p)}'
        for p in PHASES
    )
    mean_ms = analysis.latency.mean() * 1e3
    return (
        "<h2>Latency critical path</h2>"
        f"<p class='meta'>mean end-to-end latency {mean_ms:.3f} ms over "
        f"{analysis.latency.total_tuples} sink tuples; "
        f"{analysis.attributed_ratio:.2%} attributed to "
        "(operator, phase) pairs</p>"
        + "".join(parts)
        + f"<p class='legend'>{legend} — bar length is the operator's "
        "mean per-tuple latency contribution</p>"
    )


def _events_section(analysis: TraceAnalysis) -> str:
    if not analysis.events_by_type:
        return ""
    rows = "".join(
        f"<tr><td><code>{_esc(name)}</code></td>"
        f"<td class='num'>{count}</td></tr>"
        for name, count in sorted(analysis.events_by_type.items())
    )
    return (
        "<h2>Events by type</h2>"
        "<table><tr><th>type</th><th>count</th></tr>" + rows + "</table>"
    )


def _rows_section(result: Mapping[str, object]) -> str:
    rows = result.get("rows")
    if not isinstance(rows, list) or not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        if isinstance(row, Mapping):
            for key in row:
                if key not in columns:
                    columns.append(str(key))
    header = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = []
    for row in rows:
        if not isinstance(row, Mapping):
            continue
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"<td class='num'>{_fmt(value)}</td>")
            else:
                cells.append(f"<td>{_esc(value)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        "<h2>Experiment rows</h2>"
        f"<table><tr>{header}</tr>" + "".join(body) + "</table>"
    )


def _phase_section(metrics: Mapping[str, object]) -> str:
    family = metrics.get("repro_phase_seconds")
    if not isinstance(family, Mapping):
        return ""
    samples = family.get("samples")
    if not isinstance(samples, list) or not samples:
        return ""
    rows = []
    for sample in samples:
        if not isinstance(sample, Mapping):
            continue
        labels = sample.get("labels", {})
        phase = labels.get("phase", "?") if isinstance(labels, Mapping) \
            else "?"
        count = int(sample.get("count", 0))  # type: ignore[arg-type]
        total = float(sample.get("sum", 0.0))  # type: ignore[arg-type]
        mean = total / count if count else 0.0
        rows.append(
            f"<tr><td><code>{_esc(phase)}</code></td>"
            f"<td class='num'>{count}</td>"
            f"<td class='num'>{total * 1e3:.2f}</td>"
            f"<td class='num'>{mean * 1e3:.2f}</td></tr>"
        )
    if not rows:
        return ""
    return (
        "<h2>Profiled phases</h2>"
        "<table><tr><th>phase</th><th>calls</th><th>total ms</th>"
        "<th>mean ms</th></tr>" + "".join(rows) + "</table>"
    )


def render_html_report(run: Run) -> str:
    """Render one recorded run as a self-contained HTML document."""
    sections: List[str] = [_manifest_section(run), _headline_section(
        run.result
    )]
    events = run.events()
    if events:
        analysis = analyze_trace(events)
        utilization = utilization_timeline(events, metadata=analysis.meta)
        horizon = float(analysis.meta["horizon"])
        sections.append("<h2>Utilization heatmap</h2>")
        sections.append(_svg_heatmap(
            utilization, migrations=analysis.migrations, horizon=horizon,
            faults=analysis.faults,
        ))
        sections.append(
            "<p class='legend'>rows are nodes, columns are "
            f"{_fmt(float(analysis.meta['step_seconds']))}s bins; blue "
            "depth is utilization, red marks &gt; 1.0, dashed lines are "
            "applied migrations, solid red lines are injected faults</p>"
        )
        sections.append(_nodes_section(analysis, utilization))
        sections.append(_operators_section(analysis))
        sections.append(_critical_path_section(
            analyze_critical_path(events)
        ))
        sections.append(_decisions_section(analysis))
        sections.append(_drift_section(analysis))
        sections.append(_migrations_section(analysis))
        sections.append(_faults_section(analysis))
        sections.append(_events_section(analysis))
    sections.append(_rows_section(run.result))
    sections.append(_phase_section(run.metrics))
    title = f"run {run.manifest.run_id} ({run.manifest.kind})"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n"
        "</head><body>\n"
        f"<h1>{_esc(title)}</h1>\n"
        + "\n".join(s for s in sections if s)
        + "\n</body></html>\n"
    )


def write_html_report(run: Run, path: str) -> str:
    """Write :func:`render_html_report` output to ``path``; returns it."""
    document = render_html_report(run)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
