"""Structured event tracing: typed events, sinks, JSONL round-trip.

A :class:`Tracer` turns instrumentation points into
:class:`TraceEvent` records and hands them to a sink.  The default sink
is :data:`NULL_SINK`, whose tracer reports ``enabled = False`` — hot
paths guard on that flag, so with tracing off **no event object is ever
allocated** (verified by the null-sink test).

Events carry two clocks:

* ``t`` — simulated seconds since the start of the run (``None`` for
  events outside a simulation, e.g. placement-search iterations);
* ``wall`` — wall-clock epoch seconds at emission.

The JSONL wire format is one object per line with the reserved keys
``type`` / ``t`` / ``wall`` plus the event's free-form fields, e.g.::

    {"type": "batch.serviced", "t": 1.25, "wall": 1754..., "node": 0,
     "operator": "agg1", "count": 12, "out": 3, "work": 0.006}

``read_trace`` parses a file back into events; the schema is documented
in ``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

from . import schema

__all__ = [
    "EVENT_TYPES",
    "TraceEvent",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "Tracer",
    "NULL_SINK",
    "NULL_TRACER",
    "read_trace",
    "parse_trace_line",
    "trace_digest",
]

#: Event types the built-in instrumentation emits, derived from the
#: observability schema registry (:mod:`repro.obs.schema`) — one source
#: of truth shared by the emitters, the analyzers, and the static
#: conformance check (``REPRO610``).  ``Tracer.emit`` accepts any dotted
#: name unless constructed with ``validate=True``.
EVENT_TYPES = schema.event_types()

_RESERVED_KEYS = frozenset({"type", "t", "wall"})


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    type: str
    t: Optional[float]
    wall: float
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_json_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"type": self.type, "t": self.t,
                                  "wall": self.wall}
        obj.update(self.fields)
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "TraceEvent":
        if "type" not in obj:
            raise ValueError("trace record lacks a 'type' key")
        data = dict(obj)
        type_ = str(data.pop("type"))
        t = data.pop("t", None)
        wall = data.pop("wall", 0.0)
        return cls(
            type=type_,
            t=None if t is None else float(t),
            wall=float(wall),
            fields=data,
        )


class TraceSink:
    """Destination for trace events.  Subclasses override ``write``."""

    #: Tracers wrapping this sink construct and forward events iff True.
    enabled = True

    def write(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything; marks the wrapping tracer disabled."""

    enabled = False

    def write(self, event: TraceEvent) -> None:  # pragma: no cover
        pass


class MemorySink(TraceSink):
    """Collects events in a list — the test/inspection sink."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)


class JsonlSink(TraceSink):
    """Writes events as JSON lines to a path or text handle."""

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self.path: Optional[str] = target
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self.path = getattr(target, "name", None)
            self._handle = target
            self._owns_handle = False
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        json.dump(event.to_json_obj(), self._handle,
                  separators=(",", ":"), default=_jsonable)
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()
        elif not self._handle.closed:
            self._handle.flush()


def _jsonable(value: object) -> object:
    """Fallback serializer: numpy scalars/arrays -> python numbers/lists."""
    # tolist before item: arrays only support the former, scalars both.
    for attr in ("tolist", "item"):
        convert = getattr(value, attr, None)
        if callable(convert):
            return convert()
    raise TypeError(
        f"trace field of type {type(value).__name__} is not JSON-seriali"
        f"zable"
    )


NULL_SINK = NullSink()


class Tracer:
    """Front end the instrumented code talks to.

    Hot paths should hoist ``tracer.enabled`` into a local and guard each
    ``emit`` call on it; ``emit`` itself also guards, so a stray
    unguarded call on a disabled tracer costs one attribute check and
    allocates nothing.
    """

    __slots__ = ("sink", "enabled", "validate", "events_emitted")

    def __init__(
        self, sink: Optional[TraceSink] = None, validate: bool = False
    ) -> None:
        self.sink = NULL_SINK if sink is None else sink
        self.enabled = bool(getattr(self.sink, "enabled", True))
        self.validate = validate
        self.events_emitted = 0

    def emit(
        self, type_: str, t: Optional[float] = None, **fields: object
    ) -> None:
        """Record one event (no-op when the sink is disabled)."""
        if not self.enabled:
            return
        bad = _RESERVED_KEYS.intersection(fields)
        if bad:
            raise ValueError(
                f"trace fields {sorted(bad)} collide with reserved keys"
            )
        if self.validate:
            schema.validate_event(type_, fields)
        self.sink.write(
            TraceEvent(type=type_, t=t, wall=time.time(), fields=fields)
        )
        self.events_emitted += 1

    def close(self) -> None:
        self.sink.close()


NULL_TRACER = Tracer()


def parse_trace_line(line: str) -> TraceEvent:
    """Parse one JSONL line into a :class:`TraceEvent`."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("trace line is not a JSON object")
    return TraceEvent.from_json_obj(obj)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """Content digest of a trace, ignoring wall-clock timestamps.

    Two runs of the same seeded simulation must hash identically even
    though their ``wall`` fields differ — this is the determinism gate
    the fault-injection CI job diffs.  The digest covers each event's
    type, simulated time, and fields (keys sorted), in emission order.
    """
    hasher = hashlib.sha256()
    for event in events:
        record = {
            "type": event.type,
            "t": event.t,
            "fields": dict(sorted(event.fields.items())),
        }
        hasher.update(
            json.dumps(
                record, separators=(",", ":"), sort_keys=True,
                default=_jsonable,
            ).encode("utf-8")
        )
        hasher.update(b"\n")
    return hasher.hexdigest()


def read_trace(source: Union[str, Iterable[str]]) -> List[TraceEvent]:
    """Read a JSONL trace file (or iterable of lines) into events.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    their line number.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            return read_trace(list(handle))
    events = []
    for number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(parse_trace_line(line))
        except ValueError as exc:
            raise ValueError(f"line {number}: {exc}") from exc
    return events
