"""Configured logging for the ``repro`` package.

Library modules log through :func:`get_logger` (namespaced under
``repro.``) instead of ``print()`` — the ``repro-lint`` rule REPRO505
enforces this.  The CLI calls :func:`configure` once with the verbosity
implied by ``--verbose`` / ``--quiet``; libraries never configure
handlers themselves, so embedding ``repro`` in a larger application
keeps that application in charge of log routing.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure", "level_for"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` namespace.

    Pass ``__name__`` from package modules (already ``repro.*``); any
    other name is nested under ``repro.`` so one ``configure`` call
    controls everything.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def level_for(verbosity: int) -> int:
    """Map a ``--verbose``/``--quiet`` count to a logging level.

    ``0`` (default) shows warnings, each ``-v`` steps toward ``DEBUG``,
    ``-q`` shows errors only.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install (or update) the CLI's handler on the ``repro`` logger.

    Idempotent: repeated calls adjust the level of the one handler this
    module owns instead of stacking new ones.  Returns the root
    ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = level_for(verbosity)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
