"""Controller decision telemetry: audit every migration (and non-move).

The dynamics controllers (`repro.dynamics.controller`,
`repro.dynamics.failover`) decide, reject, and apply migrations; until
now only the final ``migration.applied`` event survived in the trace.
This module is the audit trail:

* :class:`DecisionTelemetry` — a collector the simulator attaches to a
  controller (duck-typed ``controller.telemetry`` attribute) **only when
  tracing is enabled**.  Controllers guard every record-building line on
  ``self.telemetry is not None``, so the disabled-tracing hot path
  allocates nothing (``benchmark_obs_overhead.py`` asserts this).
* :class:`DecisionRecord` / :class:`CandidateRecord` — one deliberation
  with the trigger (periodic / slo-burn / fault / recover, plus
  split / merge for elastic repartitioning), the observed
  per-node load snapshot, every candidate migration considered with its
  policy score, and the outcome: ``migrate`` or a structured no-op
  reason (:data:`NOOP_REASONS`).
* Trace-side reconstruction — :func:`decisions_from_trace`,
  :func:`explain_migrations`, :func:`decision_snapshot` — which the
  ``repro-rod why`` CLI, the HTML report's decision-timeline panel, and
  the run-registry snapshot build on.  Every ``migration.applied`` event
  carries the ``decision`` id of the record that caused it, and
  ``node.stall`` events carry it too, so reconfiguration pauses are
  attributable to the decision that triggered them.

Scores are policy-specific but always *higher is better*: the balance
policy scores a candidate by how close its transfer lands to half the
load gap (negated distance), the volume failover policy by the residual
feasible-volume ratio the cluster would keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .trace import TraceEvent

__all__ = [
    "ACTION_MIGRATE",
    "NOOP_REASONS",
    "CandidateRecord",
    "DecisionRecord",
    "DecisionTelemetry",
    "DecisionView",
    "MigrationExplanation",
    "decisions_from_trace",
    "explain_migrations",
    "decision_snapshot",
    "render_why_report",
    "why_json_obj",
]

#: Outcome when at least one migration was issued.
ACTION_MIGRATE = "migrate"

#: The structured reasons a deliberation can end without (further) moves.
NOOP_REASONS = (
    "below-threshold",      # load gap under the imbalance threshold
    "cooldown-pinned",      # every candidate moved too recently
    "no-valid-candidate",   # no operator's transfer fits the gap
    "max-moves-exhausted",  # per-period move budget hit, still imbalanced
    "event-driven-idle",    # failover controller's periodic poll (no-op)
    "no-survivors",         # node failed with no alive node to evacuate to
    "nothing-displaced",    # node failed/recovered with nothing to move
    "failback-disabled",    # node recovered but failback is off
    "unobserved",           # synthesized for controllers without telemetry
    "no-partition-groups",  # elastic controller on an unpartitioned graph
    "partitions-balanced",  # every partition group within the hot threshold
    "repartition-cooldown",  # imbalanced group rebalanced too recently
)


@dataclass
class CandidateRecord:
    """One migration the controller weighed (chosen or not)."""

    operator: str
    source: int
    target: int
    score: float
    status: str  # "chosen" | "outscored" | "cooldown-pinned" | ...

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "source": self.source,
            "target": self.target,
            "score": self.score,
            "status": self.status,
        }


@dataclass
class DecisionRecord:
    """One controller deliberation, as built by the controller itself."""

    trigger: str                     # periodic | slo-burn | fault | recover
    controller: str                  # policy name ("balance", "failover")
    loads: List[float]               # observed per-node load snapshot
    reason: str = "below-threshold"  # outcome: ACTION_MIGRATE or a no-op
    actions: int = 0                 # migrations issued this deliberation
    node: Optional[int] = None       # fault/recover trigger node
    burn_rate: Optional[float] = None
    candidates: List[CandidateRecord] = field(default_factory=list)

    def add_candidate(
        self, operator: str, source: int, target: int,
        score: float, status: str,
    ) -> None:
        self.candidates.append(
            CandidateRecord(operator=operator, source=source,
                            target=target, score=float(score),
                            status=status)
        )


class DecisionTelemetry:
    """Collector the engine attaches to a controller while tracing.

    Controllers call :meth:`begin` once per deliberation and mutate the
    returned record; the engine :meth:`drain`-s the pending records
    after each ``decide()`` / failover-hook call and emits one
    ``decision.evaluated`` trace event per record.
    """

    def __init__(self) -> None:
        self._pending: List[DecisionRecord] = []
        self.records_created = 0

    def begin(
        self,
        trigger: str,
        controller: str,
        loads: Sequence[float],
        node: Optional[int] = None,
        burn_rate: Optional[float] = None,
    ) -> DecisionRecord:
        record = DecisionRecord(
            trigger=trigger,
            controller=controller,
            loads=[float(value) for value in loads],
            node=node,
            burn_rate=burn_rate,
        )
        self._pending.append(record)
        self.records_created += 1
        return record

    def drain(self) -> List[DecisionRecord]:
        pending, self._pending = self._pending, []
        return pending


# ---------------------------------------------------------------- trace side


@dataclass(frozen=True)
class DecisionView:
    """One ``decision.evaluated`` event read back from a trace."""

    decision: int
    t: float
    trigger: str
    controller: str
    reason: str
    actions: int
    loads: Sequence[float]
    candidates: Sequence[Mapping[str, object]]
    node: Optional[int] = None
    volume_before: Optional[float] = None
    volume_after: Optional[float] = None
    burn_rate: Optional[float] = None

    @property
    def chosen(self) -> List[Mapping[str, object]]:
        return [c for c in self.candidates if c.get("status") == "chosen"]

    @property
    def rejected(self) -> List[Mapping[str, object]]:
        return [c for c in self.candidates if c.get("status") != "chosen"]


@dataclass(frozen=True)
class MigrationExplanation:
    """One applied migration tied back to the decision that caused it."""

    t: float
    operator: str
    source: int
    target: int
    pause: float
    reason: str                       # "balance" | "failover"
    decision: Optional[DecisionView]  # None when unlinked (old trace)
    pause_served: float = 0.0         # stall seconds attributed via trace


def decisions_from_trace(
    events: Iterable[TraceEvent],
) -> List[DecisionView]:
    """Reconstruct every decision record from a trace, in time order."""
    views = []
    for event in events:
        if event.type != "decision.evaluated":
            continue
        f = event.fields
        views.append(DecisionView(
            decision=int(f["decision"]),
            t=0.0 if event.t is None else float(event.t),
            trigger=str(f["trigger"]),
            controller=str(f["controller"]),
            reason=str(f["reason"]),
            actions=int(f["actions"]),
            loads=list(f.get("loads", ())),
            candidates=list(f.get("candidates", ())),
            node=f.get("node"),
            volume_before=f.get("volume_before"),
            volume_after=f.get("volume_after"),
            burn_rate=f.get("burn_rate"),
        ))
    return views


def explain_migrations(
    events: Sequence[TraceEvent],
) -> List[MigrationExplanation]:
    """Map every ``migration.applied`` event to its decision record.

    Pause attribution sums the ``node.stall`` events tagged with the
    same decision id, split evenly across that decision's migrations
    (one decision can issue several moves that share the stalls).
    """
    by_id = {
        view.decision: view for view in decisions_from_trace(events)
    }
    stall_seconds: Dict[int, float] = {}
    moves_per_decision: Dict[int, int] = {}
    applied = []
    for event in events:
        f = event.fields
        if event.type == "node.stall" and "decision" in f:
            decision_id = int(f["decision"])
            stall_seconds[decision_id] = (
                stall_seconds.get(decision_id, 0.0)
                + float(f.get("work", 0.0))
            )
        elif event.type == "migration.applied":
            applied.append(event)
            if "decision" in f:
                decision_id = int(f["decision"])
                moves_per_decision[decision_id] = (
                    moves_per_decision.get(decision_id, 0) + 1
                )
    explanations = []
    for event in applied:
        f = event.fields
        decision_id = f.get("decision")
        view = None if decision_id is None else by_id.get(int(decision_id))
        served = 0.0
        if decision_id is not None:
            did = int(decision_id)
            served = (
                stall_seconds.get(did, 0.0)
                / max(1, moves_per_decision.get(did, 1))
            )
        explanations.append(MigrationExplanation(
            t=0.0 if event.t is None else float(event.t),
            operator=str(f["operator"]),
            source=int(f["source"]),
            target=int(f["target"]),
            pause=float(f["pause"]),
            reason=str(f["reason"]),
            decision=view,
            pause_served=served,
        ))
    return explanations


def decision_snapshot(
    events: Sequence[TraceEvent],
) -> Dict[str, object]:
    """Diffable summary of decision/drift activity for ``result.json``.

    Keys are stable and flat-ish so ``repro-rod compare`` can walk them;
    zero-valued sections are still emitted (a controller-less run reads
    as "0 decisions", which is itself a diffable fact).
    """
    views = decisions_from_trace(events)
    explanations = explain_migrations(events)
    triggers: Dict[str, int] = {}
    no_op: Dict[str, int] = {}
    rejected = 0
    for view in views:
        triggers[view.trigger] = triggers.get(view.trigger, 0) + 1
        if view.actions == 0:
            no_op[view.reason] = no_op.get(view.reason, 0) + 1
        rejected += len(view.rejected)
    linked = sum(1 for e in explanations if e.decision is not None)
    return {
        "evaluated": len(views),
        "migrations": len(explanations),
        "linked_migrations": linked,
        "rejected_candidates": rejected,
        "pause_seconds": round(
            sum(e.pause_served for e in explanations), 9
        ),
        "triggers": dict(sorted(triggers.items())),
        "no_op": dict(sorted(no_op.items())),
    }


# ------------------------------------------------------------------ rendering


def _fmt_volume(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{float(value):.4f}"


def why_json_obj(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """The ``repro-rod why --json`` payload."""
    views = decisions_from_trace(events)
    explanations = explain_migrations(events)
    drift = [
        dict(event.fields, t=event.t)
        for event in events
        if event.type == "drift.detected"
    ]
    return {
        "summary": decision_snapshot(events),
        "migrations": [
            {
                "t": e.t,
                "operator": e.operator,
                "source": e.source,
                "target": e.target,
                "pause": e.pause,
                "pause_served": e.pause_served,
                "reason": e.reason,
                "decision": None if e.decision is None else {
                    "id": e.decision.decision,
                    "t": e.decision.t,
                    "trigger": e.decision.trigger,
                    "controller": e.decision.controller,
                    "loads": list(e.decision.loads),
                    "volume_before": e.decision.volume_before,
                    "volume_after": e.decision.volume_after,
                    "burn_rate": e.decision.burn_rate,
                    "candidates": [dict(c) for c in e.decision.candidates],
                },
            }
            for e in explanations
        ],
        "no_op_decisions": [
            {
                "id": view.decision,
                "t": view.t,
                "trigger": view.trigger,
                "controller": view.controller,
                "reason": view.reason,
                "candidates": [dict(c) for c in view.candidates],
            }
            for view in views
            if view.actions == 0
        ],
        "drift": drift,
    }


def render_why_report(events: Sequence[TraceEvent]) -> str:
    """Human-readable ``repro-rod why`` verdict."""
    views = decisions_from_trace(events)
    explanations = explain_migrations(events)
    snapshot = decision_snapshot(events)
    lines = []
    lines.append(
        f"decisions evaluated : {snapshot['evaluated']}"
    )
    lines.append(
        f"migrations applied  : {snapshot['migrations']} "
        f"({snapshot['linked_migrations']} linked to a decision)"
    )
    lines.append(
        f"candidates rejected : {snapshot['rejected_candidates']}"
    )
    lines.append(
        f"pause attributed    : {snapshot['pause_seconds']:.3f}s of "
        "endpoint stall"
    )
    triggers = snapshot["triggers"]
    if triggers:
        cells = ", ".join(
            f"{name}={count}" for name, count in triggers.items()
        )
        lines.append(f"triggers            : {cells}")
    no_op = snapshot["no_op"]
    if no_op:
        cells = ", ".join(
            f"{name}={count}" for name, count in no_op.items()
        )
        lines.append(f"no-op reasons       : {cells}")

    drift_events = [e for e in events if e.type == "drift.detected"]
    if drift_events:
        lines.append("")
        lines.append(f"drift detections ({len(drift_events)}):")
        for event in drift_events:
            f = event.fields
            where = (
                f" input={f['input']}" if "input" in f else ""
            )
            lines.append(
                f"  t={event.t:>8.2f}s  {f['signal']}{where} "
                f"{f['direction']}: observed {float(f['observed']):.3f} "
                f"vs baseline {float(f['baseline']):.3f} "
                f"(stat {float(f['statistic']):.3f} > "
                f"{float(f['threshold']):.3f})"
            )

    if explanations:
        lines.append("")
        lines.append(f"migrations ({len(explanations)}):")
    for e in explanations:
        lines.append(
            f"  t={e.t:>8.2f}s  {e.operator}: node {e.source} -> "
            f"{e.target}  [{e.reason}]  pause={e.pause:.3f}s "
            f"(served {e.pause_served:.3f}s)"
        )
        view = e.decision
        if view is None:
            lines.append(
                "      (no decision record — trace predates decision "
                "telemetry)"
            )
            continue
        loads = ", ".join(f"{load:.3f}" for load in view.loads)
        lines.append(
            f"      decision #{view.decision} trigger={view.trigger} "
            f"controller={view.controller}  loads=[{loads}]"
        )
        if (view.volume_before is not None
                or view.volume_after is not None):
            lines.append(
                "      feasible volume "
                f"{_fmt_volume(view.volume_before)} -> "
                f"{_fmt_volume(view.volume_after)}"
            )
        rejected = view.rejected
        if rejected:
            lines.append(
                f"      rejected alternatives ({len(rejected)}):"
            )
            for cand in rejected:
                lines.append(
                    f"        {cand.get('operator')}: node "
                    f"{cand.get('source')} -> {cand.get('target')} "
                    f"score={float(cand.get('score', 0.0)):.4f} "
                    f"[{cand.get('status')}]"
                )

    no_ops = [view for view in views if view.actions == 0]
    if no_ops:
        lines.append("")
        lines.append(f"no-op periods ({len(no_ops)}):")
        preview = no_ops if len(no_ops) <= 12 else no_ops[:12]
        for view in preview:
            lines.append(
                f"  t={view.t:>8.2f}s  #{view.decision} "
                f"trigger={view.trigger} reason={view.reason}"
            )
        if len(no_ops) > len(preview):
            lines.append(
                f"  ... and {len(no_ops) - len(preview)} more"
            )
    return "\n".join(lines)
