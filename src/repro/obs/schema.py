"""The observability schema registry: declared events and metrics.

Until now the event types the simulator emits, the fields
``repro.obs.analyze`` reads back, and the columns the HTML report
renders agreed only by convention — a renamed field broke the analyzer
silently.  This module is the single declaration both sides import:

* :data:`EVENT_SCHEMAS` — every trace-event type with its required and
  optional field names.  ``repro.obs.trace.EVENT_TYPES`` is derived
  from it, and the static checker (``repro-rod check --flow``) verifies
  every ``tracer.emit("type", ...)`` site in the source tree against it
  (diagnostic ``REPRO610``).
* :data:`METRIC_SCHEMAS` — every metric family name with its kind and
  label names.  Registration sites (``registry.counter(...)`` etc.) are
  checked statically too (``REPRO611``).

Runtime twins of the static checks: :func:`validate_event` and
:func:`validate_metric` raise ``ValueError`` on undeclared names or
fields, and ``Tracer(sink, validate=True)`` validates every emission.
Adding an event or metric therefore means declaring it here first —
which is exactly the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

__all__ = [
    "EventSchema",
    "MetricSchema",
    "EVENT_SCHEMAS",
    "METRIC_SCHEMAS",
    "event_types",
    "validate_event",
    "validate_metric",
    "event_catalog_markdown",
    "metric_catalog_markdown",
]


@dataclass(frozen=True)
class EventSchema:
    """Declared shape of one trace-event type.

    ``required`` fields must appear on every emission; ``optional``
    fields may.  ``extra_allowed`` opts an event out of the
    unknown-field check — only ``phase`` uses it, because
    :class:`~repro.obs.timer.PhaseTimer` forwards caller-supplied
    context fields verbatim.
    """

    type: str
    help: str
    required: FrozenSet[str] = frozenset()
    optional: FrozenSet[str] = frozenset()
    extra_allowed: bool = False

    @property
    def fields(self) -> FrozenSet[str]:
        return self.required | self.optional


@dataclass(frozen=True)
class MetricSchema:
    """Declared shape of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: Tuple[str, ...] = ()


def _event(
    type_: str,
    help_: str,
    required: Iterable[str] = (),
    optional: Iterable[str] = (),
    extra_allowed: bool = False,
) -> EventSchema:
    return EventSchema(
        type=type_,
        help=help_,
        required=frozenset(required),
        optional=frozenset(optional),
        extra_allowed=extra_allowed,
    )


#: type -> schema for every event the built-in instrumentation emits.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    schema.type: schema
    for schema in (
        _event(
            "sim.start",
            "run header: cluster geometry and simulation parameters",
            required=("nodes", "operators", "step_seconds", "horizon",
                      "capacities", "scheduling", "arrival_kind"),
        ),
        _event(
            "sim.end",
            "run footer: busy totals, tuple counts, migrations",
            required=("node_busy", "tuples_in", "tuples_out",
                      "max_utilization", "migrations"),
            optional=("faults", "stranded_tuples", "repartitions"),
        ),
        _event(
            "batch.enqueued",
            "a batch joined a node's queue",
            required=("node", "operator", "port", "count"),
        ),
        _event(
            "batch.serviced",
            "a node finished processing a batch",
            required=("node", "operator", "port", "count", "out", "work"),
            optional=("sink", "latency"),
        ),
        _event("node.busy", "idle -> busy transition", required=("node",)),
        _event("node.idle", "busy -> idle transition", required=("node",)),
        _event(
            "node.stall",
            "migration pause served by a node",
            required=("node", "work"),
            optional=("start", "decision"),
        ),
        _event(
            "span.open",
            "a batch span was born: source injection or operator fan-out",
            required=("span", "operator", "port", "count", "birth"),
            optional=("parent",),
        ),
        _event(
            "span.close",
            "a batch span finished service on a node",
            required=("span", "node", "start", "work", "out"),
            optional=("sink", "latency"),
        ),
        _event(
            "migration.decided",
            "controller returned a move",
            required=("operator", "source", "target", "pause"),
            optional=("decision",),
        ),
        _event(
            "migration.applied",
            "engine applied a (non-stale) move",
            required=("operator", "source", "target", "pause", "reason"),
            optional=("decision",),
        ),
        _event(
            "decision.evaluated",
            "one controller deliberation: trigger, loads, candidates, "
            "outcome",
            required=("decision", "trigger", "controller", "reason",
                      "actions", "loads"),
            optional=("candidates", "node", "volume_before",
                      "volume_after", "burn_rate"),
        ),
        _event(
            "elastic.split",
            "elastic placer split an operator into key partitions",
            required=("operator", "ways", "ratio_before", "ratio_after",
                      "kept"),
            optional=("fractions",),
        ),
        _event(
            "elastic.merge",
            "elastic placer collapsed a cold partition group",
            required=("operator", "ratio_before", "ratio_after", "kept"),
        ),
        _event(
            "elastic.repartition",
            "engine reassigned key-range fractions inside a partition "
            "group",
            required=("operator", "fractions", "pause"),
            optional=("decision",),
        ),
        _event(
            "drift.detected",
            "a windowed change statistic crossed its threshold",
            required=("signal", "direction", "statistic", "threshold",
                      "observed", "baseline"),
            optional=("input",),
        ),
        _event(
            "fault.injected",
            "a scheduled fault event fired",
            required=("kind",),
            optional=("node", "operator", "factor", "duration"),
        ),
        _event(
            "fault.reverted",
            "a windowed fault's effect expired",
            required=("kind",),
            optional=("node", "operator"),
        ),
        _event(
            "placement.step",
            "one greedy assignment (ROD)",
            required=("algorithm", "index", "operator", "node",
                      "class_one_size", "chosen_from_class_one"),
        ),
        _event(
            "placement.iteration",
            "one annealing search iteration sample",
            required=("algorithm", "iteration", "current", "best",
                      "temperature", "improved"),
        ),
        _event(
            "placement.milp",
            "one MILP solve",
            required=("algorithm", "seconds", "status", "variables",
                      "objective"),
        ),
        _event(
            "feasibility.probe",
            "one empirical feasibility verdict",
            required=("rates", "feasible", "max_utilization",
                      "backlog_seconds"),
        ),
        _event(
            "phase",
            "a profiled phase finished (PhaseTimer)",
            required=("name", "seconds"),
            extra_allowed=True,
        ),
    )
}


def _metric(
    name: str, kind: str, help_: str, labels: Sequence[str] = ()
) -> MetricSchema:
    return MetricSchema(name=name, kind=kind, help=help_,
                        labels=tuple(labels))


#: name -> schema for every metric family the library registers.
METRIC_SCHEMAS: Dict[str, MetricSchema] = {
    schema.name: schema
    for schema in (
        _metric("rod_sim_tuples_total", "counter",
                "source tuples injected / sink tuples produced",
                ("direction",)),
        _metric("rod_sim_migrations_total", "counter",
                "operator migrations applied"),
        _metric("rod_sim_faults_total", "counter",
                "fault events injected into simulation runs", ("kind",)),
        _metric("rod_sim_runs_total", "counter",
                "simulation runs completed"),
        _metric("rod_sim_node_utilization", "gauge",
                "per-node utilization of the latest run", ("node",)),
        _metric("rod_sim_latency_seconds", "gauge",
                "end-to-end latency quantiles of the latest run",
                ("quantile",)),
        _metric("rod_decisions_total", "counter",
                "controller decision records emitted", ("trigger",)),
        _metric("rod_drift_events_total", "counter",
                "drift detections per monitored signal", ("signal",)),
        _metric("rod_drift_statistic", "gauge",
                "end-of-run Page-Hinkley statistic per signal",
                ("signal",)),
        _metric("rod_drift_baseline", "gauge",
                "end-of-run EWMA baseline level per signal", ("signal",)),
        _metric("rod_slo_budget_remaining", "gauge",
                "fraction of an objective's error budget left",
                ("objective",)),
        _metric("rod_slo_worst_burn_rate", "gauge",
                "worst burn rate observed over an objective's windows",
                ("objective",)),
        _metric("rod_slo_breaches_total", "counter",
                "windows that burned faster than the objective allows",
                ("objective",)),
        _metric("repro_phase_seconds", "histogram",
                "wall-clock seconds spent per profiled phase", ("phase",)),
        _metric("repro_parallel_tasks", "counter",
                "tasks executed through repro.parallel", ("mode",)),
        _metric("repro_parallel_failures", "counter",
                "tasks that raised or timed out in repro.parallel",
                ("mode",)),
        _metric("repro_parallel_pools", "counter",
                "process pools spun up by repro.parallel"),
        _metric("repro_parallel_pool_retries", "counter",
                "fresh pools spun up after a BrokenProcessPool"),
        _metric("repro_volume_cache_hits", "counter",
                "QMC sample-point cache hits"),
        _metric("repro_volume_cache_misses", "counter",
                "QMC sample-point cache misses (generations)"),
        _metric("repro_volume_cache_evictions", "counter",
                "QMC sample-point cache LRU evictions"),
        _metric("repro_volume_cache_points", "gauge",
                "QMC sample points currently resident in the cache"),
    )
}


def event_types() -> FrozenSet[str]:
    """The registered event type names (backs ``trace.EVENT_TYPES``)."""
    return frozenset(EVENT_SCHEMAS)


def validate_event(type_: str, fields: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless the emission matches its schema.

    Unknown event types, missing required fields, and undeclared fields
    (unless the schema allows extras) are all rejected — the runtime
    twin of static rule ``REPRO610``.
    """
    schema = EVENT_SCHEMAS.get(type_)
    if schema is None:
        raise ValueError(
            f"trace event type {type_!r} is not declared in "
            f"repro.obs.schema.EVENT_SCHEMAS"
        )
    names = set(fields)
    missing = sorted(schema.required - names)
    if missing:
        raise ValueError(
            f"trace event {type_!r} lacks required field(s) {missing}"
        )
    if not schema.extra_allowed:
        unknown = sorted(names - schema.fields)
        if unknown:
            raise ValueError(
                f"trace event {type_!r} carries undeclared field(s) "
                f"{unknown}; declare them in repro.obs.schema"
            )


def validate_metric(
    name: str, kind: str, labels: Sequence[str] = ()
) -> None:
    """Raise ``ValueError`` unless the registration matches its schema.

    The runtime twin of static rule ``REPRO611``.
    """
    schema = METRIC_SCHEMAS.get(name)
    if schema is None:
        raise ValueError(
            f"metric {name!r} is not declared in "
            f"repro.obs.schema.METRIC_SCHEMAS"
        )
    if schema.kind != kind:
        raise ValueError(
            f"metric {name!r} is declared as a {schema.kind}, "
            f"registered as a {kind}"
        )
    if tuple(labels) != schema.labels:
        raise ValueError(
            f"metric {name!r} declares labels {schema.labels}, "
            f"registered with {tuple(labels)}"
        )


def _field_cell(names: FrozenSet[str]) -> str:
    return ", ".join(f"`{name}`" for name in sorted(names)) or "—"


def event_catalog_markdown() -> str:
    """The event catalog as a markdown table, straight from the registry.

    ``scripts/gen_event_catalog.py`` splices this into
    ``docs/observability.md`` (and ``--check`` fails CI when the
    committed docs drift), so a newly declared event type cannot go
    undocumented.
    """
    lines = [
        "| type | meaning | required fields | optional fields |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(EVENT_SCHEMAS):
        schema = EVENT_SCHEMAS[name]
        optional = _field_cell(schema.optional)
        if schema.extra_allowed:
            optional = (
                f"{optional}, …" if optional != "—" else "… (free-form)"
            )
        lines.append(
            f"| `{name}` | {schema.help} | "
            f"{_field_cell(schema.required)} | {optional} |"
        )
    return "\n".join(lines)


def metric_catalog_markdown() -> str:
    """The metric catalog as a markdown table (same contract as events)."""
    lines = [
        "| name | kind | labels | meaning |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(METRIC_SCHEMAS):
        schema = METRIC_SCHEMAS[name]
        labels = ", ".join(
            f"`{label}`" for label in schema.labels
        ) or "—"
        lines.append(
            f"| `{name}` | {schema.kind} | {labels} | {schema.help} |"
        )
    return "\n".join(lines)
