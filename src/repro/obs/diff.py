"""Regression diffing between recorded runs.

Flattens two run snapshots (``result.json``, see :mod:`repro.obs.runs`)
into dotted-key metric maps, compares them key by key, and judges each
delta against a configurable relative threshold.  The comparison is
**direction-aware**: latency/backlog/utilization going *up* is a
regression, throughput (``tuples_out``) or a volume ratio going *down*
is a regression, and metrics with no known polarity breach on movement
in either direction.  Two runs of the same seed and configuration
produce identical snapshots, so their diff is all-zero and clean.

``repro-rod compare RUN_A RUN_B`` is the CLI front end; it exits
non-zero when any thresholded metric breaches, which is what lets CI
gate on "did this PR regress the committed baseline run".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .runs import Run

__all__ = [
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "RunDiff",
    "compare_metrics",
    "compare_runs",
    "flatten_metrics",
    "parse_thresholds",
]

#: Default relative tolerance before a delta counts as a breach.
DEFAULT_THRESHOLD = 0.02

#: Key substrings whose metrics regress when they grow / shrink.
#: When a key matches tokens from both lists, the longest match wins —
#: ``critical_path.attributed_ratio`` is lower-is-worse via
#: ``attributed_ratio`` even though ``critical_path`` marks the rest of
#: that section higher-is-worse.
_HIGHER_IS_WORSE = (
    "latency", "backlog", "utilization", "stall", "pause", "wall_seconds",
    "critical_path", "burn_rate", "breach", "bad_fraction",
    "unclosed_spans", "stranded",
    # Decision/drift audit: more drift, more SLO-triggered deliberations,
    # and more pathological no-op periods all read as regressions.
    "drift", "slo-burn", "cooldown-pinned", "no-valid-candidate",
    "max-moves-exhausted",
)
_LOWER_IS_WORSE = (
    "tuples_out", "volume_ratio", "ratio",
    "budget_remaining", "attributed_ratio", "attainment",
    # Migrations losing their decision linkage is an audit regression.
    "linked_migrations",
)


def flatten_metrics(
    obj: object, prefix: str = ""
) -> Dict[str, float]:
    """Dotted-key map of every number reachable inside ``obj``.

    Dicts contribute their keys, lists their indices; booleans and
    strings are skipped (they are provenance, not metrics).
    """
    out: Dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
        return out
    if isinstance(obj, Mapping):
        for key in sorted(obj):
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(obj[key], sub))
        return out
    if isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            sub = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten_metrics(item, sub))
        return out
    return out


def _direction(name: str) -> int:
    """+1 when growth is a regression, -1 when shrinkage is, 0 both ways.

    The longest matching token decides, so a specific polarity
    (``attributed_ratio``) overrides a broad section marker
    (``critical_path``) on the same key.  Ties across lists keep the
    higher-is-worse reading — no current token pair ties, and pessimism
    is the safer default for a regression gate.
    """
    lowered = name.lower()
    best_length = 0
    direction = 0
    for token in _HIGHER_IS_WORSE:
        if token in lowered and len(token) > best_length:
            best_length = len(token)
            direction = 1
    for token in _LOWER_IS_WORSE:
        if token in lowered and len(token) > best_length:
            best_length = len(token)
            direction = -1
    return direction


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    name: str
    a: float
    b: float
    threshold: float
    direction: int      # see :func:`_direction`

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> float:
        """Relative change vs. ``a`` (``inf`` when appearing from zero)."""
        if self.a != 0:
            return (self.b - self.a) / abs(self.a)
        if self.b == 0:
            return 0.0
        return math.copysign(math.inf, self.b)

    @property
    def breach(self) -> bool:
        rel = self.relative
        if self.direction > 0:
            return rel > self.threshold
        if self.direction < 0:
            return rel < -self.threshold
        return abs(rel) > self.threshold


class RunDiff:
    """All metric deltas between two snapshots plus structural drift."""

    def __init__(
        self,
        deltas: Sequence[MetricDelta],
        only_a: Sequence[str] = (),
        only_b: Sequence[str] = (),
        names: Tuple[str, str] = ("a", "b"),
    ) -> None:
        self.deltas = list(deltas)
        #: Metric keys present in only one snapshot — structural drift
        #: (different node count, renamed operator); reported, never a
        #: threshold breach by itself.
        self.only_a = list(only_a)
        self.only_b = list(only_b)
        self.names = names

    @property
    def breaches(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.breach]

    @property
    def changed(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.delta != 0]

    @property
    def max_abs_relative(self) -> float:
        finite = [
            abs(d.relative) for d in self.deltas
            if math.isfinite(d.relative)
        ]
        return max(finite) if finite else 0.0

    def format(self, show_unchanged: bool = False) -> str:
        """Aligned text table of the diff, breaches flagged ``!``."""
        name_a, name_b = self.names
        rows = [("metric", name_a, name_b, "delta", "rel", "")]
        for d in self.deltas:
            if not show_unchanged and d.delta == 0 and not d.breach:
                continue
            rel = d.relative
            rel_text = (
                f"{rel:+.2%}" if math.isfinite(rel) else
                ("+new" if rel > 0 else "-new")
            )
            rows.append((
                d.name, f"{d.a:g}", f"{d.b:g}", f"{d.delta:+g}",
                rel_text, "!" if d.breach else "",
            ))
        lines: List[str] = []
        if len(rows) > 1:
            widths = [
                max(len(row[i]) for row in rows) for i in range(len(rows[0]))
            ]
            for index, row in enumerate(rows):
                lines.append("  ".join(
                    cell.ljust(w) for cell, w in zip(row, widths)
                ).rstrip())
                if index == 0:
                    lines.append("  ".join("-" * w for w in widths).rstrip())
        else:
            lines.append(
                f"no metric deltas between {name_a} and {name_b} "
                f"({len(self.deltas)} metrics compared)"
            )
        for key in self.only_a:
            lines.append(f"only in {name_a}: {key}")
        for key in self.only_b:
            lines.append(f"only in {name_b}: {key}")
        breaches = self.breaches
        lines.append(
            f"{len(self.deltas)} metrics compared, "
            f"{len(self.changed)} changed, {len(breaches)} breach(es)"
        )
        return "\n".join(lines)


def parse_thresholds(
    specs: Sequence[str],
) -> Dict[str, float]:
    """Parse ``NAME=REL`` CLI threshold specs into a map.

    ``NAME`` matches a flattened metric key by exact name or prefix
    (``latency`` covers ``latency.p99``); ``REL`` is a relative
    tolerance, e.g. ``0.1`` for ±10%.
    """
    thresholds: Dict[str, float] = {}
    for spec in specs:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise ValueError(
                f"threshold spec {spec!r} is not NAME=REL (e.g. "
                "latency.p99=0.1)"
            )
        rel = float(value)
        if rel < 0 or not math.isfinite(rel):
            raise ValueError(
                f"threshold for {name!r} must be a finite value >= 0"
            )
        thresholds[name] = rel
    return thresholds


def _threshold_for(name: str, thresholds: Mapping[str, float],
                   default: float) -> float:
    if name in thresholds:
        return thresholds[name]
    best: Optional[Tuple[int, float]] = None
    for key, value in thresholds.items():
        if name.startswith(key + "."):
            if best is None or len(key) > best[0]:
                best = (len(key), value)
    return best[1] if best is not None else default


def compare_metrics(
    a: Mapping[str, object],
    b: Mapping[str, object],
    thresholds: Optional[Mapping[str, float]] = None,
    default_threshold: float = DEFAULT_THRESHOLD,
    names: Tuple[str, str] = ("a", "b"),
) -> RunDiff:
    """Diff two snapshot dicts (already-flat maps also accepted)."""
    thresholds = dict(thresholds or {})
    flat_a = flatten_metrics(a)
    flat_b = flatten_metrics(b)
    shared = sorted(set(flat_a) & set(flat_b))
    deltas = [
        MetricDelta(
            name=key,
            a=flat_a[key],
            b=flat_b[key],
            threshold=_threshold_for(key, thresholds, default_threshold),
            direction=_direction(key),
        )
        for key in shared
    ]
    return RunDiff(
        deltas,
        only_a=sorted(set(flat_a) - set(flat_b)),
        only_b=sorted(set(flat_b) - set(flat_a)),
        names=names,
    )


def compare_runs(
    run_a: Run,
    run_b: Run,
    thresholds: Optional[Mapping[str, float]] = None,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> RunDiff:
    """Diff two recorded runs by their ``result.json`` snapshots."""
    return compare_metrics(
        run_a.result,
        run_b.result,
        thresholds=thresholds,
        default_threshold=default_threshold,
        names=(run_a.run_id, run_b.run_id),
    )
